#!/usr/bin/env bash
# Local CI: formatting, lints, full test suite, and a smoke run of the
# two tuner-driven table generators. Mirrors what a hosted pipeline
# would run; keep it green before every commit.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== table smoke runs (--quick) =="
cargo run --release -q -p fm-bench --bin table_e4_fft_search -- --quick >/dev/null
cargo run --release -q -p fm-bench --bin table_e8_default_mapper -- --quick >/dev/null

echo "ci: all green"
