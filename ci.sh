#!/usr/bin/env bash
# Local CI: formatting, lints, full test suite, and a smoke run of the
# two tuner-driven table generators. Mirrors what a hosted pipeline
# would run; keep it green before every commit.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== incremental-engine parity under debug assertions =="
# Debug builds re-derive the full schedule/report after every
# apply_move/undo and assert bit-exact equality; this run makes sure
# that paranoid path executes in CI even if the suite above ever moves
# to --release.
cargo test -q -p fm-core -- delta:: anneal
cargo test -q --test proptests incremental

echo "== flat-engine parity under debug assertions =="
# Debug builds assert every flat evaluation (interned PEs, SoA folds,
# scratch arenas) bit-identical to the reference path; the proptest
# drives random graphs/mappings/moves through flat, delta, and
# reference simultaneously, and the alloc test proves the steady state
# never touches the heap.
cargo test -q -p fm-core -- flat::
cargo test -q --test proptests flat_delta_and_reference
cargo test -q --test alloc_regression

echo "== table smoke runs (--quick) =="
cargo run --release -q -p fm-bench --bin table_e4_fft_search -- --quick >/dev/null
cargo run --release -q -p fm-bench --bin table_e8_default_mapper -- --quick >/dev/null
cargo run --release -q -p fm-bench --bin table_e14_anneal -- --quick --no-json >/dev/null
cargo run --release -q -p fm-bench --bin table_e15_serve -- --quick --no-json >/dev/null

echo "== fleet-faults: sharded-search chaos suite + E16 smoke =="
# The chaos suite runs real shard servers behind deterministic
# fault-injection proxies and checks the fleet winner stays
# bit-identical to a single-machine tune; release mode keeps the
# in-test tuning work fast.
cargo test --release -q -p fm-serve --test fleet_faults
cargo run --release -q -p fm-bench --bin table_e16_fleet -- --quick --no-json >/dev/null

echo "== E17 smoke: streaming + weighted beats blocking on a scripted straggler =="
# 2-shard topology, shard 0 scripted slow: the binary itself asserts
# winner parity, parts_merged > 0, zero discarded parts, and the
# speedup bar, exiting non-zero on any violation.
cargo run --release -q -p fm-bench --bin table_e17_stream -- --quick --no-json >/dev/null

echo "== session-smoke: open → edits → warm tune, parity vs cold =="
# End-to-end session lifecycle over real TCP (open → 3 edit batches →
# warm SessionTune after each, winner checked bit-for-bit against a
# cold client-side tune), plus typed NoSuchSession, idle eviction, and
# concurrent disjoint sessions. Then the E18 quick run: the binary
# asserts per-row parity and the warm-vs-cold speedup bar, and must
# emit its BENCH_e18.json rows (written to a scratch dir so a smoke
# run never clobbers full-run numbers).
cargo test --release -q -p fm-serve --test session_integration
e18_dir="$(mktemp -d)"
cargo run --release -q -p fm-bench --bin table_e18_session -- --quick --json "$e18_dir/BENCH_e18.json" >/dev/null
[ -s "$e18_dir/BENCH_e18.json" ] || { echo "session-smoke: E18 emitted no JSON"; exit 1; }
rm -rf "$e18_dir"

echo "== wire-smoke: protocol negotiation + E19 quick run =="
# Negotiation matrix over real TCP: new client falls back to JSON
# against an old server, old (JSON-only) client is served by a new
# server, pipelined replies complete out of order, and dedup-batched
# admission collapses duplicate tunes — winners checked bit-for-bit
# throughout. Then the E19 quick run: blocking JSON vs. pipelined
# binary sweep plus the four-arm dedup trace, with winner parity and
# the dedup collapse asserted by the binary itself.
cargo test --release -q -p fm-serve --test protocol_negotiation
e19_dir="$(mktemp -d)"
cargo run --release -q -p fm-bench --bin table_e19_wire -- --quick --json "$e19_dir/BENCH_e19.json" >/dev/null
[ -s "$e19_dir/BENCH_e19.json" ] || { echo "wire-smoke: E19 emitted no JSON"; exit 1; }
rm -rf "$e19_dir"

echo "== costmodel-smoke: backend parity proptests + E20 quick run =="
# Parity first: cold tune, warm tune, and delta repair must agree under
# every cost backend, and the default (analytic) backend must stay
# bit-identical to the historical FigureOfMerit scoring — plus the
# hand-computed roofline fixtures for one FFT and one stencil mapping.
# Then the E20 quick run: the binary runs the sweep twice and exits
# non-zero if winner determinism breaks, if an analytic row flips, or
# if no backend changes any winner.
cargo test --release -q --test costmodel_backends
e20_dir="$(mktemp -d)"
cargo run --release -q -p fm-bench --bin table_e20_costmodels -- --quick --json "$e20_dir/BENCH_e20.json" >/dev/null
[ -s "$e20_dir/BENCH_e20.json" ] || { echo "costmodel-smoke: E20 emitted no JSON"; exit 1; }
rm -rf "$e20_dir"

echo "== churn-smoke: elastic membership chaos + E21 quick run =="
# Membership chaos first: wire join/leave reshaping a live roster, the
# throughput-cliff suffix re-dispatch, departure mid-tune, the seeded
# churn proptest, and — explicitly — a coordinator restarted against a
# deliberately corrupted weight ledger falling back to cold weights.
# Then the E21 quick run: the binary asserts winner parity in both
# arms, a fired cliff detector, persisted weights after the mid-suite
# restart, zero discarded sealed parts, and the adaptive-vs-static
# wall-clock bar, exiting non-zero on any violation.
cargo test --release -q -p fm-serve --test fleet_faults -- \
    membership_join_and_leave corrupt_ledger_falls_back \
    persisted_weights_survive throughput_cliff departed_shard seeded_churn
cargo run --release -q -p fm-bench --bin table_e21_churn -- --quick --no-json >/dev/null

echo "== evalperf-smoke: flat-engine parity + E22 quick run =="
# The E22 binary gates on bit parity before timing anything: every
# candidate's score bits and the winner index must match between the
# flat engine and the reference path, and its counting global
# allocator asserts zero steady-state allocations. The quick run
# exercises all of that end to end and must emit its BENCH_e22.json
# rows (scratch dir so a smoke run never clobbers full-run numbers).
e22_dir="$(mktemp -d)"
cargo run --release -q -p fm-bench --bin table_e22_evalperf -- --quick --json "$e22_dir/BENCH_e22.json" >/dev/null
[ -s "$e22_dir/BENCH_e22.json" ] || { echo "evalperf-smoke: E22 emitted no JSON"; exit 1; }
rm -rf "$e22_dir"

echo "== serve-smoke: daemon + example over the wire =="
# Launch the real daemon on an ephemeral port, run the example against
# it (FM_SERVE_SHUTDOWN=1 makes the example request the drain), and
# check both sides exit cleanly.
cargo build --release -q -p fm-serve --bin fm-serve
serve_log="$(mktemp)"
./target/release/fm-serve --addr 127.0.0.1:0 >"$serve_log" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -f "$serve_log"' EXIT
serve_addr=""
for _ in $(seq 1 50); do
    serve_addr="$(sed -n 's/^fm-serve listening on //p' "$serve_log")"
    [ -n "$serve_addr" ] && break
    sleep 0.1
done
[ -n "$serve_addr" ] || { echo "serve-smoke: daemon never reported its address"; exit 1; }
FM_SERVE_ADDR="$serve_addr" FM_SERVE_SHUTDOWN=1 \
    cargo run --release -q --example mapping_service >/dev/null
wait "$serve_pid" || { echo "serve-smoke: daemon exited non-zero"; exit 1; }
trap - EXIT
rm -f "$serve_log"

echo "ci: all green"
