#!/usr/bin/env bash
# Local CI: formatting, lints, full test suite, and a smoke run of the
# two tuner-driven table generators. Mirrors what a hosted pipeline
# would run; keep it green before every commit.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== incremental-engine parity under debug assertions =="
# Debug builds re-derive the full schedule/report after every
# apply_move/undo and assert bit-exact equality; this run makes sure
# that paranoid path executes in CI even if the suite above ever moves
# to --release.
cargo test -q -p fm-core -- delta:: anneal
cargo test -q --test proptests incremental

echo "== table smoke runs (--quick) =="
cargo run --release -q -p fm-bench --bin table_e4_fft_search -- --quick >/dev/null
cargo run --release -q -p fm-bench --bin table_e8_default_mapper -- --quick >/dev/null
cargo run --release -q -p fm-bench --bin table_e14_anneal -- --quick --no-json >/dev/null

echo "ci: all green"
