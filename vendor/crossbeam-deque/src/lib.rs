//! Offline stand-in for the `crossbeam-deque` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of the `crossbeam-deque` API the work-stealing
//! pool uses — `Worker` (LIFO owner end), `Stealer` (FIFO thief end),
//! `Injector`, and the `Steal` result enum — with identical semantics
//! but a mutexed `VecDeque` instead of a lock-free Chase-Lev deque.
//! Jobs in this workspace are coarse (whole candidate evaluations,
//! recursive joins), so the lock is not the bottleneck; the scheduling
//! discipline (LIFO pop for the owner, FIFO steal for thieves) is what
//! matters for the work-first policy and it is preserved exactly.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// The result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The source was empty.
    Empty,
    /// One item was stolen.
    Success(T),
    /// The attempt lost a race; retry.
    Retry,
}

impl<T> Steal<T> {
    /// The stolen item, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }
}

/// The owner end of a work-stealing deque.
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// A new LIFO deque (owner pushes and pops the same end).
    pub fn new_lifo() -> Self {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// A new FIFO deque (owner pops the end thieves steal from).
    pub fn new_fifo() -> Self {
        Self::new_lifo()
    }

    /// A stealer handle for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }

    /// Push onto the owner end.
    pub fn push(&self, item: T) {
        lock(&self.queue).push_back(item);
    }

    /// Pop from the owner end (LIFO: most recently pushed).
    pub fn pop(&self) -> Option<T> {
        lock(&self.queue).pop_back()
    }

    /// Whether the deque is empty.
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        lock(&self.queue).len()
    }
}

/// The thief end of a work-stealing deque.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

impl<T> Stealer<T> {
    /// Steal from the opposite (FIFO) end.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.queue).pop_front() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// Whether the deque is empty.
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }
}

/// A FIFO queue shared by all workers, fed by external threads.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// A new empty injector.
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Push a task.
    pub fn push(&self, item: T) {
        lock(&self.queue).push_back(item);
    }

    /// Steal the oldest task.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.queue).pop_front() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// Whether the injector is empty.
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1)); // oldest
        assert_eq!(w.pop(), Some(3)); // newest
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push("a");
        inj.push("b");
        assert_eq!(inj.steal(), Steal::Success("a"));
        assert_eq!(inj.steal(), Steal::Success("b"));
        assert_eq!(inj.steal(), Steal::Empty);
    }

    #[test]
    fn stealer_works_across_threads() {
        let w = Worker::new_lifo();
        for i in 0..1000 {
            w.push(i);
        }
        let s = w.stealer();
        let h = std::thread::spawn(move || {
            let mut got = 0;
            while let Steal::Success(_) = s.steal() {
                got += 1;
            }
            got
        });
        let mut local = 0;
        while w.pop().is_some() {
            local += 1;
        }
        let stolen = h.join().unwrap();
        assert_eq!(local + stolen, 1000);
    }
}
