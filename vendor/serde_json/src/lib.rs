//! Offline stand-in for `serde_json`, rendering and parsing the
//! vendored `serde::Json` tree.
//!
//! Output follows upstream conventions: compact form has no spaces;
//! pretty form indents with two spaces. Integers round-trip exactly
//! (`I64`/`U64` never pass through `f64`), floats print via Rust's
//! shortest-roundtrip `{}` formatting with a trailing `.0` added for
//! integral values, matching upstream's distinction between `1` and
//! `1.0`. Non-finite floats serialize as `null`.

use serde::{DeError, Deserialize, Json, Serialize};

/// A serialization or parse error.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.to_json(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to a two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.to_json(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let tree = parse(s)?;
    Ok(T::from_json(&tree)?)
}

/// Parse a JSON string into the generic tree.
pub fn from_str_value(s: &str) -> Result<Json, Error> {
    parse(s)
}

// ---- writer ---------------------------------------------------------

fn write_json(v: &Json, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::I64(n) => out.push_str(&n.to_string()),
        Json::U64(n) => out.push_str(&n.to_string()),
        Json::F64(f) => write_f64(*f, out),
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Json::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..depth * step {
            out.push(' ');
        }
    }
}

fn write_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    // `{}` prints 2.0 as "2"; add ".0" so the value reads back as a
    // float, as upstream serde_json does.
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ---------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Json, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Json::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Json::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Json::Bool(false))
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, Error> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, Error> {
        self.eat(b'{', "expected `{`")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:`")?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pair handling for completeness.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(ch);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Decode one UTF-8 scalar from the remaining bytes.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        let x: i64 = from_str("42").unwrap();
        assert_eq!(x, 42);
        let f: f64 = from_str("2.0").unwrap();
        assert_eq!(f, 2.0);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1i64, "a".to_string()), (2, "b".to_string())];
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"[[1,"a"],[2,"b"]]"#);
        let back: Vec<(i64, String)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn options_and_null() {
        let v: Option<u32> = None;
        assert_eq!(to_string(&v).unwrap(), "null");
        let w: Option<u32> = from_str("null").unwrap();
        assert_eq!(w, None);
        let x: Option<u32> = from_str("7").unwrap();
        assert_eq!(x, Some(7));
    }

    #[test]
    fn pretty_form_indents() {
        let v = vec![1i64, 2];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<i64>("4 2").is_err());
        assert!(from_str::<i64>("{").is_err());
        assert!(from_str::<i64>("nul").is_err());
        assert!(from_str_value("[1,]").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let s: String = from_str(r#""é😀""#).unwrap();
        assert_eq!(s, "é😀");
    }
}
