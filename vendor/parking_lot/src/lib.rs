//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the *subset* of the `parking_lot` API the workspace
//! uses — `Mutex` (non-poisoning `lock()` returning a guard directly)
//! and `Condvar` (`wait`, `wait_for`, `notify_one`, `notify_all`) — on
//! top of `std::sync`. Poisoned std locks are recovered transparently,
//! matching parking_lot's no-poisoning semantics.

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion primitive. `lock()` returns the guard directly
/// (no `Result`), like `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can take it
/// out and put the re-acquired guard back through an `&mut` borrow.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed wait: whether the timeout elapsed.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable, compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(1));
        assert!(r.timed_out());
    }
}
