//! Offline stand-in for the `rand` crate (0.10 API surface).
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `RngExt` extension trait with
//! `random::<T>()` and `random_range(range)`. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given
//! seed, which is all the callers (seeded annealing, seeded test DAGs)
//! rely on. It is **not** the same stream as upstream `StdRng`, and it
//! is not cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Sources of raw random words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (the `random()`
/// family). `f64` samples uniformly in `[0, 1)`.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable to a uniform value (the `random_range` family).
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % width) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods on any generator (rand 0.10's `Rng`
/// extension trait name).
pub trait RngExt: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniformly random value in `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// A random bool that is true with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut sm: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.random_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0..=2u8);
            assert!(w <= 2);
            let x = rng.random_range(-5..5i64);
            assert!((-5..5).contains(&x));
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.random_range(0..=2usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
