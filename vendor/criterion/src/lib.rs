//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the harness surface the workspace's benches use:
//! `Criterion` with `bench_function` / `bench_with_input` /
//! `benchmark_group`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros (both forms).
//!
//! Instead of upstream's statistical sampling, each bench runs a small
//! warm-up then `sample_size` timed iterations and prints the mean —
//! enough to exercise the bench code paths and give a rough number.
//! When the binary is run under `cargo test` (criterion benches are
//! compiled as tests too), `--test` causes a single-iteration smoke
//! run, mirroring upstream behavior.

use std::time::{Duration, Instant};

/// A bench identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A bare parameter id (upstream `from_parameter`).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to bench closures; `iter` runs the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness.
pub struct Criterion {
    sample_size: u64,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` passes `--test`; run one iteration per bench so
        // the suite stays fast while still executing every bench body.
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            smoke,
        }
    }
}

impl Criterion {
    /// Set the iteration count per bench (upstream: per-sample count).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let iters = if self.smoke {
            1
        } else {
            self.sample_size.max(1)
        };
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b); // warm-up / smoke iteration
        if self.smoke {
            println!("bench {id}: ok (smoke)");
            return;
        }
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean = b.elapsed.as_secs_f64() / iters as f64;
        println!("bench {id}: {:.3} µs/iter ({} iters)", mean * 1e6, iters);
    }

    /// Run a named bench.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, f);
        self
    }

    /// Run a named bench parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_one(&id.id, |b| f(b, input));
        self
    }

    /// Start a named group of benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benches sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Set the iteration count for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n as u64;
        self
    }

    /// Run a named bench in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Run a parameterized bench in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Finish the group (upstream writes reports here; no-op).
    pub fn finish(self) {}
}

/// Re-export for code that imports `criterion::black_box`.
pub use std::hint::black_box;

/// Define a bench group: either `criterion_group!(benches, f1, f2)` or
/// the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        c.bench_function("demo/add", |b| b.iter(|| 1u64 + 1));
        c.bench_with_input(BenchmarkId::new("demo/param", 4), &4u64, |b, &p| {
            b.iter(|| p * 2)
        });
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("inner", 2), &2u64, |b, &p| b.iter(|| p));
        g.finish();
    }

    #[test]
    fn harness_runs_benches() {
        let mut c = Criterion::default().sample_size(2);
        c.smoke = true;
        demo(&mut c);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("a", 3).to_string(), "a/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
