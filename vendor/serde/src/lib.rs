//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the serialization surface the workspace uses with a
//! simpler design than upstream serde: instead of visitor-based
//! serializers, values convert to and from a concrete [`Json`] tree
//! (the mini-serde approach). The companion `serde_derive` proc-macro
//! derives both traits for structs and enums, honoring
//! `#[serde(skip)]`, and the companion `serde_json` renders/parses the
//! tree using the same representation rules as upstream `serde_json`:
//!
//! * named structs → objects; newtype structs → the inner value;
//!   tuple structs → arrays; unit structs → null;
//! * unit enum variants → `"Name"`; data-carrying variants →
//!   `{"Name": payload}` (externally tagged);
//! * `Option` → `null` / value; sequences and tuples → arrays;
//!   string-keyed maps → objects.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-shaped value tree: the data model everything serializes
/// through. Integers are kept exact (not coerced to `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer that does not fit in `i64`.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved, first match wins on lookup.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The fields if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::I64(_) | Json::U64(_) => "integer",
            Json::F64(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// A deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X while deserializing Y" error.
    pub fn expected(what: &str, context: &str) -> DeError {
        DeError(format!("expected {what} while deserializing {context}"))
    }

    /// Missing-field error.
    pub fn missing(field: &str) -> DeError {
        DeError(format!("missing field `{field}`"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types convertible to the [`Json`] data model.
pub trait Serialize {
    /// Convert to a value tree.
    fn to_json(&self) -> Json;
}

/// Types reconstructible from the [`Json`] data model.
pub trait Deserialize: Sized {
    /// Reconstruct from a value tree.
    fn from_json(v: &Json) -> Result<Self, DeError>;
}

// ---- primitive impls ------------------------------------------------

macro_rules! impl_ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Json::I64(n) => *n,
                    Json::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::expected("integer in range", stringify!($t)))?,
                    Json::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(DeError::expected("integer", other.kind())),
                };
                <$t>::try_from(raw).map_err(|_| DeError::expected("integer in range", stringify!($t)))
            }
        }
    )*};
}
impl_ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(n) => Json::I64(n),
                    Err(_) => Json::U64(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, DeError> {
                let raw: u64 = match v {
                    Json::I64(n) => u64::try_from(*n)
                        .map_err(|_| DeError::expected("unsigned integer", stringify!($t)))?,
                    Json::U64(n) => *n,
                    Json::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(DeError::expected("integer", other.kind())),
                };
                <$t>::try_from(raw).map_err(|_| DeError::expected("integer in range", stringify!($t)))
            }
        }
    )*};
}
impl_ser_de_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::F64(f) => Ok(*f),
            Json::I64(n) => Ok(*n as f64),
            Json::U64(n) => Ok(*n as f64),
            // `serde_json` cannot represent non-finite floats; they
            // serialize as null and come back as NaN.
            Json::Null => Ok(f64::NAN),
            other => Err(DeError::expected("number", other.kind())),
        }
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Json {
        Json::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        f64::from_json(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other.kind())),
        }
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other.kind())),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other.kind())),
        }
    }
}

// ---- containers -----------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        T::from_json(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            other => Err(DeError::expected("array", other.kind())),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json(v: &Json) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                let items = v.as_arr().ok_or_else(|| DeError::expected("array", v.kind()))?;
                if items.len() != LEN {
                    return Err(DeError::expected("tuple-sized array", v.kind()));
                }
                Ok(($($name::from_json(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn to_json(&self) -> Json {
        // Sorted for deterministic output (HashMap iteration order is not).
        let mut fields: Vec<(String, Json)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Json::Obj(fields)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        let fields = v
            .as_obj()
            .ok_or_else(|| DeError::expected("object", v.kind()))?;
        fields
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_json(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        let fields = v
            .as_obj()
            .ok_or_else(|| DeError::expected("object", v.kind()))?;
        fields
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_json(val)?)))
            .collect()
    }
}

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl Deserialize for Json {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_json(&self) -> Json {
        Json::Null
    }
}

impl Deserialize for () {
    fn from_json(_: &Json) -> Result<Self, DeError> {
        Ok(())
    }
}
