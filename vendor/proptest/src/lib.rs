//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset the workspace's property tests use: the
//! `proptest!` macro (with an optional `#![proptest_config(...)]`
//! header), range / tuple / `any::<T>()` / `prop::collection::vec`
//! strategies, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from upstream, deliberate for offline determinism:
//! inputs are sampled from a PRNG seeded by the test function's name
//! (every run explores the same cases), and failing cases are **not
//! shrunk** — the panic message reports the case index instead.

/// Run-count configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic test RNGs.
pub mod test_runner {
    /// SplitMix64 seeded from the test function's name: the same
    /// property always sees the same inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a name (FNV-1a hash).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let width = (hi as i128 - lo as i128 + 1) as u128;
                    (lo as i128 + (rng.next_u64() as u128 % width) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
    }

    /// Whole-domain strategy returned by [`crate::any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Any<T> {
        /// Construct (used by `any()`).
        pub fn new() -> Self {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }
}

/// A uniformly random value of `T` (ints over the full domain, `f64`
/// in [0, 1)).
pub fn any<T>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy,
{
    strategy::Any::new()
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length ranges accepted by [`vec`].
    pub trait SizeRange {
        /// Draw a length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + (rng.next_u64() as usize) % (hi - lo + 1)
        }
    }

    impl SizeRange for usize {
        fn pick_len(&self, _: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// A `Vec` strategy: elements from `element`, length from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace as tests spell it (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Assert a condition inside a property (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
}

/// Define property tests. Supports an optional
/// `#![proptest_config(...)]` header followed by `fn name(pat in
/// strategy, ...) { ... }` items (each usually carrying `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestRng;
    pub use crate::{any, ProptestConfig};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges stay in bounds; tuples and vecs compose.
        #[test]
        fn generated_values_in_bounds(
            spec in prop::collection::vec((0u8..=2, any::<u64>()), 1..50),
            x in -10i64..10,
            f in 0.0f64..1e3
        ) {
            prop_assert!(!spec.is_empty() && spec.len() < 50);
            for &(tag, _) in &spec {
                prop_assert!(tag <= 2);
            }
            prop_assert!((-10..10).contains(&x));
            prop_assert!((0.0..1e3).contains(&f));
        }
    }

    proptest! {
        /// Default config form works too.
        #[test]
        fn default_config_form(n in 1usize..5) {
            prop_assert!((1..5).contains(&n));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
