//! Derive macros for the vendored `serde` subset.
//!
//! Upstream `serde_derive` is built on `syn`/`quote`; neither is
//! available offline, so these derives parse the item's `TokenStream`
//! directly. Supported shapes — the ones the workspace uses:
//!
//! * structs with named fields, tuple structs (newtype and wider),
//!   unit structs;
//! * enums with unit, tuple, and struct variants;
//! * the `#[serde(skip)]` field attribute (field omitted on
//!   serialization, filled from `Default` on deserialization);
//! * the `#[serde(default)]` field attribute (field serialized
//!   normally, but a missing key on deserialization falls back to
//!   `Default::default()` instead of erroring — the wire-compatible
//!   way to add a field to an existing protocol struct).
//!
//! Generic types and other `#[serde(...)]` attributes are rejected
//! with a compile error rather than silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String, // named field name, or tuple index as a string
    skip: bool,
    default: bool,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        fields: Vec<Field>,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---- token-level parsing -------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consume a run of outer attributes; returns `(skip, default)`
    /// for `#[serde(skip)]` / `#[serde(default)]`.
    fn skip_attributes(&mut self) -> (bool, bool) {
        let mut has_skip = false;
        let mut has_default = false;
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.next();
                    match self.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                            let body = g.stream().to_string();
                            let compact: String =
                                body.chars().filter(|c| !c.is_whitespace()).collect();
                            if compact == "serde(skip)" {
                                has_skip = true;
                            } else if compact == "serde(default)" {
                                has_default = true;
                            } else if compact.starts_with("serde(") {
                                panic!(
                                    "vendored serde_derive supports only #[serde(skip)] and #[serde(default)], got #[{body}]"
                                );
                            }
                        }
                        other => panic!("malformed attribute: expected [...], got {other:?}"),
                    }
                }
                _ => return (has_skip, has_default),
            }
        }
    }

    /// Consume `pub`, `pub(crate)`, `pub(in ...)` if present.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected {what}, got {other:?}"),
        }
    }

    /// Consume type tokens up to a top-level `,` (angle brackets
    /// tracked manually: they are ordinary puncts in a TokenStream) or
    /// the end of the stream. The `,` itself is consumed.
    fn skip_type_to_comma(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    self.next();
                    return;
                }
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(group);
    let mut fields = Vec::new();
    while !c.at_end() {
        let (skip, default) = c.skip_attributes();
        if c.at_end() {
            break;
        }
        c.skip_visibility();
        let name = c.expect_ident("field name");
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        c.skip_type_to_comma();
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    fields
}

fn parse_tuple_fields(group: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(group);
    let mut fields = Vec::new();
    let mut index = 0usize;
    while !c.at_end() {
        let (skip, default) = c.skip_attributes();
        if c.at_end() {
            break;
        }
        c.skip_visibility();
        c.skip_type_to_comma();
        fields.push(Field {
            name: index.to_string(),
            skip,
            default,
        });
        index += 1;
    }
    fields
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(group);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.skip_attributes();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident("variant name");
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = parse_tuple_fields(g.stream());
                c.next();
                VariantShape::Tuple(fields.len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.next();
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant, then the separating comma.
        let mut angle: i32 = 0;
        while let Some(t) = c.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    c.next();
                    break;
                }
                _ => {}
            }
            c.next();
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let kw = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("item name");
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic types (deriving on `{name}`)");
        }
    }
    match kw.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    fields: parse_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("expected enum body for `{name}`, got {other:?}"),
        },
        other => panic!("expected struct or enum, got `{other}`"),
    }
}

// ---- code generation ------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__o.push((\"{n}\".to_string(), ::serde::Serialize::to_json(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_json(&self) -> ::serde::Json {{\n\
                 let mut __o: Vec<(String, ::serde::Json)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Json::Obj(__o)\n\
                 }}\n}}\n"
            )
        }
        Item::TupleStruct { name, fields } => {
            let active: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            let body = match active.len() {
                0 => "::serde::Json::Null".to_string(),
                1 => format!("::serde::Serialize::to_json(&self.{})", active[0].name),
                _ => {
                    let items: Vec<String> = active
                        .iter()
                        .map(|f| format!("::serde::Serialize::to_json(&self.{})", f.name))
                        .collect();
                    format!("::serde::Json::Arr(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_json(&self) -> ::serde::Json {{ {body} }}\n}}\n"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_json(&self) -> ::serde::Json {{ ::serde::Json::Null }}\n}}\n"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Json::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_json(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json({b})"))
                                .collect();
                            format!("::serde::Json::Arr(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Json::Obj(vec![(\"{vn}\".to_string(), {payload})]),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), ::serde::Serialize::to_json({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Json::Obj(vec![(\"{vn}\".to_string(), ::serde::Json::Obj(vec![{}]))]),\n",
                            binds.join(", "),
                            pushes.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_json(&self) -> ::serde::Json {{\n\
                 match self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{n}: ::std::default::Default::default(),\n",
                        n = f.name
                    ));
                } else if f.default {
                    inits.push_str(&format!(
                        "{n}: match __v.get(\"{n}\") {{\n\
                         Some(__x) => ::serde::Deserialize::from_json(__x)?,\n\
                         None => ::std::default::Default::default(),\n\
                         }},\n",
                        n = f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{n}: ::serde::Deserialize::from_json(__v.get(\"{n}\")\
                         .ok_or_else(|| ::serde::DeError::missing(\"{n}\"))?)?,\n",
                        n = f.name
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_json(__v: &::serde::Json) -> Result<Self, ::serde::DeError> {{\n\
                 if __v.as_obj().is_none() {{\n\
                 return Err(::serde::DeError::expected(\"object\", \"{name}\"));\n\
                 }}\n\
                 Ok({name} {{\n{inits}}})\n\
                 }}\n}}\n"
            )
        }
        Item::TupleStruct { name, fields } => {
            let active: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if active.len() != fields.len() {
                panic!("#[serde(skip)] on tuple-struct fields is not supported (in `{name}`)");
            }
            let body = match fields.len() {
                0 => format!("Ok({name}())"),
                1 => format!("Ok({name}(::serde::Deserialize::from_json(__v)?))"),
                n => {
                    let gets: Vec<String> = (0..n)
                        .map(|i| format!("::serde::Deserialize::from_json(&__items[{i}])?"))
                        .collect();
                    format!(
                        "let __items = __v.as_arr()\
                         .ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}\"))?;\n\
                         if __items.len() != {n} {{\n\
                         return Err(::serde::DeError::expected(\"array of {n}\", \"{name}\"));\n\
                         }}\n\
                         Ok({name}({}))",
                        gets.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_json(__v: &::serde::Json) -> Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_json(_: &::serde::Json) -> Result<Self, ::serde::DeError> {{ Ok({name}) }}\n}}\n"
        ),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"));
                        // Also accept the keyed form {"Name": null}.
                        keyed_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"));
                    }
                    VariantShape::Tuple(1) => keyed_arms.push_str(&format!(
                        "\"{vn}\" => return Ok({name}::{vn}(::serde::Deserialize::from_json(__payload)?)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let gets: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_json(&__items[{i}])?"))
                            .collect();
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __items = __payload.as_arr()\
                             .ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}::{vn}\"))?;\n\
                             if __items.len() != {n} {{\n\
                             return Err(::serde::DeError::expected(\"array of {n}\", \"{name}::{vn}\"));\n\
                             }}\n\
                             return Ok({name}::{vn}({}));\n\
                             }}\n",
                            gets.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.skip {
                                inits.push_str(&format!(
                                    "{n}: ::std::default::Default::default(),\n",
                                    n = f.name
                                ));
                            } else if f.default {
                                inits.push_str(&format!(
                                    "{n}: match __payload.get(\"{n}\") {{\n\
                                     Some(__x) => ::serde::Deserialize::from_json(__x)?,\n\
                                     None => ::std::default::Default::default(),\n\
                                     }},\n",
                                    n = f.name
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{n}: ::serde::Deserialize::from_json(__payload.get(\"{n}\")\
                                     .ok_or_else(|| ::serde::DeError::missing(\"{n}\"))?)?,\n",
                                    n = f.name
                                ));
                            }
                        }
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => return Ok({name}::{vn} {{\n{inits}}}),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_json(__v: &::serde::Json) -> Result<Self, ::serde::DeError> {{\n\
                 if let ::serde::Json::Str(__s) = __v {{\n\
                 match __s.as_str() {{\n{unit_arms}\
                 _ => return Err(::serde::DeError::expected(\"known variant\", \"{name}\")),\n\
                 }}\n}}\n\
                 if let Some(__fields) = __v.as_obj() {{\n\
                 if __fields.len() == 1 {{\n\
                 let (__tag, __payload) = &__fields[0];\n\
                 match __tag.as_str() {{\n{keyed_arms}\
                 _ => return Err(::serde::DeError::expected(\"known variant\", \"{name}\")),\n\
                 }}\n}}\n}}\n\
                 Err(::serde::DeError::expected(\"variant string or single-key object\", \"{name}\"))\n\
                 }}\n}}\n"
            )
        }
    }
}

/// Derive the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}
