//! Cost-backend invariants across the whole stack.
//!
//! Two families of guarantees:
//!
//! * **Parity** — for every [`CostModelKind`], the cold tuner, the warm
//!   (session-style) tuner, and the delta evaluator must rank and score
//!   mappings identically, bit for bit; and the default (analytic)
//!   backend must reproduce the historical pre-backend scores exactly.
//! * **Roofline fixtures** — the observatory's [`RooflinePoint`] for a
//!   real FFT mapping and a real stencil mapping must match values
//!   recomputed by hand from the energy ledger and the machine's
//!   datasheet parameters, through none of the backend code.

use proptest::prelude::*;

use fm_repro::autotune::{Tuner, WarmCache};
use fm_repro::core::cost::Evaluator;
use fm_repro::core::dataflow::{CExpr, DataflowGraph};
use fm_repro::core::delta::DeltaEvaluator;
use fm_repro::core::machine::MachineConfig;
use fm_repro::core::mapping::Mapping;
use fm_repro::core::search::{FigureOfMerit, MappingCandidate};
use fm_repro::core::value::Value;
use fm_repro::costmodel::CostModelKind;
use fm_repro::kernels::fft::{fft_graph, fft_mapping, FftVariant, LanePlacement};
use fm_repro::kernels::stencil::{blocked_mapping, stencil_recurrence};

/// Build a random DAG from a proptest-driven spec: each node gets 0–2
/// dependencies drawn from earlier nodes.
fn dag_from_spec(spec: &[(u8, u64, u64)]) -> DataflowGraph {
    let mut g = DataflowGraph::new("backend-dag", 32);
    for (i, &(ndeps, d1, d2)) in spec.iter().enumerate() {
        let i = i as u32;
        let mut deps: Vec<u32> = Vec::new();
        if i > 0 {
            if ndeps >= 1 {
                deps.push((d1 % u64::from(i)) as u32);
            }
            if ndeps >= 2 {
                deps.push((d2 % u64::from(i)) as u32);
            }
        }
        deps.sort_unstable();
        deps.dedup();
        let expr = match deps.len() {
            0 => CExpr::konst(Value::real(f64::from(i))),
            1 => CExpr::dep(0).add(CExpr::konst(Value::real(1.0))),
            _ => CExpr::dep(0).add(CExpr::dep(1)),
        };
        g.add_node(expr, deps, vec![i64::from(i)]);
    }
    g
}

/// The serial table plus a few affine folds — enough genuinely
/// different schedules that rankings have real work to do.
fn candidates(g: &DataflowGraph, cols: u32) -> Vec<MappingCandidate> {
    use fm_repro::core::affine::IdxExpr;
    use fm_repro::core::mapping::{AffineMap, PlaceExpr};
    let mut out = vec![MappingCandidate::new("serial", Mapping::serial(g))];
    for w in 1..=i64::from(cols) {
        out.push(MappingCandidate::new(
            format!("fold-w{w}"),
            Mapping::Affine(AffineMap {
                place: PlaceExpr::row0(IdxExpr::ModC(Box::new(IdxExpr::i()), w)),
                time: IdxExpr::i().div(w),
            }),
        ));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under every backend, cold tuning, warm tuning, and the delta
    /// evaluator agree on scores to the bit. (The delta engine repairs
    /// incrementally from cached per-node costs, the warm tuner replays
    /// a session cache, the cold tuner evaluates from scratch — three
    /// code paths, one scoring function.)
    #[test]
    fn cold_warm_and_delta_agree_under_every_backend(
        spec in prop::collection::vec((0u8..=2, any::<u64>(), any::<u64>()), 1..60),
        fom_raw in 0u8..4,
    ) {
        let g = dag_from_spec(&spec);
        let machine = MachineConfig::linear(4);
        let fom = match fom_raw {
            0 => FigureOfMerit::Time,
            1 => FigureOfMerit::Energy,
            2 => FigureOfMerit::Edp,
            _ => FigureOfMerit::Footprint,
        };
        let cands = candidates(&g, machine.cols);
        for kind in CostModelKind::ALL {
            let ev = Evaluator::new(&g, &machine).with_cost_model(kind);
            let cold = Tuner::new(&ev, &g, &machine, fom).tune(&cands);
            let mut warm_cache = WarmCache::new(&ev, cands.clone());
            let warm = Tuner::new(&ev, &g, &machine, fom).tune_warm(&mut warm_cache);
            match (&cold.best, &warm.best) {
                (Some(c), Some(w)) => {
                    prop_assert_eq!(&c.label, &w.label, "winner under {}", kind);
                    prop_assert_eq!(c.score.to_bits(), w.score.to_bits(),
                        "score bits under {}", kind);
                    // Delta path: seed a delta evaluator at the winning
                    // placement; its score must be the evaluator's own,
                    // bit for bit.
                    let delta = DeltaEvaluator::new(&ev, &c.resolved.place);
                    let direct = ev.score(fom, &ev.evaluate(&c.resolved));
                    prop_assert_eq!(delta.score(fom).to_bits(), direct.to_bits(),
                        "delta score bits under {}", kind);
                }
                (None, None) => {}
                _ => prop_assert!(false, "cold and warm disagree on winner existence"),
            }
        }
    }

    /// The default backend is the history: an `Evaluator` with no
    /// explicit model, one set to `Analytic`, and the raw pre-backend
    /// `FigureOfMerit::score` all produce identical bits, so every
    /// cached tune and recorded benchmark stays valid.
    #[test]
    fn default_backend_scores_are_bit_identical_to_history(
        spec in prop::collection::vec((0u8..=2, any::<u64>(), any::<u64>()), 1..60),
    ) {
        let g = dag_from_spec(&spec);
        let machine = MachineConfig::n5(3, 3);
        let default_ev = Evaluator::new(&g, &machine);
        let analytic_ev = Evaluator::new(&g, &machine).with_cost_model(CostModelKind::Analytic);
        prop_assert_eq!(default_ev.cost_model(), CostModelKind::Analytic);
        for cand in candidates(&g, machine.cols) {
            let Ok(rm) = cand.mapping.resolve(&g, &machine) else { continue };
            let a = default_ev.evaluate(&rm);
            let b = analytic_ev.evaluate(&rm);
            prop_assert_eq!(&a, &b, "reports identical for {}", cand.label);
            for fom in [
                FigureOfMerit::Time,
                FigureOfMerit::Energy,
                FigureOfMerit::Edp,
                FigureOfMerit::Footprint,
            ] {
                let historical = fom.score(&a);
                prop_assert_eq!(default_ev.score(fom, &a).to_bits(), historical.to_bits());
                prop_assert_eq!(analytic_ev.score(fom, &b).to_bits(), historical.to_bits());
            }
        }
    }
}

/// Recompute a [`fm_repro::costmodel::RooflinePoint`]'s fields by hand
/// from the ledger and the machine datasheet, then check the observatory
/// agrees — shared by the FFT and stencil fixtures below.
fn assert_roofline_matches_hand_arithmetic(
    ev: &Evaluator<'_>,
    report: &fm_repro::core::cost::CostReport,
    machine: &MachineConfig,
) -> (f64, f64, f64) {
    let point = ev.roofline(report);

    // Machine ceilings straight from the datasheet fields, not from
    // `MachineConfig::ceilings`.
    let clk = machine.clock_period().raw();
    let pes = f64::from(machine.cols) * f64::from(machine.rows);
    let c_peak = pes * f64::from(machine.issue_width) / clk;
    let h = u64::from(machine.cols - 1) * u64::from(machine.rows);
    let v = u64::from(machine.cols) * u64::from(machine.rows - 1);
    let b_on = (2 * (h + v)) as f64 * f64::from(machine.link_width_bits) / clk;
    let b_off = f64::from(machine.link_width_bits) / clk;

    // Intensities from the ledger, denominators floored at one bit.
    let ops = report.ledger.compute_ops as f64;
    let on_bits = report.ledger.onchip_bits;
    let off_bits = report.ledger.offchip_bits;
    let want_int_on = ops / on_bits.max(1) as f64;
    let want_int_off = ops / off_bits.max(1) as f64;
    assert_eq!(point.intensity_onchip.to_bits(), want_int_on.to_bits());
    assert_eq!(point.intensity_offchip.to_bits(), want_int_off.to_bits());
    assert_eq!(point.compute_ceiling.to_bits(), c_peak.to_bits());
    assert_eq!(
        point.attainable_onchip.to_bits(),
        (want_int_on * b_on).min(c_peak).to_bits()
    );
    assert_eq!(
        point.attainable_offchip.to_bits(),
        (want_int_off * b_off).min(c_peak).to_bits()
    );
    assert_eq!(
        point.achieved.to_bits(),
        (ops / report.time_ps.raw()).to_bits()
    );

    // The bound label is the argmax of the three planned-time terms,
    // ties toward compute.
    let t_c = ops / c_peak;
    let t_on = if on_bits == 0 {
        0.0
    } else {
        on_bits as f64 / b_on
    };
    let t_off = if off_bits == 0 {
        0.0
    } else {
        off_bits as f64 / b_off
    };
    let want_bound = if t_c >= t_on && t_c >= t_off {
        "compute"
    } else if t_on >= t_off {
        "onchip-bw"
    } else {
        "offchip-bw"
    };
    assert_eq!(point.bound, want_bound);

    // And the roofline backend's *time score* is exactly the binding
    // term.
    let roofline_ev = Evaluator::new(ev.graph(), machine).with_cost_model(CostModelKind::Roofline);
    let want_time = t_c.max(t_on).max(t_off);
    assert_eq!(
        roofline_ev.score(FigureOfMerit::Time, report).to_bits(),
        want_time.to_bits()
    );
    (t_c, t_on, t_off)
}

#[test]
fn fft_roofline_point_matches_hand_computed_values() {
    // 8-point DIT FFT, cyclic over 4 lanes of a linear array: every
    // stage has cross-lane butterflies, so all three traffic classes
    // are live.
    let n = 8;
    let machine = MachineConfig::linear(4);
    let g = fft_graph(n, FftVariant::Dit);
    let rm = fft_mapping(&g, n, 4, LanePlacement::Cyclic, &machine);
    let ev = Evaluator::new(&g, &machine);
    let report = ev.evaluate(&rm);

    // Hand-reasoned structure first: inputs stream in off-chip
    // (≥ n × 32-bit words), and a cyclic lane placement moves data
    // between PEs on-chip in every butterfly stage.
    assert!(
        report.ledger.offchip_bits >= (n as u64) * 32,
        "all {n} inputs arrive off-chip"
    );
    assert!(
        report.ledger.onchip_bits > 0,
        "cyclic FFT lanes must exchange butterflies on-chip"
    );

    // Off-chip volume is exactly hand-countable: 8 complex input
    // points stream in as 16 real words of 32 bits each.
    assert_eq!(report.ledger.offchip_bits, (2 * n as u64) * 32);

    let (t_c, _t_on, t_off) = assert_roofline_matches_hand_arithmetic(&ev, &report, &machine);
    // 512 off-chip bits cross a 64-bit-per-cycle interface in 8 cycles;
    // the butterfly arithmetic on 4 single-issue lanes needs longer
    // than that, so this point sits under the compute roof.
    assert!(t_c > t_off, "FFT-8 on 4 lanes is compute-bound");
    assert_eq!(ev.roofline(&report).bound, "compute");
}

#[test]
fn stencil_roofline_point_matches_hand_computed_values() {
    // 6 steps × 16 sites, blocked over 4 PEs: each PE sweeps a 4-site
    // block serially and only block boundaries talk per step.
    let (t_steps, n, p) = (6, 16, 4);
    let machine = MachineConfig::linear(p as u32);
    let g = stencil_recurrence(t_steps, n).elaborate().unwrap();
    let rm = blocked_mapping(n, p)
        .resolve(&g, &machine)
        .expect("blocked stencil mapping is legal");
    let ev = Evaluator::new(&g, &machine);
    let report = ev.evaluate(&rm);

    // Hand-reasoned structure: T×N sites each do a handful of ops, and
    // only ~2 boundary values per interior block edge per step cross
    // PEs — traffic Θ(P·T), compute Θ(N·T).
    assert_eq!(report.elements, (t_steps * n) as u64);
    assert!(report.ledger.compute_ops >= (t_steps * n) as u64);
    assert!(
        report.ledger.onchip_messages as usize <= 2 * (p as usize - 1) * t_steps,
        "only block boundaries communicate: {} messages",
        report.ledger.onchip_messages
    );

    // Off-chip volume by hand again: the N forcing words stream in
    // once, 32 bits each.
    assert_eq!(report.ledger.offchip_bits, (n as u64) * 32);

    assert_roofline_matches_hand_arithmetic(&ev, &report, &machine);

    // What the roofline model can and cannot see: planned compute
    // volume is placement-independent and both mappings are
    // compute-bound, so their roofline *time scores* tie exactly —
    // while the analytic schedule clock strictly prefers the blocked
    // mapping's real parallelism. This blindness is exactly the
    // winner-flip E20 measures.
    let serial = Mapping::serial(&g).resolve(&g, &machine).unwrap();
    let serial_report = ev.evaluate(&serial);
    let roofline_ev = Evaluator::new(&g, &machine).with_cost_model(CostModelKind::Roofline);
    assert_eq!(
        roofline_ev.score(FigureOfMerit::Time, &report).to_bits(),
        roofline_ev
            .score(FigureOfMerit::Time, &serial_report)
            .to_bits(),
        "compute-bound roofline time is placement-blind"
    );
    assert!(
        report.time_ps.raw() < serial_report.time_ps.raw(),
        "the analytic clock sees the blocked mapping's parallelism"
    );
}
