//! Integration tests for the later-added layers: the surface-syntax
//! parser, the Forall builder, the viz renderer, the recompute
//! transform, and multicast accounting — exercised together across
//! crates.

use fm_repro::core::cost::Evaluator;
use fm_repro::core::forall::Forall;
use fm_repro::core::legality::check;
use fm_repro::core::machine::MachineConfig;
use fm_repro::core::mapping::InputPlacement;
use fm_repro::core::parse::{parse, ParseEnv};
use fm_repro::core::recurrence::{Boundary, OutputSpec};
use fm_repro::core::transform::recompute_at_consumers;
use fm_repro::core::viz::render_schedule;
use fm_repro::grid::Simulator;
use fm_repro::kernels::editdist::{edit_inputs, edit_recurrence, Scoring};
use fm_repro::kernels::util::{random_sequence, DNA};

const PAPER: &str = "\
Forall i, j in (0:N-1, 0:N-1)
  H(i,j) = min(H(i-1, j-1) + f(R[i],Q[j]), H(i-1,j)+D, H(i,j-1)+ I, 0) ;
Map H(i,j) at i % P  time floor(i/P)*(N+P) + i % P + j";

fn paper_env(n: usize, p: i64) -> ParseEnv {
    let mut env = ParseEnv::new(
        &[("N", n as f64), ("P", p as f64), ("D", 1.0), ("I", 1.0)],
        &[("R", vec![n]), ("Q", vec![n])],
    );
    env.output = OutputSpec::LastElement;
    env
}

/// The parsed (skewed) program and the hand-built kernel recurrence
/// produce identical element graphs and identical costs.
#[test]
fn parsed_program_matches_kernel_construction() {
    let n = 16;
    let p = 4i64;
    let parsed = parse(PAPER, &paper_env(n, p)).unwrap();
    let g_parsed = parsed.recurrence.elaborate().unwrap();
    let g_kernel = edit_recurrence(n, n, Scoring::paper_local())
        .elaborate()
        .unwrap();

    // Same structure: node/dep counts match 1:1.
    assert_eq!(g_parsed.len(), g_kernel.len());
    for (a, b) in g_parsed.nodes.iter().zip(&g_kernel.nodes) {
        assert_eq!(a.deps, b.deps);
    }

    // Same values.
    let r = random_sequence(n, DNA, 71);
    let q = random_sequence(n, DNA, 72);
    let va = g_parsed.eval(&edit_inputs(&r, &q));
    let vb = g_kernel.eval(&edit_inputs(&r, &q));
    for (x, y) in va.iter().zip(&vb) {
        assert!(x.approx_eq(*y, 1e-12));
    }

    // Same cost under the parsed mapping.
    let machine = MachineConfig::linear(p as u32);
    let rm = parsed
        .mapping
        .unwrap()
        .resolve(&g_parsed, &machine)
        .unwrap();
    assert!(check(&g_parsed, &rm, &machine).is_legal());
    let rep = Evaluator::new(&g_parsed, &machine)
        .with_all_inputs(InputPlacement::AtUse)
        .evaluate(&rm);
    assert!(rep.utilization > 0.5);
}

/// Builder-made recurrences run through the full pipeline.
#[test]
fn forall_builder_to_simulator() {
    let n = 12;
    let rec = Forall::d1("scan", n)
        .input("X", vec![n])
        .boundary(Boundary::Zero)
        .expr(
            Forall::self_ref([-1]).add(Forall::read(0, vec![fm_repro::core::affine::IdxExpr::i()])),
        )
        .build()
        .unwrap();
    let g = rec.elaborate().unwrap();
    let machine = MachineConfig::linear(1);
    let rm = fm_repro::core::mapping::Mapping::serial(&g)
        .resolve(&g, &machine)
        .unwrap();
    let x: Vec<_> = (1..=n as i64)
        .map(|v| fm_repro::core::value::Value::real(v as f64))
        .collect();
    let res = Simulator::new(machine)
        .run(&g, &rm, &[x], &[InputPlacement::AtUse])
        .unwrap();
    let total = n as f64 * (n as f64 + 1.0) / 2.0;
    assert_eq!(res.values.last().unwrap().re, total);
}

/// The viz renderer draws a parsed program's schedule with every node
/// present exactly once.
#[test]
fn schedule_diagram_covers_every_node() {
    let n = 6;
    let p = 3i64;
    let parsed = parse(PAPER, &paper_env(n, p)).unwrap();
    let g = parsed.recurrence.elaborate().unwrap();
    let machine = MachineConfig::linear(p as u32);
    let rm = parsed.mapping.unwrap().resolve(&g, &machine).unwrap();
    let s = render_schedule(&g, &rm);
    // Every node id appears in the diagram.
    for id in 0..g.len() {
        let token = id.to_string();
        assert!(
            s.split(|c: char| !c.is_ascii_digit()).any(|w| w == token),
            "node {id} missing from diagram:\n{s}"
        );
    }
    assert_eq!(s.lines().count(), 2 + p as usize);
}

/// Recompute + multicast + unicast ranked end to end on a fan-out
/// pattern built from a parsed program's graph.
#[test]
fn transform_and_multicast_compose_with_evaluator() {
    // One producer read by all cells of the first row of an edit matrix
    // is not natural; use the broadcast structure directly instead.
    use fm_repro::core::dataflow::{CExpr, DataflowGraph};
    use fm_repro::core::mapping::ResolvedMapping;
    use fm_repro::core::value::Value;
    let mut g = DataflowGraph::new("fan", 32);
    let x = g.add_input("X", vec![1]);
    let src = g.add_node(CExpr::input(x, 0), vec![], vec![0]);
    let mut place = vec![(0i64, 0i64)];
    let mut time = vec![0i64];
    for i in 0..5i64 {
        let id = g.add_node(CExpr::dep(0), vec![src], vec![i + 1]);
        g.mark_output(id);
        place.push((i + 1, 0));
        time.push(i + 2);
    }
    let rm = ResolvedMapping { place, time };
    let machine = MachineConfig::linear(8);
    assert!(check(&g, &rm, &machine).is_legal());

    let uni = Evaluator::new(&g, &machine)
        .with_all_inputs(InputPlacement::AtUse)
        .evaluate(&rm)
        .energy()
        .raw();
    let multi = Evaluator::new(&g, &machine)
        .with_all_inputs(InputPlacement::AtUse)
        .with_multicast(true)
        .evaluate(&rm)
        .energy()
        .raw();
    let (g2, rm2, _) = recompute_at_consumers(&g, &rm, &[src]);
    let rec = Evaluator::new(&g2, &machine)
        .with_all_inputs(InputPlacement::AtUse)
        .evaluate(&rm2)
        .energy()
        .raw();
    // For a trivially cheap producer: recompute < multicast < unicast.
    assert!(rec < multi, "recompute {rec} !< multicast {multi}");
    assert!(multi < uni, "multicast {multi} !< unicast {uni}");

    // Values unchanged by the transform, verified on the simulator.
    let inputs = vec![vec![Value::real(9.0)]];
    let res = Simulator::new(machine)
        .run(&g2, &rm2, &inputs, &[InputPlacement::AtUse])
        .unwrap();
    for &id in &g2.outputs() {
        assert_eq!(res.values[id as usize].re, 9.0);
    }
}
