//! Allocation regression for the flat evaluation engine: once the
//! scratch arena is warm, candidate evaluation in the tuner hot path
//! must not touch the heap at all. This binary installs a counting
//! global allocator (each integration-test binary may have its own)
//! and counts allocations across a steady-state evaluation loop.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use fm_repro::core::cost::Evaluator;
use fm_repro::core::flat::{BatchEvaluator, EvalScratch};
use fm_repro::core::machine::MachineConfig;
use fm_repro::core::mapping::InputPlacement;
use fm_repro::core::search::FigureOfMerit;
use fm_repro::kernels::fft::{fft_graph, FftFamily, FftVariant};

/// Forwards to the system allocator, counting every allocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn flat_candidate_evaluation_is_zero_alloc_in_steady_state() {
    // The E4 FFT search workload: one graph, a placement × P family.
    let machine = MachineConfig::linear(8);
    let graph = fft_graph(64, FftVariant::Dit);
    let family = FftFamily {
        n: 64,
        p_values: vec![2, 4, 8],
    };
    let candidates = family.candidates_for(&graph, &machine);
    assert!(!candidates.is_empty());
    let ev = Evaluator::new(&graph, &machine).with_all_inputs(InputPlacement::AtUse);
    let batch = BatchEvaluator::new(&ev, &graph, &machine, FigureOfMerit::Edp);
    let mut scratch = EvalScratch::new();

    // Warm-up pass: sizes every scratch buffer for this graph.
    for c in &candidates {
        std::hint::black_box(batch.evaluate_raw_in(c, &mut scratch));
    }

    // Steady state: many passes over the same candidate list through
    // the same arena. The whole point of the flat engine is that this
    // loop performs zero heap allocations.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut evals = 0u64;
    for _ in 0..10 {
        for c in &candidates {
            std::hint::black_box(batch.evaluate_raw_in(c, &mut scratch));
            evals += 1;
        }
    }
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocs, 0,
        "steady-state flat evaluation allocated {allocs} times over {evals} evals"
    );
}

#[test]
fn scratch_arena_reuse_beats_fresh_scratch_on_allocations() {
    // Sanity check on the counter itself: evaluating with a *fresh*
    // arena each time must allocate (the buffers have to come from
    // somewhere), which proves the zero above is a property of arena
    // reuse, not a broken counter.
    let machine = MachineConfig::linear(8);
    let graph = fft_graph(64, FftVariant::Dit);
    let family = FftFamily {
        n: 64,
        p_values: vec![2],
    };
    let candidates = family.candidates_for(&graph, &machine);
    let ev = Evaluator::new(&graph, &machine).with_all_inputs(InputPlacement::AtUse);
    let batch = BatchEvaluator::new(&ev, &graph, &machine, FigureOfMerit::Edp);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut scratch = EvalScratch::new();
    std::hint::black_box(batch.evaluate_raw_in(&candidates[0], &mut scratch));
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(allocs > 0, "a cold arena must allocate to grow its buffers");
}
