//! Property-based tests over the core invariants of the workspace.

use proptest::prelude::*;

use fm_repro::autotune::{Budget, CacheStatus, Refinement, Tuner, TuningCache};
use fm_repro::core::affine::IdxExpr;
use fm_repro::core::cost::Evaluator;
use fm_repro::core::dataflow::{CExpr, DataflowGraph};
use fm_repro::core::delta::DeltaEvaluator;
use fm_repro::core::flat::{BatchEvaluator, EvalScratch, RawEval};
use fm_repro::core::legality::{check, LegalityError};
use fm_repro::core::machine::MachineConfig;
use fm_repro::core::mapping::Mapping;
use fm_repro::core::parse::{parse_idx_expr, ParseEnv};
use fm_repro::core::search::{default_mapper, retime, search, FigureOfMerit, MappingCandidate};
use fm_repro::core::value::Value;
use fm_repro::grid::Simulator;
use fm_repro::kernels::editdist::{edit_distance_ref, edit_inputs, edit_recurrence, Scoring};
use fm_repro::kernels::fft::{dft_naive, fft_ref};
use fm_repro::kernels::scan::{par_scan, scan_ref};
use fm_repro::kernels::sortalg::par_mergesort;
use fm_repro::workspan::{IdealCache, ThreadPool, WorkSpan};

/// Build a random DAG from a proptest-driven spec: each node gets 0–2
/// dependencies drawn from earlier nodes.
fn dag_from_spec(spec: &[(u8, u64, u64)]) -> DataflowGraph {
    let mut g = DataflowGraph::new("prop-dag", 32);
    for (i, &(ndeps, d1, d2)) in spec.iter().enumerate() {
        let i = i as u32;
        let mut deps: Vec<u32> = Vec::new();
        if i > 0 {
            if ndeps >= 1 {
                deps.push((d1 % u64::from(i)) as u32);
            }
            if ndeps >= 2 {
                deps.push((d2 % u64::from(i)) as u32);
            }
        }
        deps.sort_unstable();
        deps.dedup();
        let expr = match deps.len() {
            0 => CExpr::konst(Value::real(f64::from(i))),
            1 => CExpr::dep(0).add(CExpr::konst(Value::real(1.0))),
            _ => CExpr::dep(0).add(CExpr::dep(1)),
        };
        g.add_node(expr, deps, vec![i64::from(i)]);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The default mapper is legal on arbitrary DAGs, and the simulator
    /// then (a) matches the evaluator's energy exactly and (b) matches
    /// the functional evaluation.
    #[test]
    fn default_mapper_legal_and_sim_agrees(
        spec in prop::collection::vec((0u8..=2, any::<u64>(), any::<u64>()), 1..120)
    ) {
        let g = dag_from_spec(&spec);
        let machine = MachineConfig::n5(3, 3);
        let rm = default_mapper(&g, &machine);
        let rep = check(&g, &rm, &machine);
        prop_assert!(rep.is_legal());

        let predicted = Evaluator::new(&g, &machine).evaluate(&rm);
        let sim = Simulator::new(machine);
        let res = sim.run(&g, &rm, &[], &[]).unwrap();
        let pe = predicted.energy().raw();
        let se = res.ledger.energy.total().raw();
        prop_assert!((pe - se).abs() <= 1e-9 * pe.max(1.0));

        let reference = g.eval(&[]);
        for (a, b) in res.values.iter().zip(&reference) {
            prop_assert!(a.approx_eq(*b, 1e-9));
        }
    }

    /// With contention modeled, the simulator still computes correct
    /// values and never finishes before the static schedule promises.
    #[test]
    fn contention_preserves_values_and_only_delays(
        spec in prop::collection::vec((0u8..=2, any::<u64>(), any::<u64>()), 1..100),
        places_seed in any::<u64>()
    ) {
        let g = dag_from_spec(&spec);
        let machine = MachineConfig::n5(3, 2);
        let mut s = places_seed;
        let places: Vec<(i64, i64)> = (0..g.len()).map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (((s >> 33) % 3) as i64, ((s >> 17) % 2) as i64)
        }).collect();
        let rm = retime(&g, &places, &machine);
        let sim = Simulator::new(machine);
        let res = sim.run(&g, &rm, &[], &[]).unwrap();
        prop_assert!(res.cycles_actual >= res.cycles_scheduled);
        let reference = g.eval(&[]);
        for (a, b) in res.values.iter().zip(&reference) {
            prop_assert!(a.approx_eq(*b, 1e-9));
        }
    }

    /// Retiming any placement yields a legal schedule.
    #[test]
    fn retime_always_legal(
        spec in prop::collection::vec((0u8..=2, any::<u64>(), any::<u64>()), 1..80),
        places_seed in any::<u64>()
    ) {
        let g = dag_from_spec(&spec);
        let machine = MachineConfig::n5(4, 2);
        let mut s = places_seed;
        let places: Vec<(i64, i64)> = (0..g.len()).map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (((s >> 33) % 4) as i64, ((s >> 17) % 2) as i64)
        }).collect();
        let rm = retime(&g, &places, &machine);
        prop_assert!(check(&g, &rm, &machine).is_legal());
    }

    /// Edit distance through elaboration equals the serial DP for
    /// arbitrary short strings.
    #[test]
    fn edit_recurrence_matches_dp(
        r in prop::collection::vec(0u8..4, 1..12),
        q in prop::collection::vec(0u8..4, 1..12)
    ) {
        let rec = edit_recurrence(r.len(), q.len(), Scoring::levenshtein());
        let g = rec.elaborate().unwrap();
        let vals = g.eval(&edit_inputs(&r, &q));
        prop_assert_eq!(vals.last().unwrap().re as i64, edit_distance_ref(&r, &q));
    }

    /// Edit distance is a metric-ish quantity: symmetric, zero iff
    /// equal, bounded by max length.
    #[test]
    fn edit_distance_properties(
        r in prop::collection::vec(0u8..4, 0..16),
        q in prop::collection::vec(0u8..4, 0..16)
    ) {
        let d = edit_distance_ref(&r, &q);
        prop_assert_eq!(d, edit_distance_ref(&q, &r));
        prop_assert!(d <= r.len().max(q.len()) as i64);
        if r == q {
            prop_assert_eq!(d, 0);
        } else {
            prop_assert!(d >= 1);
        }
    }

    /// FFT reference matches the naive DFT on random signals.
    #[test]
    fn fft_matches_dft(
        bits in 1u32..6,
        seed in any::<u64>()
    ) {
        let n = 1usize << bits;
        let mut s = seed | 1;
        let x: Vec<Value> = (0..n).map(|_| {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            Value::complex((s % 1000) as f64 / 500.0 - 1.0, ((s >> 10) % 1000) as f64 / 500.0 - 1.0)
        }).collect();
        let a = fft_ref(&x);
        let b = dft_naive(&x);
        for (u, v) in a.iter().zip(&b) {
            prop_assert!(u.approx_eq(*v, 1e-6));
        }
    }

    /// Parallel scan and mergesort agree with serial semantics.
    #[test]
    fn parallel_kernels_match_serial(
        data in prop::collection::vec(-1000i64..1000, 0..2000),
        grain in 1usize..200
    ) {
        let pool = ThreadPool::with_threads(3);
        let (scanned, _) = par_scan(&pool, &data, grain);
        prop_assert_eq!(scanned, scan_ref(&data));

        let as_u64: Vec<u64> = data.iter().map(|&v| (v + 1000) as u64).collect();
        let (sorted, _) = par_mergesort(&pool, &as_u64, grain);
        let mut expect = as_u64.clone();
        expect.sort_unstable();
        prop_assert_eq!(sorted, expect);
    }

    /// WorkSpan algebra invariants: span never exceeds work; greedy
    /// bound dominates both terms; composition is monotone.
    #[test]
    fn workspan_algebra_invariants(
        costs in prop::collection::vec(0.0f64..1e6, 1..20),
        p in 1u64..64
    ) {
        let mut acc = WorkSpan::ZERO;
        for (i, &c) in costs.iter().enumerate() {
            let leaf = WorkSpan::leaf(c);
            acc = if i % 2 == 0 { acc.seq(leaf) } else { acc.par(leaf) };
            prop_assert!(acc.span <= acc.work + 1e-9);
        }
        let bound = acc.greedy_bound(p);
        prop_assert!(bound + 1e-9 >= acc.span);
        prop_assert!(bound + 1e-9 >= acc.work / p as f64);
    }

    /// The affine-expression syntax round-trips: Display output
    /// reparses to an expression with identical values.
    #[test]
    fn idx_expr_display_reparses(ops in prop::collection::vec((0u8..5, 1i64..9), 0..8)) {
        // Build an expression over i, j by folding random operations.
        let mut e = IdxExpr::i();
        for &(op, c) in &ops {
            e = match op {
                0 => e + IdxExpr::j(),
                1 => e - IdxExpr::c(c),
                2 => e * c,
                3 => e % c,
                _ => e.div(c),
            };
        }
        let printed = format!("{e}");
        let env = ParseEnv::new(&[], &[]);
        let reparsed = parse_idx_expr(&printed, &["i", "j"], &env).unwrap();
        for i in -3i64..4 {
            for j in -3i64..4 {
                prop_assert_eq!(e.eval(&[i, j]), reparsed.eval(&[i, j]), "{}", printed);
            }
        }
    }

    /// The parallel tuner and the serial `search()` agree on the
    /// winning label and objective score for arbitrary DAGs and
    /// candidate sets (the tuner's determinism guarantee).
    #[test]
    fn parallel_tuner_matches_serial_search(
        spec in prop::collection::vec((0u8..=2, any::<u64>(), any::<u64>()), 1..60),
        places_seed in any::<u64>()
    ) {
        let g = dag_from_spec(&spec);
        let machine = MachineConfig::n5(3, 2);
        let mut cands = vec![
            MappingCandidate::new("serial", Mapping::serial(&g)),
            MappingCandidate::new("default", Mapping::Table(default_mapper(&g, &machine))),
        ];
        let mut s = places_seed;
        for k in 0..4 {
            let places: Vec<(i64, i64)> = (0..g.len()).map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (((s >> 33) % 3) as i64, ((s >> 17) % 2) as i64)
            }).collect();
            cands.push(MappingCandidate::new(
                format!("retimed-{k}"),
                Mapping::Table(retime(&g, &places, &machine)),
            ));
        }
        let ev = Evaluator::new(&g, &machine);
        let serial = search(&ev, &g, &machine, &cands, FigureOfMerit::Edp);
        let pool = ThreadPool::with_threads(3);
        let tuned = Tuner::new(&ev, &g, &machine, FigureOfMerit::Edp)
            .with_pool(&pool)
            .tune(&cands);
        let best = tuned.best.unwrap();
        let sbest = serial.best().unwrap();
        prop_assert_eq!(best.score, sbest.score);
        prop_assert_eq!(best.label, sbest.label.clone());
    }

    /// Every mapping the tuner persists in its cache replays legally:
    /// a warm run reports a hit, evaluates nothing, and its winner
    /// passes the legality checker with the cold run's score.
    #[test]
    fn cached_tuning_results_replay_legally(
        spec in prop::collection::vec((0u8..=2, any::<u64>(), any::<u64>()), 1..40)
    ) {
        let g = dag_from_spec(&spec);
        let machine = MachineConfig::n5(2, 2);
        let cands = vec![
            MappingCandidate::new("serial", Mapping::serial(&g)),
            MappingCandidate::new("default", Mapping::Table(default_mapper(&g, &machine))),
        ];
        let ev = Evaluator::new(&g, &machine);
        let dir = std::env::temp_dir()
            .join(format!("fm-repro-proptest-cache-{}", std::process::id()));
        let cache = TuningCache::open(&dir).unwrap();
        let cold = Tuner::new(&ev, &g, &machine, FigureOfMerit::Time)
            .with_cache(cache.clone())
            .tune(&cands);
        let warm = Tuner::new(&ev, &g, &machine, FigureOfMerit::Time)
            .with_cache(cache)
            .tune(&cands);
        prop_assert_eq!(warm.cache, CacheStatus::Hit);
        prop_assert_eq!(warm.evaluated, 0);
        let (c, w) = (cold.best.unwrap(), warm.best.unwrap());
        prop_assert!(check(&g, &w.resolved, &machine).is_legal());
        prop_assert_eq!(c.score, w.score);
        prop_assert_eq!(c.label, w.label);
    }

    /// The incremental evaluator stays bit-exact with the full
    /// pipeline under arbitrary move sequences: after every move, its
    /// mapping equals `retime` of its placement and its report equals
    /// `Evaluator::evaluate` of that mapping, field for field.
    #[test]
    fn incremental_moves_stay_bit_exact(
        spec in prop::collection::vec((0u8..=2, any::<u64>(), any::<u64>()), 1..80),
        moves_seed in any::<u64>()
    ) {
        let g = dag_from_spec(&spec);
        let machine = MachineConfig::n5(3, 2);
        let ev = Evaluator::new(&g, &machine);
        let init = default_mapper(&g, &machine);
        let mut delta = DeltaEvaluator::new(&ev, &init.place).with_paranoia(false);
        let mut s = moves_seed;
        for _ in 0..30 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let node = ((s >> 48) as usize) % g.len();
            let pe = (((s >> 33) % 3) as i64, ((s >> 17) % 2) as i64);
            delta.apply_move(node, pe);
            let rm = delta.mapping();
            prop_assert_eq!(&rm, &retime(&g, &rm.place, &machine));
            prop_assert_eq!(delta.report(), ev.evaluate(&rm));
        }
    }

    /// The flat engine (interned PE ids, SoA cost folds, scratch
    /// arena), the incremental delta engine, and the reference
    /// evaluation path agree to the score *bit* across random graphs,
    /// random mappings, and random move sequences.
    #[test]
    fn flat_delta_and_reference_agree_on_score_bits(
        spec in prop::collection::vec((0u8..=2, any::<u64>(), any::<u64>()), 1..60),
        moves_seed in any::<u64>()
    ) {
        let g = dag_from_spec(&spec);
        let machine = MachineConfig::n5(3, 2);
        let ev = Evaluator::new(&g, &machine);
        let fom = FigureOfMerit::Edp;
        let batch = BatchEvaluator::new(&ev, &g, &machine, fom);
        let mut scratch = EvalScratch::new();
        let init = default_mapper(&g, &machine);
        let mut delta = DeltaEvaluator::new(&ev, &init.place).with_paranoia(false);
        let mut s = moves_seed;
        for _ in 0..20 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let node = ((s >> 48) as usize) % g.len();
            let pe = (((s >> 33) % 3) as i64, ((s >> 17) % 2) as i64);
            delta.apply_move(node, pe);
            let rm = delta.mapping();
            let ref_report = ev.evaluate_ref(&rm);
            // Delta repair path: bit-identical report.
            prop_assert_eq!(delta.report(), ref_report.clone());
            // Flat candidate path: bit-identical score (the moves keep
            // the mapping legal by construction — retimed placements
            // on an in-bounds grid).
            let cand = MappingCandidate::new("prop", Mapping::Table(rm.clone()));
            match batch.evaluate_raw_in(&cand, &mut scratch) {
                RawEval::Legal { score, cycles, .. } => {
                    prop_assert_eq!(score.to_bits(), fom.score(&ref_report).to_bits());
                    prop_assert_eq!(cycles, ref_report.cycles);
                }
                RawEval::Illegal(total) => {
                    // Tile overflow can make a random pile-up illegal;
                    // the flat violation count must then match the
                    // full checker's exactly.
                    prop_assert_eq!(total, check(&g, &rm, &machine).total_violations);
                    prop_assert!(total > 0);
                }
                RawEval::Unresolvable => prop_assert!(false, "table mapping must resolve"),
            }
        }
    }

    /// The incremental per-PE tile-peak tracking agrees with the full
    /// legality checker's storage verdicts under arbitrary moves, on a
    /// machine with tiles small enough that violations actually occur.
    #[test]
    fn incremental_legality_matches_full_checker(
        spec in prop::collection::vec((0u8..=2, any::<u64>(), any::<u64>()), 1..60),
        moves_seed in any::<u64>()
    ) {
        let g = dag_from_spec(&spec);
        let mut machine = MachineConfig::n5(2, 2);
        machine.tile_bits = 4 * 32; // tiny tiles: hoarding PEs go over
        machine.issue_width = 64; // keep issue legal while nodes pile up
        let ev = Evaluator::new(&g, &machine);
        let init = default_mapper(&g, &machine);
        let mut delta = DeltaEvaluator::new(&ev, &init.place).with_paranoia(false);
        let mut s = moves_seed;
        for _ in 0..30 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let node = ((s >> 48) as usize) % g.len();
            let pe = (((s >> 33) % 2) as i64, ((s >> 17) % 2) as i64);
            delta.apply_move(node, pe);
            let rep = check(&g, &delta.mapping(), &machine);
            let storage = rep
                .errors
                .iter()
                .filter(|e| matches!(e, LegalityError::StorageExceeded { .. }))
                .count() as u64;
            // With 4 PEs we sit far below the checker's 64-error cap,
            // so the counts are exact, not truncated.
            prop_assert_eq!(delta.storage_violations(), storage);
        }
    }

    /// The steal-scheduled tuner (work-stealing pool + ordered
    /// reduction) picks the identical winner, evaluation prefix, and
    /// trajectory as the serial tuner — convergence window and
    /// annealing refinement included.
    #[test]
    fn steal_scheduled_tuner_matches_serial(
        spec in prop::collection::vec((0u8..=2, any::<u64>(), any::<u64>()), 1..50),
        places_seed in any::<u64>(),
        window in 2usize..8
    ) {
        let g = dag_from_spec(&spec);
        let machine = MachineConfig::n5(3, 2);
        let mut cands = vec![
            MappingCandidate::new("serial", Mapping::serial(&g)),
            MappingCandidate::new("default", Mapping::Table(default_mapper(&g, &machine))),
        ];
        let mut s = places_seed;
        for k in 0..6 {
            let places: Vec<(i64, i64)> = (0..g.len()).map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (((s >> 33) % 3) as i64, ((s >> 17) % 2) as i64)
            }).collect();
            cands.push(MappingCandidate::new(
                format!("retimed-{k}"),
                Mapping::Table(retime(&g, &places, &machine)),
            ));
        }
        let ev = Evaluator::new(&g, &machine);
        let mut budget = Budget::unlimited();
        budget.convergence_window = Some(window);
        let refinement = Refinement { chains: 2, iters: 40, seed: places_seed };
        let serial = Tuner::new(&ev, &g, &machine, FigureOfMerit::Edp)
            .with_budget(budget)
            .with_refinement(refinement)
            .tune(&cands);
        let pool = ThreadPool::with_threads(4);
        let stolen = Tuner::new(&ev, &g, &machine, FigureOfMerit::Edp)
            .with_budget(budget)
            .with_refinement(refinement)
            .with_pool(&pool)
            .tune(&cands);
        prop_assert_eq!(serial.evaluated, stolen.evaluated);
        prop_assert_eq!(&serial.trajectory, &stolen.trajectory);
        let (a, b) = (serial.best.unwrap(), stolen.best.unwrap());
        prop_assert_eq!(a.label, b.label);
        prop_assert_eq!(a.score, b.score);
        prop_assert_eq!(a.resolved, b.resolved);
        let al: Vec<&str> = serial.outcome.results.iter().map(|r| r.label.as_str()).collect();
        let bl: Vec<&str> = stolen.outcome.results.iter().map(|r| r.label.as_str()).collect();
        prop_assert_eq!(al, bl);
    }

    /// Ideal cache sanity: misses ≤ accesses; a cold sequential scan of
    /// L-aligned data misses exactly ⌈len/L⌉ times.
    #[test]
    fn cache_invariants(
        len in 1usize..4000,
        l_pow in 0u32..5,
        z_lines in 1usize..64
    ) {
        let l = 1usize << l_pow;
        let mut c = IdealCache::new(z_lines * l, l);
        c.access_range(0, len);
        let s = c.stats();
        prop_assert!(s.misses <= s.accesses);
        prop_assert_eq!(s.misses as usize, len.div_ceil(l));
    }
}
