//! Cross-crate integration tests: the full pipeline from recurrence to
//! simulated spatial execution, across all kernels and models.
#![allow(clippy::needless_range_loop)] // matrix-style i/j indexing reads clearest in checks

use fm_repro::core::cost::{conventional_core_report, Evaluator};
use fm_repro::core::legality::check;
use fm_repro::core::machine::MachineConfig;
use fm_repro::core::mapping::InputPlacement;
use fm_repro::core::pramcost::PramCost;
use fm_repro::core::search::MappingFamily;
use fm_repro::core::search::{default_mapper, search, FigureOfMerit};
use fm_repro::grid::{SimConfig, Simulator};
use fm_repro::kernels::editdist::{
    edit_distance_ref, edit_inputs, edit_recurrence, paper_input_placements, skewed_mapping,
    EditDistFamily, Scoring,
};
use fm_repro::kernels::fft::{fft_graph, fft_mapping, fft_ref, FftVariant, LanePlacement};
use fm_repro::kernels::matmul::{matmul_recurrence, matmul_ref, matrix_values, systolic_mapping};
use fm_repro::kernels::stencil::{
    blocked_mapping, stencil_inputs, stencil_recurrence, stencil_ref,
};
use fm_repro::kernels::util::{random_sequence, XorShift, DNA};

/// Predicted energy must equal simulated energy, exactly, for every
/// kernel and mapping in the suite — the F&M "predictable cost" claim.
#[test]
fn predicted_energy_equals_simulated_across_kernels() {
    // Edit distance over several P.
    let n = 24;
    let r = random_sequence(n, DNA, 31);
    let q = random_sequence(n, DNA, 32);
    let rec = edit_recurrence(n, n, Scoring::paper_local());
    let g = rec.elaborate().unwrap();
    for p in [1i64, 3, 8] {
        let machine = MachineConfig::linear(p as u32);
        let rm = skewed_mapping(p, n).resolve(&g, &machine).unwrap();
        let placements = paper_input_placements(p);
        let mut ev = Evaluator::new(&g, &machine);
        for (i, pl) in placements.iter().enumerate() {
            ev = ev.with_input_placement(i, pl.clone());
        }
        let predicted = ev.evaluate(&rm);
        let sim = Simulator::new(machine);
        let res = sim.run(&g, &rm, &edit_inputs(&r, &q), &placements).unwrap();
        let pe = predicted.energy().raw();
        let se = res.ledger.energy.total().raw();
        assert!(
            (pe - se).abs() <= 1e-6 * pe.max(1.0),
            "edit P={p}: predicted {pe} vs simulated {se}"
        );
        assert_eq!(predicted.ledger.onchip_messages, res.ledger.onchip_messages);
    }

    // FFT, both variants and placements.
    let nf = 32;
    let x: Vec<_> = (0..nf)
        .map(|i| fm_repro::core::value::Value::real(i as f64))
        .collect();
    for variant in [FftVariant::Dit, FftVariant::Dif] {
        let g = fft_graph(nf, variant);
        for placement in [LanePlacement::Block, LanePlacement::Cyclic] {
            let machine = MachineConfig::linear(4);
            let rm = fft_mapping(&g, nf, 4, placement, &machine);
            let predicted = Evaluator::new(&g, &machine)
                .with_all_inputs(InputPlacement::AtUse)
                .evaluate(&rm);
            let sim = Simulator::new(machine);
            let res = sim
                .run(&g, &rm, std::slice::from_ref(&x), &[InputPlacement::AtUse])
                .unwrap();
            let pe = predicted.energy().raw();
            let se = res.ledger.energy.total().raw();
            assert!((pe - se).abs() <= 1e-6 * pe, "{variant:?} {placement:?}");
        }
    }
}

/// The simulator's functional results match serial references through
/// the whole stack (recurrence elaboration + mapping + NoC simulation).
#[test]
fn simulated_values_match_references() {
    // Edit distance final value.
    let r = random_sequence(20, DNA, 41);
    let q = random_sequence(17, DNA, 42);
    let rec = edit_recurrence(r.len(), q.len(), Scoring::levenshtein());
    let g = rec.elaborate().unwrap();
    let machine = MachineConfig::linear(4);
    let rm = skewed_mapping(4, q.len()).resolve(&g, &machine).unwrap();
    let sim = Simulator::new(machine);
    let res = sim
        .run(&g, &rm, &edit_inputs(&r, &q), &paper_input_placements(4))
        .unwrap();
    assert_eq!(
        res.values.last().unwrap().re as i64,
        edit_distance_ref(&r, &q)
    );

    // FFT values.
    let n = 16;
    let mut rng = XorShift::new(5);
    let x: Vec<_> = (0..n)
        .map(|_| fm_repro::core::value::Value::complex(rng.unit_f64(), rng.unit_f64()))
        .collect();
    let g = fft_graph(n, FftVariant::Dit);
    let machine = MachineConfig::linear(4);
    let rm = fft_mapping(&g, n, 4, LanePlacement::Block, &machine);
    let sim = Simulator::new(machine);
    let res = sim
        .run(&g, &rm, std::slice::from_ref(&x), &[InputPlacement::AtUse])
        .unwrap();
    let expect = fft_ref(&x);
    for &id in &g.outputs() {
        let lane = g.nodes[id as usize].index[1] as usize;
        assert!(res.values[id as usize].approx_eq(expect[lane], 1e-9));
    }
}

/// The default mapper produces a legal mapping for every kernel graph —
/// "programmers that don't want to bother with mapping can use a
/// default mapper".
#[test]
fn default_mapper_legal_on_all_kernels() {
    let machine = MachineConfig::n5(4, 4);
    let graphs = vec![
        edit_recurrence(12, 12, Scoring::paper_local())
            .elaborate()
            .unwrap(),
        fft_graph(16, FftVariant::Dit),
        fft_graph(16, FftVariant::Dif),
        matmul_recurrence(5).elaborate().unwrap(),
        stencil_recurrence(6, 12).elaborate().unwrap(),
    ];
    for g in &graphs {
        let rm = default_mapper(g, &machine);
        let rep = check(g, &rm, &machine);
        assert!(
            rep.is_legal(),
            "{}: {:?}",
            g.name,
            &rep.errors[..rep.errors.len().min(2)]
        );
    }
}

/// Default-mapper cost is "no worse than today's abstractions": at most
/// the fully serial schedule's time (E8's core assertion).
#[test]
fn default_mapper_no_worse_than_serial() {
    let machine = MachineConfig::n5(4, 4);
    for g in [
        fft_graph(32, FftVariant::Dit),
        stencil_recurrence(8, 16).elaborate().unwrap(),
    ] {
        let rm_default = default_mapper(&g, &machine);
        let serial = fm_repro::core::mapping::Mapping::serial(&g)
            .resolve(&g, &machine)
            .unwrap();
        assert!(
            rm_default.makespan() <= serial.makespan(),
            "{}: default {} vs serial {}",
            g.name,
            rm_default.makespan(),
            serial.makespan()
        );
    }
}

/// Matmul systolic wavefront on the grid, checked against the serial
/// reference through the simulator.
#[test]
fn matmul_systolic_end_to_end() {
    let n = 5;
    let mut rng = XorShift::new(77);
    let a: Vec<f64> = (0..n * n).map(|_| rng.unit_f64()).collect();
    let b: Vec<f64> = (0..n * n).map(|_| rng.unit_f64()).collect();
    let rec = matmul_recurrence(n);
    let g = rec.elaborate().unwrap();
    let machine = MachineConfig::n5(n as u32, n as u32);
    let rm = systolic_mapping().resolve(&g, &machine).unwrap();
    let sim = Simulator::new(machine);
    let res = sim
        .run(
            &g,
            &rm,
            &[matrix_values(&a), matrix_values(&b)],
            &[InputPlacement::AtUse, InputPlacement::AtUse],
        )
        .unwrap();
    let c = matmul_ref(&a, &b, n);
    for i in 0..n {
        for j in 0..n {
            let id = rec
                .domain
                .flatten(&[i as i64, j as i64, n as i64 - 1])
                .unwrap();
            assert!((res.values[id].re - c[i * n + j]).abs() < 1e-9);
        }
    }
}

/// Stencil values survive the full pipeline at several grid sizes.
#[test]
fn stencil_end_to_end() {
    let (t, n) = (6, 24);
    let mut rng = XorShift::new(13);
    let f: Vec<f64> = (0..n).map(|_| rng.unit_f64()).collect();
    let rec = stencil_recurrence(t, n);
    let g = rec.elaborate().unwrap();
    for p in [2i64, 4, 6] {
        let machine = MachineConfig::linear(p as u32);
        let rm = blocked_mapping(n, p).resolve(&g, &machine).unwrap();
        let sim = Simulator::new(machine);
        let res = sim
            .run(&g, &rm, &stencil_inputs(&f), &[InputPlacement::AtUse])
            .unwrap();
        let expect = stencil_ref(&f, t);
        for i in 0..n {
            let id = rec.domain.flatten(&[t as i64 - 1, i as i64]).unwrap();
            assert!(
                (res.values[id].re - expect[i]).abs() < 1e-9,
                "P={p} site {i}"
            );
        }
    }
}

/// The PRAM lens and the physical lens disagree on ranking — E5's
/// inversion, asserted end to end.
#[test]
fn pram_vs_physical_ranking_inversion() {
    let n = 64;
    let p = 8;
    let machine = MachineConfig::linear(p);
    let dit = fft_graph(n, FftVariant::Dit);
    let dif = fft_graph(n, FftVariant::Dif);

    // PRAM: the copy layer is *cheaper-than-noise* — dif looks ~equal.
    let pram_ratio = PramCost::of(&dif).work as f64 / PramCost::of(&dit).work as f64;
    assert!(pram_ratio < 1.15);

    // Physical: the gather layer costs real millimeters.
    let rm_dit = fft_mapping(&dit, n, p, LanePlacement::Block, &machine);
    let rm_dif = fft_mapping(&dif, n, p, LanePlacement::Block, &machine);
    let e_dit = Evaluator::new(&dit, &machine)
        .with_all_inputs(InputPlacement::AtUse)
        .evaluate(&rm_dit);
    let e_dif = Evaluator::new(&dif, &machine)
        .with_all_inputs(InputPlacement::AtUse)
        .evaluate(&rm_dif);
    let phys_ratio = e_dif.energy().raw() / e_dit.energy().raw();
    assert!(
        phys_ratio > 1.15,
        "physical lens should separate: ratio {phys_ratio}"
    );
}

/// A conventional core pays orders of magnitude more energy than the
/// mapped spatial execution of the same function (E2).
#[test]
fn conventional_core_orders_of_magnitude_worse() {
    let n = 64;
    let machine = MachineConfig::linear(16);
    let g = fft_graph(n, FftVariant::Dit);
    let rm = fft_mapping(&g, n, 16, LanePlacement::Block, &machine);
    let mapped = Evaluator::new(&g, &machine)
        .with_all_inputs(InputPlacement::AtUse)
        .evaluate(&rm);
    let conv = conventional_core_report(&g, &machine);
    assert!(conv.energy().raw() > 50.0 * mapped.energy().raw());
}

/// The E3 search over the edit-distance family picks the largest legal
/// P for time, and the search bookkeeping is consistent.
#[test]
fn editdist_family_search_consistency() {
    let n = 32;
    let rec = edit_recurrence(n, n, Scoring::paper_local());
    let g = rec.elaborate().unwrap();
    let machine = MachineConfig::linear(16);
    let family = EditDistFamily {
        m: n,
        p_values: vec![1, 2, 4, 8, 16],
        include_literal: true,
    };
    let cands = family.candidates(&machine);
    let ev = Evaluator::new(&g, &machine);
    let out = search(&ev, &g, &machine, &cands, FigureOfMerit::Time);
    assert_eq!(out.evaluated, 10);
    // literal legal only at P=1 → 6 legal, 4 rejected.
    assert_eq!(out.legal, 6);
    assert_eq!(out.rejected.len(), 4);
    assert!(out.best().unwrap().label.contains("P=16"));
    assert!(!out.pareto.is_empty());
}

/// Contention-aware simulation never reports fewer cycles than the
/// schedule, and disabling contention recovers the schedule exactly.
#[test]
fn contention_only_adds_cycles() {
    let n = 32;
    let g = fft_graph(n, FftVariant::Dif);
    let machine = MachineConfig::linear(8);
    let rm = fft_mapping(&g, n, 8, LanePlacement::Cyclic, &machine);
    let x: Vec<_> = (0..n)
        .map(|i| fm_repro::core::value::Value::real(i as f64))
        .collect();

    let with = Simulator::new(machine.clone())
        .run(&g, &rm, std::slice::from_ref(&x), &[InputPlacement::AtUse])
        .unwrap();
    assert!(with.cycles_actual >= with.cycles_scheduled);

    let without = Simulator::new(machine)
        .with_config(SimConfig {
            contention: false,
            ..SimConfig::default()
        })
        .run(&g, &rm, &[x], &[InputPlacement::AtUse])
        .unwrap();
    assert_eq!(without.cycles_actual, without.cycles_scheduled);
}
