//! Processor sweep of the paper's edit-distance mapping (experiment E3).
//!
//! Sweeps P over the corrected anti-diagonal family and prints cycles,
//! speedup, utilization, and energy split. Also demonstrates the
//! legality checker rejecting the paper's *literal* time expression for
//! P > 1 (the missing systolic skew; see the editdist module docs).
//!
//! Run with: `cargo run --release --example edit_distance_sweep`

use fm_repro::core::cost::Evaluator;
use fm_repro::core::legality;
use fm_repro::core::machine::MachineConfig;
use fm_repro::kernels::editdist::{
    edit_recurrence, paper_input_placements, paper_literal_mapping, skewed_mapping, Scoring,
};

fn main() {
    let n = 128;
    println!("== E3: anti-diagonal mapping sweep, {n}×{n} edit distance ==\n");

    let rec = edit_recurrence(n, n, Scoring::paper_local());
    let graph = rec.elaborate().expect("well-founded");
    println!(
        "function: {} elements, critical path {} (max parallelism {:.0})\n",
        graph.len(),
        graph.depth(),
        graph.len() as f64 / graph.depth() as f64
    );

    // The paper's literal mapping, as written.
    println!("paper's literal mapping (time = floor(i/P)*N + j):");
    for p in [1i64, 4] {
        let machine = MachineConfig::linear(p as u32);
        let rm = paper_literal_mapping(p, n)
            .resolve(&graph, &machine)
            .unwrap();
        let rep = legality::check(&graph, &rm, &machine);
        if rep.is_legal() {
            println!("  P={p}: legal (serial row-major)");
        } else {
            println!(
                "  P={p}: ILLEGAL — {} causality violations (rows of a block are simultaneous; needs the +i%P skew)",
                rep.total_violations
            );
        }
    }

    println!("\ncorrected skew (time = floor(i/P)*(N+P) + i%P + j):\n");
    println!(
        "  {:>4} | {:>8} | {:>8} | {:>6} | {:>11} | {:>12} | {:>10}",
        "P", "cycles", "speedup", "util", "compute pJ", "on-chip pJ", "comm frac"
    );
    let mut base = None;
    for p in [1i64, 2, 4, 8, 16, 32, 64, 128] {
        let machine = MachineConfig::linear(p as u32);
        let rm = skewed_mapping(p, n).resolve(&graph, &machine).unwrap();
        let legal = legality::check(&graph, &rm, &machine);
        assert!(legal.is_legal(), "P={p}");
        let mut ev = Evaluator::new(&graph, &machine);
        for (i, pl) in paper_input_placements(p).into_iter().enumerate() {
            ev = ev.with_input_placement(i, pl);
        }
        let rep = ev.evaluate(&rm);
        let base_cycles = *base.get_or_insert(rep.cycles);
        println!(
            "  {:>4} | {:>8} | {:>7.2}x | {:>5.1}% | {:>11.1} | {:>12.1} | {:>9.1}%",
            p,
            rep.cycles,
            base_cycles as f64 / rep.cycles as f64,
            rep.utilization * 100.0,
            rep.ledger.energy.compute.raw() / 1e3,
            rep.ledger.energy.onchip_comm.raw() / 1e3,
            rep.ledger.energy.communication_fraction() * 100.0,
        );
    }
    println!("\nnote the geometry effect: the die is fixed, so more PEs means a");
    println!("finer grid and *shorter* hops — message count grows with P but each");
    println!("message travels less silicon, and communication energy falls even");
    println!("as its share of the total stays dominant. Locality is everything,");
    println!("which is \u{2014} exactly \u{2014} the paper's point.");
}
