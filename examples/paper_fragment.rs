//! The paper's program, run as written.
//!
//! Parses the literal text of the §3 code fragment, checks the mapping,
//! reports the causality violation in the published time expression,
//! fixes it *in the surface syntax*, draws the corrected space-time
//! schedule, and executes it on the grid simulator against the serial
//! reference.
//!
//! Run with: `cargo run --release --example paper_fragment`
#![allow(clippy::needless_range_loop)] // matrix-style i/j indexing reads clearest in checks

use fm_repro::core::legality;
use fm_repro::core::machine::MachineConfig;
use fm_repro::core::parse::{parse, ParseEnv};
use fm_repro::core::recurrence::OutputSpec;
use fm_repro::core::viz::render_schedule;
use fm_repro::grid::Simulator;
use fm_repro::kernels::editdist::{edit_inputs, local_matrix_ref, Scoring};
use fm_repro::kernels::util::{random_sequence, DNA};

const PAPER_TEXT: &str = "\
Forall i, j in (0:N-1, 0:N-1)
  H(i,j) = min(H(i-1, j-1) + f(R[i],Q[j]), H(i-1,j)+D, H(i,j-1)+ I, 0) ;
Map H(i,j) at i % P  time floor(i/P)*N + j";

const CORRECTED_TEXT: &str = "\
Forall i, j in (0:N-1, 0:N-1)
  H(i,j) = min(H(i-1, j-1) + f(R[i],Q[j]), H(i-1,j)+D, H(i,j-1)+ I, 0) ;
Map H(i,j) at i % P  time floor(i/P)*(N+P) + i % P + j";

fn main() {
    let n = 8usize;
    let p = 4i64;
    let mut env = ParseEnv::new(
        &[("N", n as f64), ("P", p as f64), ("D", 1.0), ("I", 1.0)],
        &[("R", vec![n]), ("Q", vec![n])],
    );
    env.output = OutputSpec::LastElement;

    println!("== the paper's §3 fragment, as written ==\n");
    println!("{PAPER_TEXT}\n");
    println!("(N = {n}, P = {p}, D = I = 1)\n");

    let parsed = parse(PAPER_TEXT, &env).expect("the paper's fragment parses");
    let graph = parsed.recurrence.elaborate().expect("well-founded");
    let machine = MachineConfig::linear(p as u32);
    let rm = parsed
        .mapping
        .expect("Map clause present")
        .resolve(&graph, &machine)
        .unwrap();
    let report = legality::check(&graph, &rm, &machine);
    println!(
        "legality check: {} ({} causality violations)",
        if report.is_legal() {
            "LEGAL"
        } else {
            "ILLEGAL"
        },
        report.total_violations
    );
    if let Some(first) = report.errors.first() {
        println!("first violation: {first:?}");
    }
    println!("\n→ rows of one block are simultaneous; the anti-diagonal needs a skew.\n");

    println!("== corrected in the same syntax ==\n");
    println!("{CORRECTED_TEXT}\n");
    let fixed = parse(CORRECTED_TEXT, &env).expect("corrected fragment parses");
    let rm2 = fixed
        .mapping
        .expect("Map clause present")
        .resolve(&graph, &machine)
        .unwrap();
    let report2 = legality::check(&graph, &rm2, &machine);
    assert!(report2.is_legal());
    println!("legality check: LEGAL\n");

    println!("space-time schedule (node ids = H cells, row-major):\n");
    print!("{}", render_schedule(&graph, &rm2));

    // Execute on the grid and verify against the serial DP.
    let r = random_sequence(n, DNA, 1);
    let q = random_sequence(n, DNA, 2);
    let sim = Simulator::new(machine);
    let res = sim
        .run(
            &graph,
            &rm2,
            &edit_inputs(&r, &q),
            &[
                fm_repro::core::mapping::InputPlacement::AtUse,
                fm_repro::core::mapping::InputPlacement::AtUse,
            ],
        )
        .unwrap();
    let h = local_matrix_ref(&r, &q, Scoring::paper_local());
    for i in 0..n {
        for j in 0..n {
            let id = fixed
                .recurrence
                .domain
                .flatten(&[i as i64, j as i64])
                .unwrap();
            assert!((res.values[id].re - h[i][j]).abs() < 1e-9);
        }
    }
    println!(
        "\nsimulated {} cycles (scheduled {}), all {} cells match the serial DP ✓",
        res.cycles_actual,
        res.cycles_scheduled,
        n * n
    );
}
