//! A two-layer MLP as a composed pipeline of mapped modules.
//!
//! Dally's bio and statement point at DNN accelerators
//! ("weight-stationary dataflows") and modular composition ("the output
//! of module A must have the same mapping as the input of module B …
//! or a remapping module must be inserted"). This example builds
//! `y = W₂·relu(W₁·x)` as three mapped modules — matmul,
//! elementwise ReLU, matmul — prices the pipeline under aligned and
//! misaligned inter-layer layouts, and checks the functional result
//! against a serial reference.
//!
//! Run with: `cargo run --release --example dnn_pipeline`

use fm_repro::core::compose::{DataLayout, Module, Pipeline};
use fm_repro::core::cost::Evaluator;
use fm_repro::core::dataflow::{CExpr, DataflowGraph};
use fm_repro::core::legality::check;
use fm_repro::core::machine::MachineConfig;
use fm_repro::core::mapping::{InputPlacement, ResolvedMapping};
use fm_repro::core::search::retime;
use fm_repro::core::value::Value;
use fm_repro::kernels::util::XorShift;

/// Build a dense layer y = W·x as a dataflow graph (one dot-product
/// chain per output neuron), with neurons block-distributed over `p`
/// PEs.
fn dense_layer(
    name: &str,
    w: &[f64],
    n_out: usize,
    n_in: usize,
    p: i64,
    machine: &MachineConfig,
    relu: bool,
) -> (DataflowGraph, ResolvedMapping) {
    let mut g = DataflowGraph::new(name, 32);
    let x = g.add_input("x", vec![n_in]);
    let block = n_out.div_ceil(p as usize).max(1);
    let mut places = Vec::new();
    for o in 0..n_out {
        // Dot product as a chain of multiply-accumulate nodes.
        let mut acc: Option<u32> = None;
        for i in 0..n_in {
            let term = CExpr::input(x, i as u32).mul(CExpr::konst(Value::real(w[o * n_in + i])));
            let id = match acc {
                None => g.add_node(term, vec![], vec![o as i64, i as i64]),
                Some(a) => g.add_node(CExpr::dep(0).add(term), vec![a], vec![o as i64, i as i64]),
            };
            places.push(((o / block) as i64, 0i64));
            acc = Some(id);
        }
        // Optional ReLU: max(acc, 0).
        let last = acc.expect("n_in > 0");
        let out_id = if relu {
            let id = g.add_node(
                CExpr::dep(0).max(CExpr::konst(Value::ZERO)),
                vec![last],
                vec![o as i64, n_in as i64],
            );
            places.push(((o / block) as i64, 0i64));
            id
        } else {
            last
        };
        g.mark_output(out_id);
    }
    let rm = retime(&g, &places, machine);
    (g, rm)
}

fn dense_ref(w: &[f64], x: &[f64], n_out: usize, n_in: usize, relu: bool) -> Vec<f64> {
    (0..n_out)
        .map(|o| {
            let s: f64 = (0..n_in).map(|i| w[o * n_in + i] * x[i]).sum();
            if relu {
                s.max(0.0)
            } else {
                s
            }
        })
        .collect()
}

fn main() {
    let (n_in, n_hidden, n_out) = (16usize, 32usize, 8usize);
    let p = 8i64;
    let machine = MachineConfig::linear(p as u32);
    let mut rng = XorShift::new(7);
    let w1: Vec<f64> = (0..n_hidden * n_in).map(|_| rng.unit_f64() - 0.5).collect();
    let w2: Vec<f64> = (0..n_out * n_hidden)
        .map(|_| rng.unit_f64() - 0.5)
        .collect();
    let x: Vec<f64> = (0..n_in).map(|_| rng.unit_f64()).collect();

    println!("== 2-layer MLP as composed mapped modules ({n_in}→{n_hidden}→{n_out}, P = {p}) ==\n");

    // Layer graphs + mappings (weights resident per PE = the
    // weight-stationary idea at module granularity).
    let (g1, rm1) = dense_layer("layer1+relu", &w1, n_hidden, n_in, p, &machine, true);
    let (g2, rm2) = dense_layer("layer2", &w2, n_out, n_hidden, p, &machine, false);
    assert!(check(&g1, &rm1, &machine).is_legal());
    assert!(check(&g2, &rm2, &machine).is_legal());

    let rep1 = Evaluator::new(&g1, &machine)
        .with_all_inputs(InputPlacement::AtUse)
        .evaluate(&rm1);
    let rep2 = Evaluator::new(&g2, &machine)
        .with_all_inputs(InputPlacement::AtUse)
        .evaluate(&rm2);
    println!(
        "layer1+relu: {} elements, {} cycles, {:.1} pJ",
        g1.len(),
        rep1.cycles,
        rep1.energy().raw() / 1e3
    );
    println!(
        "layer2:      {} elements, {} cycles, {:.1} pJ\n",
        g2.len(),
        rep2.cycles,
        rep2.energy().raw() / 1e3
    );

    // Compose: layer1 emits hidden activations block-distributed;
    // layer2 *reads every activation everywhere* (dense layer), so we
    // model its expected input layout as block too (aligned) vs cyclic
    // (misaligned → remap inserted).
    let block_hidden = DataLayout::block(n_hidden, p);
    let cyclic_hidden = DataLayout::cyclic(n_hidden, p);

    let m1 = Module {
        name: "layer1+relu".into(),
        report: rep1.clone(),
        input_layout: DataLayout::block(n_in, p),
        output_layout: block_hidden.clone(),
    };
    let m2_aligned = Module {
        name: "layer2".into(),
        report: rep2.clone(),
        input_layout: block_hidden.clone(),
        output_layout: DataLayout::block(n_out, p),
    };
    let m2_misaligned = Module {
        input_layout: cyclic_hidden,
        ..m2_aligned.clone()
    };

    for (tag, m2) in [("aligned", &m2_aligned), ("misaligned", &m2_misaligned)] {
        let mut pipe = Pipeline::new();
        pipe.push(&m1, &machine, 32);
        pipe.push(m2, &machine, 32);
        println!(
            "{tag:>10} pipeline: {} cycles, {:.1} pJ, {} remap(s), stages: {}",
            pipe.cycles,
            pipe.energy().raw() / 1e3,
            pipe.remaps_inserted,
            pipe.stages.join(" → ")
        );
    }

    // Functional check end to end (graph eval chaining).
    let to_vals = |v: &[f64]| v.iter().map(|&f| Value::real(f)).collect::<Vec<_>>();
    let vals1 = g1.eval(&[to_vals(&x)]);
    let hidden: Vec<f64> = g1
        .outputs()
        .iter()
        .map(|&id| vals1[id as usize].re)
        .collect();
    let vals2 = g2.eval(&[to_vals(&hidden)]);
    let y: Vec<f64> = g2
        .outputs()
        .iter()
        .map(|&id| vals2[id as usize].re)
        .collect();

    let h_ref = dense_ref(&w1, &x, n_hidden, n_in, true);
    let y_ref = dense_ref(&w2, &h_ref, n_out, n_hidden, false);
    for (a, b) in y.iter().zip(&y_ref) {
        assert!((a - b).abs() < 1e-9);
    }
    println!(
        "\noutput matches the serial MLP reference ✓  y[0..4] = {:?}",
        &y[..4.min(y.len())]
    );
}
