//! Talk to the mapping service: tune, evaluate, and read live metrics
//! over the wire.
//!
//! By default this starts an in-process `fm-serve` server on an
//! ephemeral port and exercises it — a self-contained demo. Set
//! `FM_SERVE_ADDR=host:port` to talk to an external daemon instead
//! (that is how `ci.sh`'s serve-smoke job uses it, against a real
//! `fm-serve` process), and `FM_SERVE_SHUTDOWN=1` to send the daemon a
//! graceful drain-then-exit request at the end.
//!
//! `FM_SERVE_UNCACHED=1` sends the tune with `use_cache: false`. Cached
//! tunes are pinned to the server they hit, so this is also the switch
//! that lets a `--fleet` coordinator shard the search: point
//! `FM_SERVE_ADDR` at a coordinator and the tune fans out across its
//! backends (watch the `tune_shard` counters on the shards move).
//!
//! Run with: `cargo run --release --example mapping_service`

use fm_repro::core::machine::MachineConfig;
use fm_repro::core::search::FigureOfMerit;
use fm_repro::kernels::fft::{fft_graph, FftFamily, FftVariant};
use fm_repro::serve::client::Client;
use fm_repro::serve::protocol::{EvaluateRequest, TuneRequest, WireCandidate};
use fm_repro::serve::server::{Server, ServerConfig};

fn main() {
    // 1. Find a server: external via FM_SERVE_ADDR, or in-process.
    let external = std::env::var("FM_SERVE_ADDR").ok();
    let handle = if external.is_none() {
        let h = Server::start("127.0.0.1:0", ServerConfig::default()).expect("bind server");
        println!("started in-process server on {}", h.local_addr());
        Some(h)
    } else {
        None
    };
    let addr = external
        .clone()
        .unwrap_or_else(|| handle.as_ref().unwrap().local_addr().to_string());

    let mut client = Client::connect(&*addr).expect("connect");
    client.ping().expect("ping");
    println!("connected to {addr}");

    // 2. The workload: a 64-point FFT on an 8-PE linear machine, with
    //    the standard placement×P candidate family.
    let graph = fft_graph(64, FftVariant::Dit);
    let machine = MachineConfig::linear(8);
    let family = FftFamily {
        n: 64,
        p_values: vec![1, 2, 4, 8],
    };
    let candidates: Vec<WireCandidate> = family
        .candidates_for(&graph, &machine)
        .into_iter()
        .map(|c| WireCandidate {
            label: c.label,
            mapping: c.mapping,
        })
        .collect();
    println!(
        "tuning fft64-dit: {} nodes, {} candidates, objective EDP",
        graph.len(),
        candidates.len()
    );

    // 3. Tune on the server (deadline-bounded: a slow search returns
    //    its best-so-far prefix rather than blowing the budget).
    let reply = client
        .tune(TuneRequest {
            graph: graph.clone(),
            machine: machine.clone(),
            fom: FigureOfMerit::Edp,
            candidates,
            deadline_ms: Some(30_000),
            max_candidates: None,
            convergence_window: None,
            refinement: None,
            use_cache: std::env::var("FM_SERVE_UNCACHED").as_deref() != Ok("1"),
            cost_model: None,
        })
        .expect("tune");
    let best = reply.best.expect("a legal mapping exists");
    println!(
        "winner: {} (score {:.3e}, {} of {} candidates evaluated, cache {}, {:.1} ms server-side)",
        best.label, best.score, reply.evaluated, reply.offered, reply.cache, reply.wall_ms
    );

    // 4. Evaluate the winner's resolved mapping — the round trip any
    //    compiler pass would do with a mapping it got from elsewhere.
    let eval = client
        .evaluate(EvaluateRequest {
            graph,
            machine,
            mapping: best.resolved.clone(),
            deadline_ms: Some(5_000),
        })
        .expect("evaluate");
    assert!(eval.legal, "the tuned winner must be legal");
    let report = eval.report.expect("legal mappings have a cost");
    println!(
        "evaluated winner: {} cycles, {:.2} pJ",
        report.cycles,
        report.energy().raw() / 1e3
    );

    // 5. Live metrics from the server's registry.
    let stats = client.stats().expect("stats");
    println!(
        "server stats: {} tune / {} evaluate served, tune p99 {:.1} ms, queue peak {}/{}, cache hit rate {:.0}%",
        stats.tune.completed,
        stats.evaluate.completed,
        stats.tune.latency.p99_us / 1e3,
        stats.queue_peak,
        stats.queue_capacity,
        stats.cache_hit_rate() * 100.0
    );

    // 6. Shut down whatever we own (and the external daemon if asked).
    if std::env::var("FM_SERVE_SHUTDOWN").as_deref() == Ok("1") {
        client.shutdown().expect("shutdown request");
        println!("sent shutdown; server is draining");
    }
    if let Some(h) = handle {
        let final_stats = h.shutdown_and_join();
        println!(
            "in-process server drained: {} requests total",
            final_stats.work_received()
        );
    }
}
