//! The greedy-scheduler bound on a real machine (Blelloch, §2).
//!
//! Runs instrumented fork-join kernels (mergesort, scan) on the
//! work-stealing pool across thread counts, and compares measured
//! wall-clock time against the work-span prediction `T_P ≤ W/P + S`
//! (in units of measured T₁ per unit work).
//!
//! Run with: `cargo run --release --example workspan_speedup`

use std::time::Instant;

use fm_repro::kernels::scan::par_scan;
use fm_repro::kernels::sortalg::par_mergesort;
use fm_repro::kernels::util::XorShift;
use fm_repro::workspan::ThreadPool;

fn time_it<F: FnMut()>(mut f: F, reps: u32) -> f64 {
    // Warm up once, then take the best of `reps` (noise-robust).
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let n = 2_000_000usize;
    let mut rng = XorShift::new(7);
    let sort_data: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
    let scan_data: Vec<i64> = (0..n).map(|_| rng.below(1000) as i64).collect();

    let hw = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(4);
    println!("== Greedy bound T_P ≤ W/P + S on the work-stealing pool ==");
    println!("host parallelism: {hw} threads; n = {n}\n");

    for (name, work_span, runner) in [
        (
            "mergesort",
            {
                let pool = ThreadPool::with_threads(1);
                let (_, ws) = par_mergesort(&pool, &sort_data, 8192);
                ws
            },
            Box::new(|pool: &ThreadPool| {
                let (out, _) = par_mergesort(pool, &sort_data, 8192);
                std::hint::black_box(out);
            }) as Box<dyn Fn(&ThreadPool)>,
        ),
        (
            "scan",
            {
                let pool = ThreadPool::with_threads(1);
                let (_, ws) = par_scan(&pool, &scan_data, 8192);
                ws
            },
            Box::new(|pool: &ThreadPool| {
                let (out, _) = par_scan(pool, &scan_data, 8192);
                std::hint::black_box(out);
            }) as Box<dyn Fn(&ThreadPool)>,
        ),
    ] {
        println!(
            "{name}: W = {:.2e} units, S = {:.2e} units, parallelism W/S = {:.1}",
            work_span.work,
            work_span.span,
            work_span.parallelism()
        );

        // Calibrate: seconds per unit of work from the P=1 run.
        let pool1 = ThreadPool::with_threads(1);
        let t1 = time_it(|| runner(&pool1), 3);
        let sec_per_unit = t1 / work_span.work;
        drop(pool1);

        println!(
            "  {:>3} | {:>10} | {:>12} | {:>9} | bound held?",
            "P", "T_P (ms)", "bound (ms)", "speedup"
        );
        for p in [1usize, 2, 4, 8, 16] {
            if p > hw {
                // Brent's bound assumes P real processors; oversubscribing
                // cores cannot honor it.
                break;
            }
            let pool = ThreadPool::with_threads(p);
            let tp = time_it(|| runner(&pool), 3);
            let bound = work_span.greedy_bound(p as u64) * sec_per_unit;
            // The bound is asymptotic (constant factors folded into the
            // calibration); report with a 2× grace factor.
            println!(
                "  {:>3} | {:>10.2} | {:>12.2} | {:>8.2}x | {}",
                p,
                tp * 1e3,
                bound * 1e3,
                t1 / tp,
                if tp <= 2.0 * bound { "yes" } else { "NO" }
            );
        }
        println!();
    }
    println!("mergesort saturates early (span Θ(n): the root merge is serial);");
    println!("scan keeps scaling (span Θ(n/k + k) for k chunks) — exactly the");
    println!("work-span model's prediction.");
}
