//! Recompute instead of communicate (§3 / experiment E13).
//!
//! "A mapping may compute the same element at multiple points in time
//! and/or space — rather than storing it or communicating it between
//! those points."
//!
//! A producer computed from locally-available inputs feeds six
//! consumers on six different PEs. We price both mappings — one
//! message per remote PE vs. one *replica* per remote PE — across
//! producer expression sizes, and print the crossover.
//!
//! Run with: `cargo run --release --example recompute_vs_communicate`

use fm_repro::core::cost::Evaluator;
use fm_repro::core::dataflow::{CExpr, DataflowGraph};
use fm_repro::core::legality::check;
use fm_repro::core::machine::MachineConfig;
use fm_repro::core::mapping::{InputPlacement, ResolvedMapping};
use fm_repro::core::transform::recompute_at_consumers;
use fm_repro::core::value::Value;

fn broadcast(consumers: usize, expr_ops: usize) -> (DataflowGraph, ResolvedMapping) {
    let mut g = DataflowGraph::new("broadcast", 32);
    let x = g.add_input("X", vec![1]);
    // `expr_ops` additions arranged as a balanced tree (a chain this
    // long would overflow the stack in recursive walks).
    let mut terms: Vec<CExpr> = Vec::with_capacity(expr_ops + 1);
    terms.push(CExpr::input(x, 0));
    for _ in 0..expr_ops {
        terms.push(CExpr::konst(Value::real(1.0)));
    }
    while terms.len() > 1 {
        let mut next = Vec::with_capacity(terms.len().div_ceil(2));
        let mut it = terms.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(a.add(b)),
                None => next.push(a),
            }
        }
        terms = next;
    }
    let e = terms.pop().expect("nonempty");
    let src = g.add_node(e, vec![], vec![0]);
    let mut place = vec![(0i64, 0i64)];
    let mut time = vec![0i64];
    for i in 0..consumers {
        let id = g.add_node(
            CExpr::dep(0).mul(CExpr::konst(Value::real(2.0))),
            vec![src],
            vec![i as i64 + 1],
        );
        g.mark_output(id);
        place.push((i as i64 + 1, 0));
        time.push(i as i64 + 2);
    }
    (g, ResolvedMapping { place, time })
}

fn main() {
    let consumers = 6;
    let machine = MachineConfig::linear(8);
    println!("== recompute vs communicate: broadcast to {consumers} PEs, 5 nm mesh ==\n");
    println!(
        "{:>12}  {:>16}  {:>14}  {:>10}",
        "producer ops", "communicate (pJ)", "recompute (pJ)", "winner"
    );
    let mut crossover: Option<usize> = None;
    for ops in [1usize, 5, 25, 125, 625, 3125, 15_625, 78_125] {
        let (g, rm) = broadcast(consumers, ops);
        assert!(check(&g, &rm, &machine).is_legal());
        let comm = Evaluator::new(&g, &machine)
            .with_all_inputs(InputPlacement::AtUse)
            .evaluate(&rm);
        let (g2, rm2, _) = recompute_at_consumers(&g, &rm, &[0]);
        assert!(check(&g2, &rm2, &machine).is_legal());
        let rec = Evaluator::new(&g2, &machine)
            .with_all_inputs(InputPlacement::AtUse)
            .evaluate(&rm2);
        let (c, r) = (comm.energy().raw() / 1e3, rec.energy().raw() / 1e3);
        let winner = if r < c { "recompute" } else { "communicate" };
        if winner == "communicate" && crossover.is_none() {
            crossover = Some(ops);
        }
        println!("{ops:>12}  {c:>16.2}  {r:>14.2}  {winner:>10}");
    }
    if let Some(x) = crossover {
        println!(
            "\ncrossover between {} and {} producer ops: below it, moving bits\ncosts more than redoing arithmetic — the paper's recompute option,\npriced on the paper's own constants.",
            x / 5,
            x
        );
    }
    // Messages really do disappear.
    let (g, rm) = broadcast(consumers, 1);
    let before = Evaluator::new(&g, &machine)
        .with_all_inputs(InputPlacement::AtUse)
        .evaluate(&rm);
    let (g2, rm2, _) = recompute_at_consumers(&g, &rm, &[0]);
    let after = Evaluator::new(&g2, &machine)
        .with_all_inputs(InputPlacement::AtUse)
        .evaluate(&rm2);
    println!(
        "\nNoC messages: {} → {} after the transform.",
        before.ledger.onchip_messages, after.ledger.onchip_messages
    );
}
