//! Mapping-space search over FFT functions and mappings (§3).
//!
//! "For a given problem there may be several functions … For each
//! function there are many possible mappings … One can systematically
//! search the space of possible mappings to optimize a given figure of
//! merit."
//!
//! This example enumerates {DIT, DIF} × {block, cyclic lanes} × P and
//! drives the candidates through the `fm-autotune` tuner: candidate
//! evaluation fans out over a thread pool, the winner lands in a
//! persistent cache (run the example twice to see the warm-run counters
//! report a hit with zero candidates re-evaluated), the results print
//! ranked by energy-delay product alongside the time/energy Pareto
//! front, and finally the winner is lowered to an architecture
//! description ("lowering the specification to hardware is a mechanical
//! process").
//!
//! Run with: `cargo run --release --example fft_mapping_search`

use fm_repro::autotune::{CacheStatus, Tuner, TuningCache};
use fm_repro::core::cost::Evaluator;
use fm_repro::core::lower::lower;
use fm_repro::core::machine::MachineConfig;
use fm_repro::core::mapping::{InputPlacement, Mapping};
use fm_repro::core::search::{FigureOfMerit, MappingCandidate};
use fm_repro::kernels::fft::{fft_graph, FftFamily, FftVariant};
use fm_repro::workspan::ThreadPool;

fn main() {
    let n = 256;
    let machine = MachineConfig::linear(16);
    println!("== FFT mapping search: N = {n}, machine = 16×1 PEs, 5 nm ==\n");

    let family = FftFamily {
        n,
        p_values: vec![4, 8, 16],
    };

    let pool = ThreadPool::with_threads(
        std::thread::available_parallelism()
            .map(|w| w.get().min(8))
            .unwrap_or(2),
    );
    let cache_dir = std::env::temp_dir().join("fm-repro-fft-search-cache");
    let cache = TuningCache::open(&cache_dir);
    if cache.is_some() {
        println!("tuning cache: {}\n", cache_dir.display());
    }

    let mut all = Vec::new();
    for variant in [FftVariant::Dit, FftVariant::Dif] {
        let graph = fft_graph(n, variant);
        let cands: Vec<MappingCandidate> = family.candidates_for(&graph, &machine);
        let evaluator = Evaluator::new(&graph, &machine).with_all_inputs(InputPlacement::AtUse);
        let mut tuner =
            Tuner::new(&evaluator, &graph, &machine, FigureOfMerit::Edp).with_pool(&pool);
        if let Some(cache) = cache.clone() {
            tuner = tuner.with_cache(cache);
        }
        let tuned = tuner.tune(&cands);
        println!(
            "{}: {} candidates, {} evaluated, cache {} ({:.2} ms)",
            graph.name,
            tuned.offered,
            tuned.evaluated,
            tuned.cache,
            tuned.wall.as_secs_f64() * 1e3,
        );
        if let Some(best) = &tuned.best {
            println!("  winner: {} (EDP {:.4e})", best.label, best.score);
        }
        // A cache hit skips re-evaluation, so the full ranking is only
        // available on cold runs; the winner is available either way.
        for r in &tuned.outcome.results {
            println!(
                "  {:28} {:>7} cycles  {:>10.1} pJ  {:>10.1} bit·mm (×10³)",
                r.label,
                r.report.cycles,
                r.report.energy().raw() / 1e3,
                r.report.ledger.onchip_bit_mm / 1e3,
            );
            all.push((r.label.clone(), r.report.clone()));
        }
        if tuned.cache == CacheStatus::Hit {
            if let Some(best) = tuned.best {
                all.push((best.label, best.report));
            }
        }
        println!();
    }

    // Global Pareto framing.
    all.sort_by(|a, b| a.1.time_ps.raw().total_cmp(&b.1.time_ps.raw()));
    println!("time/energy Pareto front across both functions:");
    let mut best = f64::INFINITY;
    for (label, rep) in &all {
        let e = rep.energy().raw();
        if e < best {
            best = e;
            println!(
                "  {:28} {:>7} cycles  {:>10.1} pJ",
                label,
                rep.cycles,
                e / 1e3
            );
        }
    }

    // Lower the EDP-best overall: re-derive it.
    let (label, _) = all
        .iter()
        .min_by(|a, b| a.1.edp().total_cmp(&b.1.edp()))
        .unwrap()
        .clone();
    println!("\nEDP-best candidate: {label}");
    // Rebuild that graph+mapping to lower it.
    let variant = if label.contains("dif") {
        FftVariant::Dif
    } else {
        FftVariant::Dit
    };
    let graph = fft_graph(n, variant);
    let cands = family.candidates_for(&graph, &machine);
    let cand = cands.iter().find(|c| c.label == label).unwrap();
    let rm = match &cand.mapping {
        Mapping::Table(rm) => rm.clone(),
        Mapping::Affine(_) => unreachable!("FFT family emits table mappings"),
    };
    let arch = lower(&graph, &rm, &machine, 0);
    println!("\nmechanically lowered architecture description:\n");
    println!("{}", arch.rtl_sketch());
}
