//! Mapping-space search over FFT functions and mappings (§3).
//!
//! "For a given problem there may be several functions … For each
//! function there are many possible mappings … One can systematically
//! search the space of possible mappings to optimize a given figure of
//! merit."
//!
//! This example enumerates {DIT, DIF} × {block, cyclic lanes} × P and
//! prints the legal candidates ranked by energy-delay product, the
//! time/energy Pareto front, and finally lowers the winner to an
//! architecture description ("lowering the specification to hardware is
//! a mechanical process").
//!
//! Run with: `cargo run --release --example fft_mapping_search`

use fm_repro::core::cost::Evaluator;
use fm_repro::core::lower::lower;
use fm_repro::core::machine::MachineConfig;
use fm_repro::core::mapping::{InputPlacement, Mapping};
use fm_repro::core::search::{search, FigureOfMerit, MappingCandidate};
use fm_repro::kernels::fft::{fft_graph, FftFamily, FftVariant};

fn main() {
    let n = 256;
    let machine = MachineConfig::linear(16);
    println!("== FFT mapping search: N = {n}, machine = 16×1 PEs, 5 nm ==\n");

    let family = FftFamily {
        n,
        p_values: vec![4, 8, 16],
    };

    let mut all = Vec::new();
    for variant in [FftVariant::Dit, FftVariant::Dif] {
        let graph = fft_graph(n, variant);
        let cands: Vec<MappingCandidate> = family.candidates_for(&graph, &machine);
        let evaluator = Evaluator::new(&graph, &machine).with_all_inputs(InputPlacement::AtUse);
        let outcome = search(&evaluator, &graph, &machine, &cands, FigureOfMerit::Edp);
        println!(
            "{}: {} candidates, {} legal",
            graph.name, outcome.evaluated, outcome.legal
        );
        for r in &outcome.results {
            println!(
                "  {:28} {:>7} cycles  {:>10.1} pJ  {:>10.1} bit·mm (×10³)",
                r.label,
                r.report.cycles,
                r.report.energy().raw() / 1e3,
                r.report.ledger.onchip_bit_mm / 1e3,
            );
            all.push((r.label.clone(), r.report.clone()));
        }
        println!();
    }

    // Global Pareto framing.
    all.sort_by(|a, b| a.1.time_ps.raw().total_cmp(&b.1.time_ps.raw()));
    println!("time/energy Pareto front across both functions:");
    let mut best = f64::INFINITY;
    for (label, rep) in &all {
        let e = rep.energy().raw();
        if e < best {
            best = e;
            println!(
                "  {:28} {:>7} cycles  {:>10.1} pJ",
                label,
                rep.cycles,
                e / 1e3
            );
        }
    }

    // Lower the EDP-best overall: re-derive it.
    let (label, _) = all
        .iter()
        .min_by(|a, b| a.1.edp().total_cmp(&b.1.edp()))
        .unwrap()
        .clone();
    println!("\nEDP-best candidate: {label}");
    // Rebuild that graph+mapping to lower it.
    let variant = if label.contains("dif") {
        FftVariant::Dif
    } else {
        FftVariant::Dit
    };
    let graph = fft_graph(n, variant);
    let cands = family.candidates_for(&graph, &machine);
    let cand = cands.iter().find(|c| c.label == label).unwrap();
    let rm = match &cand.mapping {
        Mapping::Table(rm) => rm.clone(),
        Mapping::Affine(_) => unreachable!("FFT family emits table mappings"),
    };
    let arch = lower(&graph, &rm, &machine, 0);
    println!("\nmechanically lowered architecture description:\n");
    println!("{}", arch.rtl_sketch());
}
