//! PRAM-friendly algorithms vs. physical cost — both sides of the panel.
//!
//! Part 1 (Vishkin's side, §5): BFS freed from the FIFO queue. The
//! level-synchronous XMT BFS does O(V+E) work at depth O(diameter)
//! using the hardware prefix-sum primitive, while the serial queue
//! performs Θ(V) strictly ordered operations.
//!
//! Part 2 (Dally's side, §3): the unit-cost lens cannot rank what the
//! physical lens separates. DIT and DIF FFT have identical PRAM cost
//! (same O(N log N) butterflies) but different movement, and a
//! conventional OoO core pays the 10,000× instruction-overhead factor
//! on top.
//!
//! Run with: `cargo run --release --example pram_vs_physical`

use fm_repro::core::cost::{conventional_core_report, Evaluator};
use fm_repro::core::machine::MachineConfig;
use fm_repro::core::mapping::InputPlacement;
use fm_repro::core::pramcost::PramCost;
use fm_repro::kernels::bfs::{bfs_serial, bfs_xmt, random_graph};
use fm_repro::kernels::fft::{fft_graph, fft_mapping, FftVariant, LanePlacement};

fn main() {
    println!("== Part 1: BFS without the queue (PRAM/XMT, §5) ==\n");
    for (n, deg) in [(1_000usize, 4usize), (10_000, 4), (10_000, 16)] {
        let g = random_graph(n, deg, 42);
        let (d1, queue_ops) = bfs_serial(&g, 0);
        let (d2, work, depth) = bfs_xmt(&g, 0).expect("XMT BFS runs");
        assert_eq!(d1, d2);
        let reached = d1.iter().filter(|&&d| d >= 0).count();
        let levels = d1.iter().max().copied().unwrap_or(0);
        println!(
            "V={n:>6} E={:>7}: serial queue ops {queue_ops:>7} (chain) | XMT work {work:>7}, depth {depth:>3} spawn blocks ({levels} BFS levels, {reached} reached)",
            g.edge_count()
        );
        println!(
            "          parallelism available: {:.0}× (work/depth)",
            work as f64 / depth as f64
        );
    }

    println!("\n== Part 2: what unit cost cannot see (F&M, §3) ==\n");
    let n = 256;
    let p = 16;
    let machine = MachineConfig::linear(p);
    let dit = fft_graph(n, FftVariant::Dit);
    let dif = fft_graph(n, FftVariant::Dif);

    let pram_dit = PramCost::of(&dit);
    let pram_dif = PramCost::of(&dif);
    println!("PRAM lens (unit cost):");
    println!(
        "  fft{n}-dit: work {} depth {}   | time on {p} procs: {}",
        pram_dit.work,
        pram_dit.depth,
        pram_dit.time_on(u64::from(p))
    );
    println!(
        "  fft{n}-dif: work {} depth {}   | time on {p} procs: {}",
        pram_dif.work,
        pram_dif.depth,
        pram_dif.time_on(u64::from(p))
    );
    println!("  → indistinguishable up to the copy layer.\n");

    println!("physical lens (mapped, block lanes over {p} PEs):");
    for (graph, tag) in [(&dit, "dit"), (&dif, "dif")] {
        let rm = fft_mapping(graph, n, p, LanePlacement::Block, &machine);
        let rep = Evaluator::new(graph, &machine)
            .with_all_inputs(InputPlacement::AtUse)
            .evaluate(&rm);
        println!(
            "  fft{n}-{tag}: {:>6} cycles, {:>9.1} pJ, {:>9.0} bit·mm of traffic, {} messages",
            rep.cycles,
            rep.energy().raw() / 1e3,
            rep.ledger.onchip_bit_mm,
            rep.ledger.onchip_messages
        );
    }

    let rm = fft_mapping(&dit, n, p, LanePlacement::Block, &machine);
    let mapped = Evaluator::new(&dit, &machine)
        .with_all_inputs(InputPlacement::AtUse)
        .evaluate(&rm);
    let conv = conventional_core_report(&dit, &machine);
    println!("\nconventional out-of-order core (10,000× instruction overhead, §3):");
    println!(
        "  fft{n}-dit: {:>9.1} pJ ({}× the mapped spatial execution)",
        conv.energy().raw() / 1e3,
        (conv.energy().raw() / mapped.energy().raw()).round()
    );
}
