//! Quickstart: the paper's edit-distance example, end to end.
//!
//! Builds the recurrence from §3 of the panel paper, maps it onto a
//! linear array of P processors with the corrected anti-diagonal skew,
//! verifies the mapping is legal, predicts its cost analytically, then
//! executes it on the cycle-driven grid simulator and checks that
//! (a) the values match a serial reference and (b) the simulator agrees
//! with the prediction.
//!
//! Run with: `cargo run --release --example quickstart`
#![allow(clippy::needless_range_loop)] // matrix-style i/j indexing reads clearest in checks

use fm_repro::core::cost::Evaluator;
use fm_repro::core::legality;
use fm_repro::core::machine::MachineConfig;
use fm_repro::grid::Simulator;
use fm_repro::kernels::editdist::{
    edit_inputs, edit_recurrence, local_matrix_ref, paper_input_placements, skewed_mapping, Scoring,
};
use fm_repro::kernels::util::{random_sequence, DNA};

fn main() {
    let n = 64; // |R|
    let m = 64; // |Q|
    let p = 8i64; // processors

    let r = random_sequence(n, DNA, 1);
    let q = random_sequence(m, DNA, 2);

    println!("== F&M quickstart: minimum edit distance (SPAA'21 panel, §3) ==\n");
    println!("strings: |R| = {n}, |Q| = {m} over {{A,C,G,T}}; P = {p} PEs\n");

    // 1. The function.
    let scoring = Scoring::paper_local();
    let rec = edit_recurrence(n, m, scoring);
    println!("function:  H(i,j) = min(H(i-1,j-1)+f(R[i],Q[j]), H(i-1,j)+D, H(i,j-1)+I, 0)");
    let graph = rec.elaborate().expect("recurrence is well-founded");
    println!(
        "elaborated: {} element nodes, critical path {} elements\n",
        graph.len(),
        graph.depth()
    );

    // 2. The mapping (corrected anti-diagonal skew; see module docs for
    //    why the paper's literal time expression is not causal).
    let machine = MachineConfig::linear(p as u32);
    let mapping = skewed_mapping(p, m);
    let rm = mapping
        .resolve(&graph, &machine)
        .expect("affine mapping resolves");
    println!("mapping:   place = i % {p},  time = floor(i/{p})*(M+{p}) + i%{p} + j");

    // 3. Legality.
    let report = legality::check(&graph, &rm, &machine);
    assert!(report.is_legal());
    println!("legality:  OK (causality, issue width, tile storage)\n");

    // 4. Predicted cost.
    let predicted = Evaluator::new(&graph, &machine)
        .with_input_placement(0, paper_input_placements(p)[0].clone())
        .with_input_placement(1, paper_input_placements(p)[1].clone())
        .evaluate(&rm);
    println!(
        "predicted: {} cycles  ({:.2} µs at {:.0} ps/cycle)",
        predicted.cycles,
        predicted.time_ps.raw() / 1e6,
        machine.clock_period().raw()
    );
    println!(
        "           energy {:.1} pJ  (compute {:.1} pJ, on-chip comm {:.1} pJ)",
        predicted.energy().raw() / 1000.0,
        predicted.ledger.energy.compute.raw() / 1000.0,
        predicted.ledger.energy.onchip_comm.raw() / 1000.0
    );
    println!(
        "           utilization {:.1}%  over {} PEs\n",
        predicted.utilization * 100.0,
        predicted.pes_used
    );

    // 5. Execute on the grid simulator.
    let sim = Simulator::new(machine);
    let res = sim
        .run(
            &graph,
            &rm,
            &edit_inputs(&r, &q),
            &paper_input_placements(p),
        )
        .expect("legal mapping simulates");
    println!(
        "simulated: {} cycles (scheduled {}), {} NoC messages, {} stalled elements",
        res.cycles_actual, res.cycles_scheduled, res.messages_delivered, res.stalled_elements
    );
    let sim_energy = res.ledger.energy.total().raw();
    let pred_energy = predicted.energy().raw();
    println!(
        "           energy {:.1} pJ — prediction error {:.3}%",
        sim_energy / 1000.0,
        100.0 * (sim_energy - pred_energy).abs() / pred_energy.max(f64::MIN_POSITIVE)
    );

    // 6. Check values against the serial reference.
    let h = local_matrix_ref(&r, &q, scoring);
    let mut checked = 0;
    for i in 0..n {
        for j in 0..m {
            let id = rec.domain.flatten(&[i as i64, j as i64]).unwrap();
            assert!((res.values[id].re - h[i][j]).abs() < 1e-9);
            checked += 1;
        }
    }
    println!("\nvalues:    all {checked} H(i,j) entries match the serial DP reference ✓");
}
