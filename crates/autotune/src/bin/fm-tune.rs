//! fm-tune: tune an FFT mapping from the command line and print the
//! [`TuneReport`](fm_autotune::TuneReport) counters.
//!
//! Three phases, demonstrating each tuner capability:
//!
//! 1. serial vs parallel evaluation of the same candidate set (same
//!    winner by construction; prints wall times and the speedup);
//! 2. a cold run against the persistent cache (miss + store);
//! 3. a warm run (hit: zero candidates re-evaluated).
//!
//! ```text
//! fm-tune [--n 256] [--machine 16] [--p 2,4,8,16] [--fom edp]
//!         [--workers W] [--cache-dir DIR] [--no-cache]
//!         [--max-candidates K] [--deadline-ms T] [--window W]
//! ```

use std::time::Duration;

use fm_autotune::{Budget, Refinement, Tuner, TuningCache};
use fm_core::cost::Evaluator;
use fm_core::machine::MachineConfig;
use fm_core::mapping::{InputPlacement, Mapping};
use fm_core::search::{FigureOfMerit, MappingCandidate};
use fm_costmodel::CostModelKind;
use fm_kernels::fft::{fft_graph, FftFamily, FftVariant};
use fm_workspan::ThreadPool;

struct Args {
    n: usize,
    machine_p: u32,
    p_values: Vec<u32>,
    fom: FigureOfMerit,
    workers: usize,
    cache_dir: Option<String>,
    budget: Budget,
    refinement: Option<Refinement>,
    cost_model: CostModelKind,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        n: 256,
        machine_p: 16,
        p_values: vec![2, 4, 8, 16],
        fom: FigureOfMerit::Edp,
        workers: std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(4),
        cache_dir: None,
        budget: Budget::unlimited(),
        refinement: None,
        cost_model: CostModelKind::Analytic,
    };
    let mut no_cache = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--n" => args.n = val("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
            "--machine" => {
                args.machine_p = val("--machine")?
                    .parse()
                    .map_err(|e| format!("--machine: {e}"))?;
            }
            "--p" => {
                args.p_values = val("--p")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("--p: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--fom" => {
                args.fom = match val("--fom")?.as_str() {
                    "time" => FigureOfMerit::Time,
                    "energy" => FigureOfMerit::Energy,
                    "edp" => FigureOfMerit::Edp,
                    "footprint" => FigureOfMerit::Footprint,
                    other => return Err(format!("unknown objective {other:?}")),
                };
            }
            "--workers" => {
                args.workers = val("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--cost-model" => {
                let name = val("--cost-model")?;
                args.cost_model = CostModelKind::from_name(&name).ok_or_else(|| {
                    format!("unknown cost model {name:?} (try analytic, roofline, or spatial)")
                })?;
            }
            "--cache-dir" => args.cache_dir = Some(val("--cache-dir")?),
            "--no-cache" => no_cache = true,
            "--max-candidates" => {
                args.budget.max_candidates = Some(
                    val("--max-candidates")?
                        .parse()
                        .map_err(|e| format!("--max-candidates: {e}"))?,
                );
            }
            "--deadline-ms" => {
                let ms: u64 = val("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?;
                args.budget.deadline = Some(Duration::from_millis(ms));
            }
            "--window" => {
                args.budget.convergence_window = Some(
                    val("--window")?
                        .parse()
                        .map_err(|e| format!("--window: {e}"))?,
                );
            }
            "--chains" => {
                let chains: usize = val("--chains")?
                    .parse()
                    .map_err(|e| format!("--chains: {e}"))?;
                let r = args.refinement.get_or_insert(Refinement {
                    chains: 0,
                    iters: 2000,
                    seed: 0xF00D,
                });
                r.chains = chains;
            }
            "--anneal-iters" => {
                let iters: u32 = val("--anneal-iters")?
                    .parse()
                    .map_err(|e| format!("--anneal-iters: {e}"))?;
                let r = args.refinement.get_or_insert(Refinement {
                    chains: 4,
                    iters: 0,
                    seed: 0xF00D,
                });
                r.iters = iters;
            }
            "--help" | "-h" => {
                println!(
                    "fm-tune [--n N] [--machine P] [--p LIST] [--fom time|energy|edp|footprint]\n        [--cost-model analytic|roofline|spatial]\n        [--workers W] [--cache-dir DIR] [--no-cache]\n        [--max-candidates K] [--deadline-ms T] [--window W]\n        [--chains K] [--anneal-iters I]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if no_cache {
        args.cache_dir = None;
    } else if args.cache_dir.is_none() {
        args.cache_dir = Some(
            std::env::temp_dir()
                .join("fm-tune-cache")
                .to_string_lossy()
                .into_owned(),
        );
    }
    if !args.n.is_power_of_two() || args.n < 2 {
        return Err(format!("--n must be a power of two ≥ 2, got {}", args.n));
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fm-tune: {e}");
            std::process::exit(2);
        }
    };

    let machine = MachineConfig::linear(args.machine_p);
    let family = FftFamily {
        n: args.n,
        p_values: args.p_values.clone(),
    };

    // Candidate set: both FFT graph variants share a candidate family
    // shape; tune the DIT graph (the DIF graph is a different tuning
    // problem — a different fingerprint — by construction).
    let graph = fft_graph(args.n, FftVariant::Dit);
    let mut candidates = family.candidates_for(&graph, &machine);
    candidates.push(MappingCandidate::new("serial", Mapping::serial(&graph)));
    let evaluator = Evaluator::new(&graph, &machine)
        .with_all_inputs(InputPlacement::AtUse)
        .with_cost_model(args.cost_model);

    println!(
        "fm-tune: fft n={} on linear({}) machine, {} candidates, objective {:?}, cost model {}",
        args.n,
        args.machine_p,
        candidates.len(),
        args.fom,
        args.cost_model
    );

    let mk_tuner = || {
        let mut t = Tuner::new(&evaluator, &graph, &machine, args.fom).with_budget(args.budget);
        if let Some(r) = args.refinement {
            t = t.with_refinement(r);
        }
        t
    };

    // Phase 1: serial vs parallel (uncached, so both really evaluate).
    let serial_report = mk_tuner().tune(&candidates);
    println!("\n== serial tuner ==\n{}", serial_report.summary());

    let pool = ThreadPool::with_threads(args.workers);
    let parallel_report = mk_tuner().with_pool(&pool).tune(&candidates);
    println!(
        "== parallel tuner ({} workers) ==\n{}",
        args.workers,
        parallel_report.summary()
    );

    let speedup = serial_report.wall.as_secs_f64() / parallel_report.wall.as_secs_f64().max(1e-9);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "parallel speedup over serial: {speedup:.2}x ({} workers on {} core{})",
        args.workers,
        cores,
        if cores == 1 {
            " — no speedup possible"
        } else {
            "s"
        }
    );
    match (&serial_report.best, &parallel_report.best) {
        (Some(s), Some(p)) if s.label == p.label && s.score == p.score => {
            println!("winner parity: OK ({} in both)", s.label);
        }
        _ => {
            eprintln!("winner parity: MISMATCH between serial and parallel tuner");
            std::process::exit(1);
        }
    }

    // Phases 2 and 3: persistent cache, cold then warm.
    if let Some(dir) = &args.cache_dir {
        let Some(cache) = TuningCache::open(dir) else {
            eprintln!("fm-tune: cannot create cache dir {dir}; skipping cache demo");
            return;
        };
        println!("\ncache dir: {dir}");
        let cold = mk_tuner()
            .with_pool(&pool)
            .with_cache(cache.clone())
            .tune(&candidates);
        println!("== first cached run ==\n{}", cold.summary());
        let warm = mk_tuner()
            .with_pool(&pool)
            .with_cache(cache)
            .tune(&candidates);
        println!("== second cached run ==\n{}", warm.summary());
        println!(
            "cache: first run {} ({} evaluated), second run {} ({} evaluated)",
            cold.cache, cold.evaluated, warm.cache, warm.evaluated
        );
    }
}
