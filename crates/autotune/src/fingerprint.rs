//! Content fingerprints for tuning-cache keys.
//!
//! A cache entry must be keyed by everything that determines the search
//! result: the function graph, the machine, the objective, the
//! candidate set itself (labels and mappings), and the refinement
//! configuration (annealing chains change the winner). All serialize
//! through the serde data model; the JSON rendering is canonical here
//! (struct fields in declaration order, maps sorted), so hashing the
//! rendered string is a stable content fingerprint.

use fm_core::dataflow::DataflowGraph;
use fm_core::machine::MachineConfig;
use fm_core::search::{FigureOfMerit, MappingCandidate};
use fm_costmodel::CostModelKind;

use crate::tuner::Refinement;

/// FNV-1a 64 over a byte string. The one shared FNV in the workspace —
/// the tuning-cache fingerprints here, and `fm-serve`'s wire checksums
/// and dedup admission keys, all hash through this implementation.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Fingerprint a tuning problem under the default (analytic) cost
/// model. Two problems collide only if their serialized forms collide
/// under FNV-1a 64 (fine for a cache: a false hit is caught by the
/// legality re-check, a false miss only costs a cold search).
pub fn fingerprint(
    graph: &DataflowGraph,
    machine: &MachineConfig,
    fom: FigureOfMerit,
    candidates: &[MappingCandidate],
    refinement: Option<Refinement>,
) -> u64 {
    fingerprint_with_model(
        graph,
        machine,
        fom,
        candidates,
        refinement,
        CostModelKind::Analytic,
    )
}

/// Fingerprint a tuning problem under a specific cost backend. The
/// default backend hashes exactly as [`fingerprint`] always has —
/// pre-backend cache entries stay valid — while any other backend folds
/// its name in, so searches under different cost models never share a
/// cache slot.
pub fn fingerprint_with_model(
    graph: &DataflowGraph,
    machine: &MachineConfig,
    fom: FigureOfMerit,
    candidates: &[MappingCandidate],
    refinement: Option<Refinement>,
    cost_model: CostModelKind,
) -> u64 {
    let mut text = String::new();
    text.push_str(&serde_json::to_string(graph).expect("graph serializes"));
    text.push('\u{1}');
    text.push_str(&serde_json::to_string(machine).expect("machine serializes"));
    text.push('\u{1}');
    text.push_str(&serde_json::to_string(&fom).expect("fom serializes"));
    text.push('\u{1}');
    text.push_str(&serde_json::to_string(&refinement).expect("refinement serializes"));
    for c in candidates {
        text.push('\u{1}');
        text.push_str(&c.label);
        text.push('\u{2}');
        text.push_str(&serde_json::to_string(&c.mapping).expect("mapping serializes"));
    }
    if cost_model != CostModelKind::Analytic {
        text.push('\u{1}');
        text.push_str(cost_model.name());
    }
    fnv1a64(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_core::mapping::Mapping;

    fn tiny(name: &str) -> DataflowGraph {
        use fm_core::dataflow::CExpr;
        use fm_core::value::Value;
        let mut g = DataflowGraph::new(name, 32);
        g.add_node(CExpr::konst(Value::real(1.0)), vec![], vec![0]);
        g
    }

    #[test]
    fn sensitive_to_every_component() {
        let g = tiny("a");
        let m = MachineConfig::linear(4);
        let cands = vec![MappingCandidate::new("serial", Mapping::serial(&g))];
        let base = fingerprint(&g, &m, FigureOfMerit::Edp, &cands, None);

        assert_ne!(
            base,
            fingerprint(&tiny("b"), &m, FigureOfMerit::Edp, &cands, None)
        );
        assert_ne!(
            base,
            fingerprint(
                &g,
                &MachineConfig::linear(8),
                FigureOfMerit::Edp,
                &cands,
                None
            )
        );
        assert_ne!(base, fingerprint(&g, &m, FigureOfMerit::Time, &cands, None));
        assert_ne!(base, fingerprint(&g, &m, FigureOfMerit::Edp, &[], None));
        let relabeled = vec![MappingCandidate::new("other", Mapping::serial(&g))];
        assert_ne!(
            base,
            fingerprint(&g, &m, FigureOfMerit::Edp, &relabeled, None)
        );
        let refined = Refinement {
            chains: 4,
            iters: 100,
            seed: 1,
        };
        assert_ne!(
            base,
            fingerprint(&g, &m, FigureOfMerit::Edp, &cands, Some(refined))
        );
    }

    #[test]
    fn analytic_model_hashes_like_the_historical_fingerprint() {
        let g = tiny("a");
        let m = MachineConfig::linear(4);
        let cands = vec![MappingCandidate::new("serial", Mapping::serial(&g))];
        let base = fingerprint(&g, &m, FigureOfMerit::Edp, &cands, None);
        assert_eq!(
            base,
            fingerprint_with_model(
                &g,
                &m,
                FigureOfMerit::Edp,
                &cands,
                None,
                CostModelKind::Analytic
            )
        );
        let roof = fingerprint_with_model(
            &g,
            &m,
            FigureOfMerit::Edp,
            &cands,
            None,
            CostModelKind::Roofline,
        );
        let spatial = fingerprint_with_model(
            &g,
            &m,
            FigureOfMerit::Edp,
            &cands,
            None,
            CostModelKind::Spatial,
        );
        assert_ne!(base, roof);
        assert_ne!(base, spatial);
        assert_ne!(roof, spatial);
    }

    #[test]
    fn stable_across_calls() {
        let g = tiny("a");
        let m = MachineConfig::linear(4);
        let cands = vec![MappingCandidate::new("serial", Mapping::serial(&g))];
        assert_eq!(
            fingerprint(&g, &m, FigureOfMerit::Edp, &cands, None),
            fingerprint(&g, &m, FigureOfMerit::Edp, &cands, None)
        );
    }
}
