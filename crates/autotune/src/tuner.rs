//! The tuner: budgeted candidate evaluation with deterministic winner
//! selection, optional parallel fan-out, and cache replay.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use fm_core::cost::{CostReport, Evaluator};
use fm_core::dataflow::DataflowGraph;
use fm_core::delta::DeltaCandidates;
use fm_core::flat::BatchEvaluator;
use fm_core::legality::check;
use fm_core::machine::MachineConfig;
use fm_core::mapping::ResolvedMapping;
use fm_core::mutate::AppliedEdit;
use fm_core::search::{
    anneal, assemble_outcome, default_mapper, CandidateEval, FigureOfMerit, MappingCandidate,
    SearchOutcome,
};
use fm_workspan::{par_map, par_map_until_cancel, ThreadPool};

use crate::cache::{CacheEntry, TuningCache, CACHE_SCHEMA_VERSION};
use crate::fingerprint::fingerprint_with_model;

/// Evaluation budgets. The default is unlimited: every candidate is
/// evaluated, exactly like [`fm_core::search::search`].
///
/// Budget decisions are taken **per candidate, in index order** — the
/// serial loop and the work-stealing parallel path share the same
/// ordered reduction ([`fm_workspan::par_map_until`]), so both stop at
/// the identical candidate for the deterministic budgets.
#[derive(Debug, Clone, Copy, Default)]
pub struct Budget {
    /// Evaluate at most this many candidates (a deterministic prefix
    /// of the candidate list).
    pub max_candidates: Option<usize>,
    /// Stop evaluating at the first candidate whose ordered reduction
    /// lands past this wall-clock deadline. Timing-dependent by nature:
    /// the one budget under which serial and parallel runs may see
    /// different prefixes.
    pub deadline: Option<Duration>,
    /// Early-stop once this many consecutive candidates have failed to
    /// improve the best score (checked per candidate in index order, so
    /// the stopping point is deterministic and schedule-independent).
    pub convergence_window: Option<usize>,
}

/// A shared, clonable cancellation flag.
///
/// Hand one copy to [`Tuner::with_cancel`] and keep another on the
/// thread that knows when the result is no longer wanted (a deadline
/// watchdog, a disconnect detector). The tuner checks it **between
/// candidate evaluations** — before each candidate starts on the serial
/// path, and via [`fm_workspan::par_map_until_cancel`]'s pre-check on
/// the parallel path — so a cancelled tune stops burning cores promptly
/// and returns a well-formed partial [`TuneReport`] (with
/// [`TuneReport::cancelled`] set) instead of running its budget out.
///
/// Cancellation is a one-way latch: there is no reset. Build a fresh
/// token per request.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Latch the token. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has [`CancelToken::cancel`] been called on any clone?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }

    /// The underlying flag (for `fm-workspan`'s cancel-aware loops).
    pub fn as_atomic(&self) -> &AtomicBool {
        &self.0
    }
}

impl Budget {
    /// No limits (the default).
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Cap the number of candidates evaluated.
    pub fn with_max_candidates(mut self, n: usize) -> Budget {
        self.max_candidates = Some(n);
        self
    }

    /// Set a wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> Budget {
        self.deadline = Some(d);
        self
    }

    /// Stop after `window` candidates without improvement.
    pub fn with_convergence_window(mut self, window: usize) -> Budget {
        self.convergence_window = Some(window);
        self
    }
}

/// Multi-chain annealing refinement applied to the tuner's winner.
///
/// `chains` independent annealing runs start from the winning mapping
/// with seeds `seed`, `seed + 1`, …; the lowest-scoring chain (ties →
/// lowest chain index) replaces the winner iff it strictly improves the
/// score. Winner selection depends only on the seeds, never on the
/// thread schedule, so refined results stay reproducible and cacheable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Refinement {
    /// Number of independent annealing chains.
    pub chains: usize,
    /// Iterations per chain.
    pub iters: u32,
    /// Base RNG seed; chain `k` uses `seed + k`.
    pub seed: u64,
}

/// Shared best-so-far bookkeeping. Fed with candidate evaluations in
/// strict index order — by the serial loop directly, and by the
/// parallel path through `par_map_until`'s ordered reduction — so both
/// make identical budget decisions and stop at the identical candidate.
struct Frontier<'b> {
    budget: &'b Budget,
    cancel: Option<&'b CancelToken>,
    start: Instant,
    best_idx: Option<usize>,
    best_score: f64,
    last_improvement: usize,
    trajectory: Vec<(usize, f64)>,
}

impl<'b> Frontier<'b> {
    fn new(budget: &'b Budget, cancel: Option<&'b CancelToken>, start: Instant) -> Self {
        Frontier {
            budget,
            cancel,
            start,
            best_idx: None,
            best_score: f64::INFINITY,
            last_improvement: 0,
            trajectory: Vec::new(),
        }
    }

    /// Fold in candidate `i`'s evaluation; `true` means stop after it.
    fn feed(&mut self, i: usize, eval: &CandidateEval) -> bool {
        if let CandidateEval::Legal { score, .. } = eval {
            // Strict `<`: ties keep the earlier candidate, the same
            // rule as assemble_outcome's stable sort.
            if *score < self.best_score {
                self.best_score = *score;
                self.best_idx = Some(i);
                self.last_improvement = i;
                self.trajectory.push((i, *score));
            }
        }
        if let Some(window) = self.budget.convergence_window {
            if self.best_idx.is_some() && (i + 1) - self.last_improvement >= window {
                return true;
            }
        }
        if let Some(deadline) = self.budget.deadline {
            if self.start.elapsed() >= deadline {
                return true;
            }
        }
        if let Some(token) = self.cancel {
            if token.is_cancelled() {
                return true;
            }
        }
        false
    }
}

/// How the cache participated in a tuning run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// No cache configured.
    Disabled,
    /// No usable entry; searched cold (and stored the result).
    Miss,
    /// Entry replayed; candidate evaluation skipped entirely.
    Hit,
    /// Entry found but its mapping is no longer legal; searched cold.
    Stale,
}

impl std::fmt::Display for CacheStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CacheStatus::Disabled => "disabled",
            CacheStatus::Miss => "miss",
            CacheStatus::Hit => "hit",
            CacheStatus::Stale => "stale",
        })
    }
}

/// A winning mapping: what the cache persists and the tuner returns.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TunedMapping {
    /// Label of the winning candidate (or `"default-mapper (fallback)"`).
    pub label: String,
    /// The resolved mapping, replayable without re-searching.
    pub resolved: ResolvedMapping,
    /// Its cost report.
    pub report: CostReport,
    /// Its score under the tuning objective (lower is better).
    pub score: f64,
}

/// Counters and results from one [`Tuner::tune`] call.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// Objective tuned for.
    pub fom: FigureOfMerit,
    /// Total candidates offered.
    pub offered: usize,
    /// Candidates actually evaluated.
    pub evaluated: usize,
    /// Candidates skipped by budgets (`offered - evaluated`).
    pub pruned: usize,
    /// How the cache participated.
    pub cache: CacheStatus,
    /// Whether the winner came from the default-mapper fallback.
    pub fell_back: bool,
    /// Whether a [`CancelToken`] aborted the run early. The report is
    /// still well-formed: `outcome`/`trajectory`/`best` cover the
    /// prefix that was evaluated before the abort (refinement is
    /// skipped and nothing is written to the cache).
    pub cancelled: bool,
    /// Wall-clock time of the whole call.
    pub wall: Duration,
    /// Best-so-far trajectory: (candidate index, score) at each
    /// improvement, in evaluation order.
    pub trajectory: Vec<(usize, f64)>,
    /// Full search outcome over the evaluated prefix (empty on a cache
    /// hit — the point of the cache is not re-evaluating).
    pub outcome: SearchOutcome,
    /// Index into the offered candidate list of the winning candidate.
    /// `None` when the winner is the default-mapper fallback, when no
    /// mapping was legal, or on a cache hit (the cache stores the
    /// winner, not its position). Distributed searches merge sub-range
    /// winners by `(score, index)`, so the index travels with the
    /// report.
    pub best_index: Option<usize>,
    /// The winner, if any mapping (candidate or fallback) was legal.
    pub best: Option<TunedMapping>,
}

impl TuneReport {
    /// Multi-line human-readable summary (what `fm-tune` prints).
    pub fn summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "objective {:?}: {} offered, {} evaluated, {} pruned; cache {}{}\n",
            self.fom,
            self.offered,
            self.evaluated,
            self.pruned,
            self.cache,
            if self.fell_back {
                "; FELL BACK to default mapper"
            } else {
                ""
            },
        ));
        if self.cancelled {
            s.push_str("CANCELLED: partial result over the evaluated prefix\n");
        }
        s.push_str(&format!(
            "wall time: {:.3} ms\n",
            self.wall.as_secs_f64() * 1e3
        ));
        if !self.trajectory.is_empty() {
            s.push_str("best-so-far trajectory:\n");
            for (i, score) in &self.trajectory {
                s.push_str(&format!("  after candidate {i:>4}: {score:.4e}\n"));
            }
        }
        if !self.outcome.results.is_empty() {
            s.push_str("ranked candidates:\n");
            for (rank, r) in self.outcome.results.iter().enumerate() {
                s.push_str(&format!(
                    "  #{:<3} {:<24} score {:.4e}  {} cycles  {:.1} pJ\n",
                    rank + 1,
                    r.label,
                    r.score,
                    r.report.cycles,
                    r.report.energy().raw() / 1e3,
                ));
            }
        }
        match &self.best {
            Some(b) => s.push_str(&format!(
                "winner: {} (score {:.4e}, {} cycles, {:.1} pJ)\n",
                b.label,
                b.score,
                b.report.cycles,
                b.report.energy().raw() / 1e3,
            )),
            None => s.push_str("winner: none (no legal mapping)\n"),
        }
        s
    }
}

/// The autotuner. Borrowing the same inputs as
/// [`fm_core::search::search`], plus optional parallelism, cache, and
/// budgets.
pub struct Tuner<'a> {
    evaluator: &'a Evaluator<'a>,
    graph: &'a DataflowGraph,
    machine: &'a MachineConfig,
    fom: FigureOfMerit,
    pool: Option<&'a ThreadPool>,
    cache: Option<TuningCache>,
    budget: Budget,
    refinement: Option<Refinement>,
    cancel: Option<CancelToken>,
}

impl<'a> Tuner<'a> {
    /// A serial, uncached, unbudgeted tuner — behaves exactly like
    /// [`fm_core::search::search`] plus a report.
    pub fn new(
        evaluator: &'a Evaluator<'a>,
        graph: &'a DataflowGraph,
        machine: &'a MachineConfig,
        fom: FigureOfMerit,
    ) -> Self {
        Tuner {
            evaluator,
            graph,
            machine,
            fom,
            pool: None,
            cache: None,
            budget: Budget::default(),
            refinement: None,
            cancel: None,
        }
    }

    /// Fan candidate evaluation across `pool`.
    pub fn with_pool(mut self, pool: &'a ThreadPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Persist results in (and replay from) `cache`.
    pub fn with_cache(mut self, cache: TuningCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Apply evaluation budgets.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Refine the winner with multi-chain annealing (parallel across
    /// the pool when one is configured; same winner either way).
    pub fn with_refinement(mut self, refinement: Refinement) -> Self {
        self.refinement = Some(refinement);
        self
    }

    /// Abort early when `token` is cancelled (checked between candidate
    /// evaluations). The tune then returns a partial report with
    /// [`TuneReport::cancelled`] set; see [`CancelToken`].
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Tune over a candidate list.
    pub fn tune(&self, candidates: &[MappingCandidate]) -> TuneReport {
        let start = Instant::now();
        let offered = candidates.len();

        // Cache probe: replay iff the stored mapping is still shaped
        // for this graph and still legal on this machine. The
        // fingerprint serializes the whole problem, so it is only
        // computed when a cache is actually configured.
        let mut cache_status = CacheStatus::Disabled;
        let mut fp = 0u64;
        if let Some(cache) = &self.cache {
            fp = fingerprint_with_model(
                self.graph,
                self.machine,
                self.fom,
                candidates,
                self.refinement,
                self.evaluator.cost_model(),
            );
            match cache.load(fp) {
                Some(entry) if self.replayable(&entry.best.resolved) => {
                    return TuneReport {
                        fom: self.fom,
                        offered,
                        evaluated: 0,
                        pruned: offered,
                        cache: CacheStatus::Hit,
                        fell_back: false,
                        cancelled: false,
                        wall: start.elapsed(),
                        trajectory: entry.trajectory,
                        outcome: entry.outcome,
                        best_index: None,
                        best: Some(entry.best),
                    };
                }
                Some(_) => cache_status = CacheStatus::Stale,
                None => cache_status = CacheStatus::Miss,
            }
        }

        // Budgeted evaluation: candidates fan out per-candidate (work
        // stealing when a pool is configured), budget decisions fold in
        // through the ordered frontier.
        let cap = self.budget.max_candidates.unwrap_or(offered).min(offered);
        let mut frontier = Frontier::new(&self.budget, self.cancel.as_ref(), start);
        let never = AtomicBool::new(false);
        let cancel_flag = self
            .cancel
            .as_ref()
            .map(CancelToken::as_atomic)
            .unwrap_or(&never);
        // One flat-engine context per tune: the consumer lists, cost
        // prefixes, and off-chip totals shared by every candidate are
        // hoisted here, and each worker thread checks out a persistent
        // scratch arena — steady-state candidate evaluation allocates
        // nothing and matches `evaluate_candidate` bit-for-bit.
        let batch = BatchEvaluator::new(self.evaluator, self.graph, self.machine, self.fom);
        let evals: Vec<CandidateEval> = match self.pool {
            Some(pool) => par_map_until_cancel(
                pool,
                cap,
                |i| batch.evaluate_candidate(&candidates[i]),
                |i, eval| frontier.feed(i, eval),
                cancel_flag,
            ),
            None => {
                let mut evals = Vec::with_capacity(cap);
                for (i, cand) in candidates.iter().enumerate().take(cap) {
                    // Cancellation aborts *between* candidate
                    // evaluations: checked here before each candidate
                    // starts, and again in `feed` after it lands.
                    if cancel_flag.load(Ordering::Acquire) {
                        break;
                    }
                    let eval = batch.evaluate_candidate(cand);
                    let stop = frontier.feed(i, &eval);
                    evals.push(eval);
                    if stop {
                        break;
                    }
                }
                evals
            }
        };
        let cancelled = self.cancel.as_ref().is_some_and(CancelToken::is_cancelled);

        let evaluated = evals.len();
        let best_idx = frontier.best_idx;
        let trajectory = frontier.trajectory;
        let mut best = match best_idx {
            Some(i) => {
                let CandidateEval::Legal {
                    resolved,
                    report,
                    score,
                } = evals[i].clone()
                else {
                    unreachable!("best index always points at a legal eval")
                };
                Some(TunedMapping {
                    label: candidates[i].label.clone(),
                    resolved,
                    report,
                    score,
                })
            }
            // Nothing legal in budget: fall back to the default mapper,
            // which is legal by construction for any graph.
            None => self.fallback(),
        };
        let fell_back = best_idx.is_none() && best.is_some();

        // A cancelled run neither refines (more cores burned for a
        // result nobody wants) nor caches (the evaluated prefix is
        // schedule-dependent, so its winner is not reproducible).
        if let Some(b) = best.as_mut() {
            if !cancelled {
                self.refine(b);
            }
        }

        let outcome = assemble_outcome(&candidates[..evaluated], evals);
        if let (Some(cache), Some(best)) = (&self.cache, &best) {
            if !fell_back && !cancelled {
                let _ = cache.store(&CacheEntry {
                    version: CACHE_SCHEMA_VERSION,
                    fingerprint: fp,
                    best: best.clone(),
                    evaluated,
                    complete: evaluated == offered,
                    outcome: outcome.clone(),
                    trajectory: trajectory.clone(),
                });
            }
        }

        TuneReport {
            fom: self.fom,
            offered,
            evaluated,
            pruned: offered - evaluated,
            cache: cache_status,
            fell_back,
            cancelled,
            wall: start.elapsed(),
            trajectory,
            outcome,
            best_index: best_idx,
            best,
        }
    }

    /// Warm re-tune: like [`Tuner::tune`], but candidate evaluations
    /// are served from a [`WarmCache`] whose per-candidate legality
    /// counters and cost trees were *repaired* across graph edits
    /// ([`fm_core::delta::DeltaCandidates`]) instead of re-derived.
    ///
    /// The winner is bit-identical to a cold [`Tuner::tune`] of the
    /// cache's candidate list against the current graph (with no
    /// persistent cache configured): the warm cache yields exactly the
    /// evals [`fm_core::search::evaluate_candidate`] would, and they
    /// feed the same ordered frontier. What keeps that guarantee crisp:
    ///
    /// * the tuner's evaluator/graph/machine must wrap the *same*
    ///   post-edit state the cache's edits were applied against, with
    ///   the same evaluator configuration the cache was built with;
    /// * the persistent [`TuningCache`] is neither probed nor stored —
    ///   a warm tune is about incremental in-process state, not
    ///   cross-process replay — so the report says
    ///   [`CacheStatus::Disabled`];
    /// * evaluation is serial even when a pool is configured (repair
    ///   state is exclusive); budgets (candidate cap, convergence
    ///   window, deadline) and cancellation behave exactly as on the
    ///   serial cold path, and refinement (if configured) runs on the
    ///   winner as usual.
    ///
    /// Whether the tune was actually warm is observable through
    /// [`WarmCache::rebuilds`]: if the counter is unchanged across the
    /// call, no candidate fell back to a cold from-scratch rebuild.
    pub fn tune_warm(&self, warm: &mut WarmCache) -> TuneReport {
        let start = Instant::now();
        let WarmCache { candidates, delta } = warm;
        let offered = candidates.len();

        let cap = self.budget.max_candidates.unwrap_or(offered).min(offered);
        let mut frontier = Frontier::new(&self.budget, self.cancel.as_ref(), start);
        let never = AtomicBool::new(false);
        let cancel_flag = self
            .cancel
            .as_ref()
            .map(CancelToken::as_atomic)
            .unwrap_or(&never);
        let mut evals: Vec<CandidateEval> = Vec::with_capacity(cap);
        for i in 0..cap {
            // Same cancellation points as the serial cold path: before
            // each candidate, and in `feed` after it lands.
            if cancel_flag.load(Ordering::Acquire) {
                break;
            }
            let eval = delta.evaluate(i, self.evaluator, self.fom);
            let stop = frontier.feed(i, &eval);
            evals.push(eval);
            if stop {
                break;
            }
        }
        let cancelled = self.cancel.as_ref().is_some_and(CancelToken::is_cancelled);

        let evaluated = evals.len();
        let best_idx = frontier.best_idx;
        let trajectory = frontier.trajectory;
        let mut best = match best_idx {
            Some(i) => {
                let CandidateEval::Legal {
                    resolved,
                    report,
                    score,
                } = evals[i].clone()
                else {
                    unreachable!("best index always points at a legal eval")
                };
                Some(TunedMapping {
                    label: candidates[i].label.clone(),
                    resolved,
                    report,
                    score,
                })
            }
            None => self.fallback(),
        };
        let fell_back = best_idx.is_none() && best.is_some();

        if let Some(b) = best.as_mut() {
            if !cancelled {
                self.refine(b);
            }
        }

        let outcome = assemble_outcome(&candidates[..evaluated], evals);

        TuneReport {
            fom: self.fom,
            offered,
            evaluated,
            pruned: offered - evaluated,
            cache: CacheStatus::Disabled,
            fell_back,
            cancelled,
            wall: start.elapsed(),
            trajectory,
            outcome,
            best_index: best_idx,
            best,
        }
    }

    /// Apply this tuner's configured [`Refinement`] (if any) to an
    /// externally-produced winner, exactly as [`Tuner::tune`] would to
    /// its own. Distributed searches use this to refine the mapping
    /// merged from shard winners: refinement depends only on the winner
    /// and the seeds, so refining the merged winner here is bit-equal
    /// to refining the same winner inside a single-machine tune.
    pub fn refine_winner(&self, best: &mut TunedMapping) {
        self.refine(best);
    }

    /// Multi-chain annealing around the winner: chain `k` anneals from
    /// the winner with seed `refinement.seed + k`; the lowest-scoring
    /// chain (ties → lowest index) replaces the winner iff strictly
    /// better. Annealing never increases the storage-violation count,
    /// so a legal winner stays legal (which cache replay re-checks).
    fn refine(&self, best: &mut TunedMapping) {
        let Some(r) = self.refinement else { return };
        if r.chains == 0 || r.iters == 0 || self.graph.is_empty() {
            return;
        }
        let run = |k: usize| {
            anneal(
                self.evaluator,
                self.graph,
                self.machine,
                &best.resolved,
                self.fom,
                r.iters,
                r.seed + k as u64,
            )
        };
        let chains = match self.pool {
            Some(pool) => par_map(pool, r.chains, 1, run),
            None => (0..r.chains).map(run).collect(),
        };
        let mut winner: Option<(usize, f64)> = None;
        for (k, (_, report)) in chains.iter().enumerate() {
            let score = self.evaluator.score(self.fom, report);
            if winner.is_none_or(|(_, w)| score < w) {
                winner = Some((k, score));
            }
        }
        if let Some((k, score)) = winner {
            if score < best.score {
                let (resolved, report) = chains.into_iter().nth(k).expect("winner index in range");
                best.label = format!("{} +anneal#{k}", best.label);
                best.resolved = resolved;
                best.report = report;
                best.score = score;
            }
        }
    }

    /// Is a cached mapping shaped for this graph and legal on this
    /// machine? Guards both stale entries and fingerprint collisions.
    fn replayable(&self, rm: &ResolvedMapping) -> bool {
        rm.place.len() == self.graph.len()
            && rm.time.len() == self.graph.len()
            && check(self.graph, rm, self.machine).is_legal()
    }

    fn fallback(&self) -> Option<TunedMapping> {
        if self.graph.is_empty() {
            return None;
        }
        let rm = default_mapper(self.graph, self.machine);
        if !check(self.graph, &rm, self.machine).is_legal() {
            return None;
        }
        let report = self.evaluator.evaluate(&rm);
        let score = self.evaluator.score(self.fom, &report);
        Some(TunedMapping {
            label: "default-mapper (fallback)".to_string(),
            resolved: rm,
            report,
            score,
        })
    }
}

/// Per-candidate evaluation state that survives structural edits.
///
/// Built once when a serving session opens ([`WarmCache::new`]
/// cold-derives counters for every resolvable candidate), then
/// *repaired* in O(edit cone) per [`AppliedEdit`]
/// ([`WarmCache::apply_edit`]) instead of re-derived in O(V + E).
/// [`Tuner::tune_warm`] drains it to pick a winner bit-identical to a
/// cold tune of the current graph.
///
/// The evaluator handed to every method must wrap the session's
/// *current* graph and machine (post-edit for [`WarmCache::apply_edit`])
/// and be configured identically — same writeback setting, same cost
/// model — across the cache's whole life. Candidates the repair path
/// cannot keep warm (table mappings after a length change, affine
/// mappings once a node has no index) are invalidated and rebuilt
/// lazily at the next tune, bumping [`WarmCache::rebuilds`].
pub struct WarmCache {
    candidates: Vec<MappingCandidate>,
    delta: DeltaCandidates,
}

impl WarmCache {
    /// Build warm state for a candidate list by cold-deriving each
    /// resolvable candidate's counters against the evaluator's current
    /// graph and machine.
    pub fn new(ev: &Evaluator<'_>, candidates: Vec<MappingCandidate>) -> WarmCache {
        let mappings = candidates.iter().map(|c| c.mapping.clone()).collect();
        WarmCache {
            delta: DeltaCandidates::new(ev, mappings),
            candidates,
        }
    }

    /// The candidate list the cache was built over, in offer order.
    pub fn candidates(&self) -> &[MappingCandidate] {
        &self.candidates
    }

    /// Number of candidates in the cache.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Is the candidate list empty?
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Repair every candidate's cached counters for one applied edit.
    ///
    /// `ev` must wrap the graph/machine *after* the edit. Returns the
    /// edit's dirty-cone size (see [`AppliedEdit::cone_size`]) so
    /// callers can account incremental work done.
    pub fn apply_edit(&mut self, ev: &Evaluator<'_>, edit: &AppliedEdit) -> u64 {
        self.delta.apply(ev, edit);
        edit.cone_size(ev.graph())
    }

    /// Total number of candidates that have fallen back to a cold
    /// from-scratch rebuild since construction. A
    /// [`Tuner::tune_warm`] call was fully warm iff this counter is
    /// unchanged across it.
    pub fn rebuilds(&self) -> u64 {
        self.delta.rebuilds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint;
    use fm_core::affine::IdxExpr;
    use fm_core::dataflow::CExpr;
    use fm_core::mapping::{AffineMap, Mapping, PlaceExpr};
    use fm_core::search::search;
    use fm_core::value::Value;

    fn wide(n: usize) -> DataflowGraph {
        let mut g = DataflowGraph::new("wide", 32);
        for i in 0..n {
            g.add_node(CExpr::konst(Value::real(i as f64)), vec![], vec![i as i64]);
        }
        g
    }

    fn chain(n: usize) -> DataflowGraph {
        let mut g = DataflowGraph::new("chain", 32);
        let mut prev: Option<u32> = None;
        for i in 0..n {
            let id = match prev {
                None => g.add_node(CExpr::konst(Value::ZERO), vec![], vec![i as i64]),
                Some(p) => g.add_node(
                    CExpr::dep(0).add(CExpr::konst(Value::real(1.0))),
                    vec![p],
                    vec![i as i64],
                ),
            };
            prev = Some(id);
        }
        g
    }

    fn families(g: &DataflowGraph) -> Vec<MappingCandidate> {
        vec![
            MappingCandidate::new("serial", Mapping::serial(g)),
            MappingCandidate::new(
                "spread",
                Mapping::Affine(AffineMap {
                    place: PlaceExpr::row0(IdxExpr::i()),
                    time: IdxExpr::c(0),
                }),
            ),
            MappingCandidate::new(
                "diag",
                Mapping::Affine(AffineMap {
                    place: PlaceExpr::row0(IdxExpr::i()),
                    time: IdxExpr::i(),
                }),
            ),
        ]
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "fm-autotune-tuner-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn serial_tuner_matches_search_exactly() {
        let g = wide(16);
        let m = MachineConfig::linear(16);
        let ev = Evaluator::new(&g, &m);
        let cands = families(&g);
        let from_search = search(&ev, &g, &m, &cands, FigureOfMerit::Time);
        let report = Tuner::new(&ev, &g, &m, FigureOfMerit::Time).tune(&cands);
        assert_eq!(report.evaluated, cands.len());
        assert_eq!(report.outcome.legal, from_search.legal);
        assert_eq!(
            report.best.as_ref().unwrap().label,
            from_search.best().unwrap().label
        );
        assert_eq!(
            report.best.as_ref().unwrap().score,
            from_search.best().unwrap().score
        );
        assert_eq!(report.cache, CacheStatus::Disabled);
        assert!(!report.fell_back);
    }

    #[test]
    fn parallel_tuner_picks_same_winner() {
        let g = wide(32);
        let m = MachineConfig::linear(16);
        let ev = Evaluator::new(&g, &m);
        let cands = families(&g);
        let pool = ThreadPool::with_threads(4);
        let serial = Tuner::new(&ev, &g, &m, FigureOfMerit::Edp).tune(&cands);
        let parallel = Tuner::new(&ev, &g, &m, FigureOfMerit::Edp)
            .with_pool(&pool)
            .tune(&cands);
        let (s, p) = (serial.best.unwrap(), parallel.best.unwrap());
        assert_eq!(s.label, p.label);
        assert_eq!(s.score, p.score);
        assert_eq!(s.resolved, p.resolved);
        // And the full outcomes agree order-for-order.
        let labels = |o: &SearchOutcome| {
            o.results
                .iter()
                .map(|r| r.label.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(labels(&serial.outcome), labels(&parallel.outcome));
    }

    #[test]
    fn max_candidates_prunes_a_prefix() {
        let g = wide(8);
        let m = MachineConfig::linear(8);
        let ev = Evaluator::new(&g, &m);
        let cands = families(&g);
        let report = Tuner::new(&ev, &g, &m, FigureOfMerit::Time)
            .with_budget(Budget::unlimited().with_max_candidates(1))
            .tune(&cands);
        assert_eq!(report.evaluated, 1);
        assert_eq!(report.pruned, 2);
        assert_eq!(report.best.unwrap().label, "serial");
    }

    #[test]
    fn convergence_window_stops_early() {
        // Many identical candidates after the first: no improvement
        // past index 0, so a window of 16 stops after 16 candidates.
        let g = wide(4);
        let m = MachineConfig::linear(4);
        let ev = Evaluator::new(&g, &m);
        let mut cands = vec![MappingCandidate::new(
            "spread",
            Mapping::Affine(AffineMap {
                place: PlaceExpr::row0(IdxExpr::i()),
                time: IdxExpr::c(0),
            }),
        )];
        for i in 0..100 {
            cands.push(MappingCandidate::new(
                format!("serial-{i}"),
                Mapping::serial(&g),
            ));
        }
        let report = Tuner::new(&ev, &g, &m, FigureOfMerit::Time)
            .with_budget(Budget::unlimited().with_convergence_window(16))
            .tune(&cands);
        assert_eq!(report.evaluated, 16, "window checked per candidate");
        assert!(report.pruned > 0);
        assert_eq!(report.best.unwrap().label, "spread");
        assert_eq!(report.trajectory.len(), 1);
    }

    #[test]
    fn convergence_window_identical_serial_and_parallel() {
        let g = wide(8);
        let m = MachineConfig::linear(8);
        let ev = Evaluator::new(&g, &m);
        let mut cands = Vec::new();
        // Improvements at scattered indices; the stopping point must be
        // schedule-independent.
        for i in 0..60 {
            cands.push(MappingCandidate::new(
                format!("serial-{i}"),
                Mapping::serial(&g),
            ));
        }
        cands.insert(
            3,
            MappingCandidate::new(
                "spread",
                Mapping::Affine(AffineMap {
                    place: PlaceExpr::row0(IdxExpr::i()),
                    time: IdxExpr::c(0),
                }),
            ),
        );
        let pool = ThreadPool::with_threads(8);
        let budget = Budget::unlimited().with_convergence_window(9);
        let serial = Tuner::new(&ev, &g, &m, FigureOfMerit::Time)
            .with_budget(budget)
            .tune(&cands);
        let parallel = Tuner::new(&ev, &g, &m, FigureOfMerit::Time)
            .with_budget(budget)
            .with_pool(&pool)
            .tune(&cands);
        assert_eq!(serial.evaluated, parallel.evaluated);
        assert_eq!(serial.trajectory, parallel.trajectory);
        let (s, p) = (serial.best.unwrap(), parallel.best.unwrap());
        assert_eq!(s.label, p.label);
        assert_eq!(s.score, p.score);
        assert_eq!(s.resolved, p.resolved);
    }

    #[test]
    fn refinement_improves_deterministically_and_in_parallel() {
        // An anneal-able problem: a chain spread badly across a grid.
        let g = chain(12);
        let m = MachineConfig::n5(4, 3);
        let ev = Evaluator::new(&g, &m);
        let cands = vec![MappingCandidate::new("serial", Mapping::serial(&g))];
        let r = Refinement {
            chains: 4,
            iters: 200,
            seed: 13,
        };
        let base = Tuner::new(&ev, &g, &m, FigureOfMerit::Energy).tune(&cands);
        let serial = Tuner::new(&ev, &g, &m, FigureOfMerit::Energy)
            .with_refinement(r)
            .tune(&cands);
        let pool = ThreadPool::with_threads(4);
        let parallel = Tuner::new(&ev, &g, &m, FigureOfMerit::Energy)
            .with_refinement(r)
            .with_pool(&pool)
            .tune(&cands);
        let (b, s, p) = (
            base.best.unwrap(),
            serial.best.unwrap(),
            parallel.best.unwrap(),
        );
        assert!(s.score <= b.score, "refinement must not regress");
        assert_eq!(s.label, p.label, "winner chain is seed-indexed");
        assert_eq!(s.score, p.score);
        assert_eq!(s.resolved, p.resolved);
        assert!(check(&g, &s.resolved, &m).is_legal());
        if s.score < b.score {
            assert!(s.label.contains("+anneal#"), "label records the chain");
        }
    }

    #[test]
    fn cache_hit_replays_full_ranked_outcome() {
        let g = wide(16);
        let m = MachineConfig::linear(16);
        let ev = Evaluator::new(&g, &m);
        let cands = families(&g);
        let dir = tmpdir("outcome");

        let cold = Tuner::new(&ev, &g, &m, FigureOfMerit::Edp)
            .with_cache(TuningCache::open(&dir).unwrap())
            .tune(&cands);
        let warm = Tuner::new(&ev, &g, &m, FigureOfMerit::Edp)
            .with_cache(TuningCache::open(&dir).unwrap())
            .tune(&cands);
        assert_eq!(warm.cache, CacheStatus::Hit);
        assert_eq!(warm.evaluated, 0);
        // The whole ranked table and trajectory replay, not just the
        // winner — warm runs can reprint reports with zero evaluation.
        assert_eq!(warm.trajectory, cold.trajectory);
        assert_eq!(warm.outcome.evaluated, cold.outcome.evaluated);
        assert_eq!(warm.outcome.legal, cold.outcome.legal);
        assert_eq!(warm.outcome.pareto, cold.outcome.pareto);
        let labels = |o: &SearchOutcome| {
            o.results
                .iter()
                .map(|r| (r.label.clone(), r.score))
                .collect::<Vec<_>>()
        };
        assert_eq!(labels(&warm.outcome), labels(&cold.outcome));
        assert!(warm.summary().contains("ranked candidates"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deadline_of_zero_still_evaluates_one_round() {
        let g = wide(4);
        let m = MachineConfig::linear(4);
        let ev = Evaluator::new(&g, &m);
        let cands = families(&g);
        let report = Tuner::new(&ev, &g, &m, FigureOfMerit::Time)
            .with_budget(Budget::unlimited().with_deadline(Duration::ZERO))
            .tune(&cands);
        // One round always runs (deadline checked at round boundaries),
        // and the family fits in one round, so everything is evaluated.
        assert!(report.evaluated >= 1);
        assert!(report.best.is_some());
    }

    #[test]
    fn falls_back_to_default_mapper_when_nothing_legal() {
        let g = chain(4);
        let m = MachineConfig::linear(4);
        let ev = Evaluator::new(&g, &m);
        // Dependent nodes forced simultaneous: illegal.
        let cands = vec![MappingCandidate::new(
            "all-at-once",
            Mapping::Affine(AffineMap {
                place: PlaceExpr::row0(IdxExpr::i()),
                time: IdxExpr::c(0),
            }),
        )];
        let report = Tuner::new(&ev, &g, &m, FigureOfMerit::Time).tune(&cands);
        assert!(report.fell_back);
        let best = report.best.unwrap();
        assert_eq!(best.label, "default-mapper (fallback)");
        assert!(check(&g, &best.resolved, &m).is_legal());
        assert_eq!(report.outcome.legal, 0);
    }

    #[test]
    fn cache_hit_skips_evaluation_and_replays_same_winner() {
        let g = wide(16);
        let m = MachineConfig::linear(16);
        let ev = Evaluator::new(&g, &m);
        let cands = families(&g);
        let dir = tmpdir("hit");

        let cold = Tuner::new(&ev, &g, &m, FigureOfMerit::Edp)
            .with_cache(TuningCache::open(&dir).unwrap())
            .tune(&cands);
        assert_eq!(cold.cache, CacheStatus::Miss);
        assert_eq!(cold.evaluated, cands.len());

        let warm = Tuner::new(&ev, &g, &m, FigureOfMerit::Edp)
            .with_cache(TuningCache::open(&dir).unwrap())
            .tune(&cands);
        assert_eq!(warm.cache, CacheStatus::Hit);
        assert_eq!(warm.evaluated, 0, "hit must skip all evaluation");
        assert_eq!(warm.pruned, cands.len());
        let (c, w) = (cold.best.unwrap(), warm.best.unwrap());
        assert_eq!(c.label, w.label);
        assert_eq!(c.score, w.score);
        assert_eq!(c.resolved, w.resolved);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_entry_degrades_to_cold_search() {
        let g = wide(8);
        let m = MachineConfig::linear(8);
        let ev = Evaluator::new(&g, &m);
        let cands = families(&g);
        let dir = tmpdir("corrupt");

        let cache = TuningCache::open(&dir).unwrap();
        let cold = Tuner::new(&ev, &g, &m, FigureOfMerit::Edp)
            .with_cache(cache.clone())
            .tune(&cands);
        // Smash every cache file.
        for f in std::fs::read_dir(&dir).unwrap() {
            std::fs::write(f.unwrap().path(), b"]]garbage[[").unwrap();
        }
        let after = Tuner::new(&ev, &g, &m, FigureOfMerit::Edp)
            .with_cache(cache)
            .tune(&cands);
        assert_eq!(after.cache, CacheStatus::Miss);
        assert_eq!(after.evaluated, cands.len());
        assert_eq!(after.best.unwrap().label, cold.best.unwrap().label);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_cache_entry_is_rechecked_and_rejected() {
        let g = wide(8);
        let m = MachineConfig::linear(8);
        let ev = Evaluator::new(&g, &m);
        let cands = families(&g);
        let dir = tmpdir("stale");
        let cache = TuningCache::open(&dir).unwrap();

        let cold = Tuner::new(&ev, &g, &m, FigureOfMerit::Edp)
            .with_cache(cache.clone())
            .tune(&cands);
        let fp = fingerprint(&g, &m, FigureOfMerit::Edp, &cands, None);
        // Forge an entry whose mapping no longer fits the graph.
        let mut entry = cache.load(fp).unwrap();
        entry.best.resolved.place.pop();
        entry.best.resolved.time.pop();
        cache.store(&entry).unwrap();

        let warm = Tuner::new(&ev, &g, &m, FigureOfMerit::Edp)
            .with_cache(cache)
            .tune(&cands);
        assert_eq!(warm.cache, CacheStatus::Stale);
        assert_eq!(warm.evaluated, cands.len());
        assert_eq!(warm.best.unwrap().label, cold.best.unwrap().label);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pre_cancelled_tune_returns_promptly_with_fallback() {
        let g = wide(32);
        let m = MachineConfig::linear(16);
        let ev = Evaluator::new(&g, &m);
        // A long candidate list that would take a while to grind through.
        let mut cands = Vec::new();
        for i in 0..500 {
            cands.push(MappingCandidate::new(
                format!("serial-{i}"),
                Mapping::serial(&g),
            ));
        }
        let token = CancelToken::new();
        token.cancel();
        let report = Tuner::new(&ev, &g, &m, FigureOfMerit::Time)
            .with_cancel(token)
            .tune(&cands);
        assert!(report.cancelled);
        assert_eq!(report.evaluated, 0, "no candidate starts after cancel");
        // The report is still useful: the default-mapper fallback is
        // legal for any graph.
        assert!(report.fell_back);
        let best = report.best.unwrap();
        assert!(check(&g, &best.resolved, &m).is_legal());
    }

    #[test]
    fn mid_run_cancel_aborts_between_candidates_with_partial_outcome() {
        let g = wide(24);
        let m = MachineConfig::linear(8);
        let ev = Evaluator::new(&g, &m);
        let mut cands = families(&g);
        for i in 0..2000 {
            cands.push(MappingCandidate::new(
                format!("serial-{i}"),
                Mapping::serial(&g),
            ));
        }
        let token = CancelToken::new();
        // Cancel from "outside" (what a deadline watchdog or disconnect
        // detector does): another thread latches the token after a
        // short nap, as the server's per-request watchdog would.
        let t2 = token.clone();
        let watchdog = std::thread::spawn(move || {
            // Latch almost immediately; the tune below takes far longer
            // than this if it cannot be cancelled.
            std::thread::sleep(Duration::from_millis(2));
            t2.cancel();
        });
        let report = Tuner::new(&ev, &g, &m, FigureOfMerit::Edp)
            .with_cancel(token.clone())
            .tune(&cands);
        watchdog.join().unwrap();
        if report.cancelled {
            assert!(
                report.evaluated < cands.len(),
                "cancelled run must not evaluate the whole list"
            );
            assert_eq!(report.pruned, cands.len() - report.evaluated);
            // Partial outcome is well-formed over the evaluated prefix.
            assert_eq!(report.outcome.evaluated, report.evaluated);
            assert!(report.best.is_some());
        }
        // Whether or not the race cancelled in time, the winner (if the
        // prefix contained a legal candidate) is one of the offered
        // labels or the fallback.
        let best = report.best.unwrap();
        assert!(
            cands.iter().any(|c| c.label == best.label) || best.label.contains("default-mapper")
        );
    }

    #[test]
    fn cancelled_parallel_tune_stops_early_and_skips_cache_store() {
        let g = wide(16);
        let m = MachineConfig::linear(8);
        let ev = Evaluator::new(&g, &m);
        let mut cands = Vec::new();
        for i in 0..800 {
            cands.push(MappingCandidate::new(
                format!("serial-{i}"),
                Mapping::serial(&g),
            ));
        }
        let dir = tmpdir("cancel");
        let pool = ThreadPool::with_threads(4);
        let token = CancelToken::new();
        token.cancel();
        let report = Tuner::new(&ev, &g, &m, FigureOfMerit::Time)
            .with_pool(&pool)
            .with_cache(TuningCache::open(&dir).unwrap())
            .with_cancel(token)
            .tune(&cands);
        assert!(report.cancelled);
        assert_eq!(report.evaluated, 0);
        // Nothing was persisted: a later uncancelled run misses.
        let rerun = Tuner::new(&ev, &g, &m, FigureOfMerit::Time)
            .with_cache(TuningCache::open(&dir).unwrap())
            .tune(&cands);
        assert_eq!(rerun.cache, CacheStatus::Miss);
        assert!(!rerun.cancelled);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trajectory_is_monotone_decreasing() {
        let g = wide(16);
        let m = MachineConfig::linear(16);
        let ev = Evaluator::new(&g, &m);
        let cands = families(&g);
        let report = Tuner::new(&ev, &g, &m, FigureOfMerit::Edp).tune(&cands);
        assert!(!report.trajectory.is_empty());
        for pair in report.trajectory.windows(2) {
            assert!(pair[1].1 < pair[0].1, "strict improvements only");
            assert!(pair[1].0 > pair[0].0, "indices ascend");
        }
        let last = report.trajectory.last().unwrap();
        assert_eq!(last.1, report.best.unwrap().score);
    }

    /// Bit-level equality of everything a warm tune promises to
    /// reproduce from the cold path (wall-clock excluded, obviously).
    fn assert_reports_match(warm: &TuneReport, cold: &TuneReport) {
        assert_eq!(warm.evaluated, cold.evaluated);
        assert_eq!(warm.pruned, cold.pruned);
        assert_eq!(warm.best_index, cold.best_index);
        assert_eq!(warm.fell_back, cold.fell_back);
        assert_eq!(warm.trajectory.len(), cold.trajectory.len());
        for (w, c) in warm.trajectory.iter().zip(&cold.trajectory) {
            assert_eq!(w.0, c.0);
            assert_eq!(w.1.to_bits(), c.1.to_bits());
        }
        match (&warm.best, &cold.best) {
            (Some(w), Some(c)) => {
                assert_eq!(w.label, c.label);
                assert_eq!(w.score.to_bits(), c.score.to_bits());
                assert_eq!(w.resolved, c.resolved);
                assert_eq!(
                    serde_json::to_string(&w.report).unwrap(),
                    serde_json::to_string(&c.report).unwrap()
                );
            }
            (None, None) => {}
            _ => panic!("warm and cold disagree on having a winner"),
        }
        assert_eq!(
            serde_json::to_string(&warm.outcome).unwrap(),
            serde_json::to_string(&cold.outcome).unwrap()
        );
    }

    #[test]
    fn warm_tune_matches_cold_tune_across_an_edit_stream() {
        use fm_core::mutate::{apply_edit, GraphEdit};
        let mut g = chain(8);
        let mut m = MachineConfig::linear(16);
        let cands = families(&g);
        let mut warm = {
            let ev = Evaluator::new(&g, &m);
            WarmCache::new(&ev, cands.clone())
        };
        assert_eq!(warm.len(), cands.len());
        assert!(!warm.is_empty());

        let grow = CExpr::dep(0).add(CExpr::konst(Value::real(1.0)));
        let edits = vec![
            GraphEdit::AddNode {
                expr: grow.clone(),
                deps: vec![7],
                index: vec![8],
                output: false,
            },
            GraphEdit::ResizeTile { tile_bits: 256 },
            GraphEdit::RetargetEdge {
                node: 8,
                slot: 0,
                new_dep: 3,
            },
            GraphEdit::ResizeTile {
                tile_bits: 64 * 1024 * 1024,
            },
            GraphEdit::AddNode {
                expr: grow.clone(),
                deps: vec![8],
                index: vec![9],
                output: true,
            },
            GraphEdit::RemoveNode { id: 9 },
        ];
        let budget = Budget::unlimited().with_convergence_window(2);
        for edit in &edits {
            let receipt = apply_edit(&mut g, &mut m, edit).unwrap();
            let ev = Evaluator::new(&g, &m);
            let cone = warm.apply_edit(&ev, &receipt);
            assert_eq!(cone, receipt.cone_size(&g));
            let w = Tuner::new(&ev, &g, &m, FigureOfMerit::Edp)
                .with_budget(budget)
                .tune_warm(&mut warm);
            let c = Tuner::new(&ev, &g, &m, FigureOfMerit::Edp)
                .with_budget(budget)
                .tune(&cands);
            assert_eq!(w.cache, CacheStatus::Disabled);
            assert_reports_match(&w, &c);
        }
    }

    #[test]
    fn warm_tune_fallback_is_bit_equal_to_cold() {
        // Only illegal candidates on offer: both paths must fall back
        // to the default mapper with identical reports.
        let g = chain(6);
        let m = MachineConfig::linear(8);
        let ev = Evaluator::new(&g, &m);
        let cands = vec![MappingCandidate::new(
            "spread",
            Mapping::Affine(AffineMap {
                place: PlaceExpr::row0(IdxExpr::i()),
                time: IdxExpr::c(0),
            }),
        )];
        let mut warm = WarmCache::new(&ev, cands.clone());
        let w = Tuner::new(&ev, &g, &m, FigureOfMerit::Time).tune_warm(&mut warm);
        let c = Tuner::new(&ev, &g, &m, FigureOfMerit::Time).tune(&cands);
        assert!(w.fell_back && c.fell_back);
        assert_reports_match(&w, &c);
        assert_eq!(warm.rebuilds(), 0);
    }

    #[test]
    fn warm_tune_counts_cold_rebuilds_after_invalidation() {
        use fm_core::mutate::{apply_edit, GraphEdit};
        let mut g = chain(6);
        let mut m = MachineConfig::linear(16);
        let cands = families(&g); // includes the "serial" table candidate
        let mut warm = {
            let ev = Evaluator::new(&g, &m);
            WarmCache::new(&ev, cands.clone())
        };

        // A length change drops the table candidate from the warm set;
        // it stays Unresolvable (no rebuild) while lengths mismatch.
        let add = GraphEdit::AddNode {
            expr: CExpr::dep(0).add(CExpr::konst(Value::real(1.0))),
            deps: vec![5],
            index: vec![6],
            output: false,
        };
        let receipt = apply_edit(&mut g, &mut m, &add).unwrap();
        {
            let ev = Evaluator::new(&g, &m);
            warm.apply_edit(&ev, &receipt);
            let w = Tuner::new(&ev, &g, &m, FigureOfMerit::Edp).tune_warm(&mut warm);
            let c = Tuner::new(&ev, &g, &m, FigureOfMerit::Edp).tune(&cands);
            assert_reports_match(&w, &c);
            assert_eq!(warm.rebuilds(), 0);
        }

        // Removing the node restores the table's length: the next warm
        // tune rebuilds exactly that one candidate cold and says so.
        let receipt = apply_edit(&mut g, &mut m, &GraphEdit::RemoveNode { id: 6 }).unwrap();
        {
            let ev = Evaluator::new(&g, &m);
            warm.apply_edit(&ev, &receipt);
            let w = Tuner::new(&ev, &g, &m, FigureOfMerit::Edp).tune_warm(&mut warm);
            let c = Tuner::new(&ev, &g, &m, FigureOfMerit::Edp).tune(&cands);
            assert_reports_match(&w, &c);
            assert_eq!(warm.rebuilds(), 1);
        }
    }
}
