//! fm-autotune: a parallel, budgeted, persistently-cached mapping
//! autotuner over `fm-core`'s mapping-search space.
//!
//! The panel paper's position is that the mapping space is searchable:
//! "one can systematically search the space of possible mappings to
//! optimize a given figure of merit". `fm-core::search` does that
//! serially and statelessly. This crate wraps the same per-candidate
//! evaluation ([`fm_core::search::evaluate_candidate`]) in a harness
//! that production use needs:
//!
//! * **parallel evaluation** — candidates fan out across an
//!   `fm-workspan` thread pool ([`fm_workspan::par_map`]); results are
//!   reassembled in candidate order and sorted stably, so the parallel
//!   tuner picks exactly the winner the serial [`fm_core::search::search`]
//!   would (deterministic tie-breaking);
//! * **a persistent cache** — the best mapping for a (function graph,
//!   machine, objective, candidate set) fingerprint is stored as
//!   versioned JSON and replayed on later runs after a legality
//!   re-check; corrupt or stale entries degrade to a cold search,
//!   never a panic;
//! * **budgets** — a cap on candidates, a wall-clock deadline, and
//!   early-stop on convergence, with graceful fallback to
//!   [`fm_core::search::default_mapper`] when nothing legal was found
//!   in budget;
//! * **observability** — a [`TuneReport`] with counters (evaluated,
//!   pruned, cache status, best-so-far trajectory) that the `fm-tune`
//!   CLI prints.

#![warn(missing_docs)]

pub mod cache;
pub mod fingerprint;
pub mod tuner;

pub use cache::{CacheEntry, TuningCache, CACHE_SCHEMA_VERSION};
pub use fingerprint::{fingerprint, fingerprint_with_model, fnv1a64};
pub use tuner::{
    Budget, CacheStatus, CancelToken, Refinement, TuneReport, TunedMapping, Tuner, WarmCache,
};
