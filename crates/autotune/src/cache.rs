//! The persistent on-disk tuning cache.
//!
//! One JSON file per tuning problem, named by the problem's content
//! fingerprint (`<fingerprint:016x>.json`) under a caller-chosen
//! directory. Entries are versioned; reads tolerate every failure mode
//! by degrading to a cold search: missing file, unreadable file,
//! malformed JSON, schema-version mismatch, fingerprint mismatch — none
//! panic, all report "no entry". Stale entries (a cached mapping that
//! is no longer legal for the graph/machine, e.g. after a simulator
//! change) are caught by the tuner's legality re-check on hit.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use fm_core::search::SearchOutcome;

use crate::tuner::TunedMapping;

/// Bump when the entry layout changes; old entries then read as cold.
/// v2: entries carry the full ranked [`SearchOutcome`] and best-so-far
/// trajectory, so a warm run reprints ranked tables with zero
/// re-evaluation (v1 entries stored only the winner and now read cold).
pub const CACHE_SCHEMA_VERSION: u32 = 2;

/// One cached tuning result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheEntry {
    /// Schema version ([`CACHE_SCHEMA_VERSION`] at write time).
    pub version: u32,
    /// The problem fingerprint this entry answers.
    pub fingerprint: u64,
    /// The winning mapping and its cost report.
    pub best: TunedMapping,
    /// Candidates evaluated when this entry was produced.
    pub evaluated: usize,
    /// Whether the producing search saw every candidate (false when a
    /// budget truncated it — the entry is still served, but a caller
    /// raising the budget may want to retune).
    pub complete: bool,
    /// The full ranked outcome over the evaluated prefix (every legal
    /// candidate's report, rejections, Pareto front), replayed verbatim
    /// on a hit.
    pub outcome: SearchOutcome,
    /// Best-so-far trajectory (candidate index, score), replayed on a
    /// hit.
    pub trajectory: Vec<(usize, f64)>,
}

/// A directory of cached tuning results.
#[derive(Debug, Clone)]
pub struct TuningCache {
    dir: PathBuf,
}

impl TuningCache {
    /// Open (creating the directory if needed). Returns `None` if the
    /// directory cannot be created — callers then tune uncached.
    pub fn open(dir: impl Into<PathBuf>) -> Option<TuningCache> {
        let dir = dir.into();
        match fs::create_dir_all(&dir) {
            Ok(()) => Some(TuningCache { dir }),
            Err(_) => None,
        }
    }

    /// The directory backing this cache.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("{fingerprint:016x}.json"))
    }

    /// Look up an entry. Any read or decode failure, version mismatch,
    /// or fingerprint mismatch returns `None` (cold search), never an
    /// error.
    pub fn load(&self, fingerprint: u64) -> Option<CacheEntry> {
        let text = fs::read_to_string(self.path_for(fingerprint)).ok()?;
        let entry: CacheEntry = serde_json::from_str(&text).ok()?;
        if entry.version != CACHE_SCHEMA_VERSION || entry.fingerprint != fingerprint {
            return None;
        }
        Some(entry)
    }

    /// Store an entry, overwriting any previous one. Written to a
    /// sibling temp file then renamed, so a crash mid-write leaves no
    /// half-written entry under the final name. Errors are reported,
    /// not panicked: a full disk only loses the cache.
    pub fn store(&self, entry: &CacheEntry) -> std::io::Result<()> {
        let final_path = self.path_for(entry.fingerprint);
        let tmp_path = final_path.with_extension("json.tmp");
        let text = serde_json::to_string_pretty(entry)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_core::cost::{CostReport, Evaluator};
    use fm_core::dataflow::{CExpr, DataflowGraph};
    use fm_core::machine::MachineConfig;
    use fm_core::mapping::ResolvedMapping;
    use fm_core::value::Value;

    fn entry_for(fp: u64) -> CacheEntry {
        let mut g = DataflowGraph::new("t", 32);
        g.add_node(CExpr::konst(Value::real(1.0)), vec![], vec![0]);
        let m = MachineConfig::linear(2);
        let rm = ResolvedMapping {
            place: vec![(0, 0)],
            time: vec![0],
        };
        let report: CostReport = Evaluator::new(&g, &m).evaluate(&rm);
        CacheEntry {
            version: CACHE_SCHEMA_VERSION,
            fingerprint: fp,
            best: TunedMapping {
                label: "serial".into(),
                resolved: rm,
                report,
                score: 1.0,
            },
            evaluated: 1,
            complete: true,
            outcome: fm_core::search::assemble_outcome(
                &[],
                std::iter::empty::<fm_core::search::CandidateEval>(),
            ),
            trajectory: vec![(0, 1.0)],
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "fm-autotune-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn round_trips() {
        let dir = tmpdir("rt");
        let cache = TuningCache::open(&dir).unwrap();
        let e = entry_for(0xabcd);
        cache.store(&e).unwrap();
        let back = cache.load(0xabcd).expect("entry present");
        assert_eq!(back.best.label, "serial");
        assert_eq!(back.best.resolved, e.best.resolved);
        assert!(back.complete);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_and_corrupt_read_as_cold() {
        let dir = tmpdir("corrupt");
        let cache = TuningCache::open(&dir).unwrap();
        assert!(cache.load(7).is_none(), "missing file");

        let e = entry_for(7);
        cache.store(&e).unwrap();
        fs::write(dir.join("0000000000000007.json"), b"{not json").unwrap();
        assert!(cache.load(7).is_none(), "corrupt file degrades to cold");

        fs::write(dir.join("0000000000000007.json"), b"[1,2,3]").unwrap();
        assert!(cache.load(7).is_none(), "wrong shape degrades to cold");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_and_fingerprint_mismatches_read_as_cold() {
        let dir = tmpdir("ver");
        let cache = TuningCache::open(&dir).unwrap();
        let mut e = entry_for(9);
        e.version = CACHE_SCHEMA_VERSION + 1;
        cache.store(&e).unwrap();
        assert!(cache.load(9).is_none(), "future schema reads as cold");

        // An entry whose body claims a different fingerprint than its
        // filename (e.g. copied by hand) must not be served.
        let mut e = entry_for(10);
        e.fingerprint = 11;
        let text = serde_json::to_string(&e).unwrap();
        fs::write(dir.join(format!("{:016x}.json", 10u64)), text).unwrap();
        assert!(cache.load(10).is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
