//! Space-time mappings.
//!
//! "The mapping specifies when and where each element is computed and
//! where elements reside from definition to last use."
//!
//! A [`Mapping`] assigns each dataflow node a *place* (a PE coordinate)
//! and a *time* (a cycle). For recurrence-elaborated graphs the natural
//! form is an [`AffineMap`] over the node's domain indices — exactly
//! what the paper writes (`at i % P, time floor(i/P)*N + j`). Irregular
//! graphs use an explicit per-node table. [`Mapping::resolve`] turns
//! either into a [`ResolvedMapping`], the form the legality checker,
//! cost evaluator, and grid simulator consume.
//!
//! Placements may be 2-D (`x`/`y` expressions) or *linear*: a single PE
//! id laid onto the grid in row-major or serpentine order. Serpentine
//! order keeps consecutive ids physically adjacent across row
//! boundaries, which systolic schedules need.

use serde::{Deserialize, Serialize};

use crate::affine::IdxExpr;
use crate::dataflow::DataflowGraph;
use crate::machine::MachineConfig;

/// A PE coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Place {
    /// Column.
    pub x: u32,
    /// Row.
    pub y: u32,
}

impl Place {
    /// Construct.
    pub fn new(x: u32, y: u32) -> Place {
        Place { x, y }
    }

    /// As a tuple (for geometry helpers).
    pub fn tuple(self) -> (u32, u32) {
        (self.x, self.y)
    }
}

/// How a linear PE id is laid onto the 2-D grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinearOrder {
    /// `id = y·cols + x`.
    RowMajor,
    /// Row-major but with odd rows reversed, so `id` and `id+1` are
    /// always physically adjacent.
    Serpentine,
}

impl LinearOrder {
    /// Coordinates of linear `id` on a grid with `cols` columns.
    pub fn coords(self, id: i64, cols: u32) -> (i64, i64) {
        let c = i64::from(cols);
        let y = id.div_euclid(c);
        let r = id.rem_euclid(c);
        let x = match self {
            LinearOrder::RowMajor => r,
            LinearOrder::Serpentine => {
                if y % 2 == 0 {
                    r
                } else {
                    c - 1 - r
                }
            }
        };
        (x, y)
    }
}

/// A place expression over domain indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlaceExpr {
    /// Explicit 2-D coordinates.
    Grid {
        /// Column expression.
        x: IdxExpr,
        /// Row expression.
        y: IdxExpr,
    },
    /// A linear PE id laid out in the given order.
    Linear {
        /// PE id expression.
        id: IdxExpr,
        /// Layout order.
        order: LinearOrder,
    },
}

impl PlaceExpr {
    /// A 1-D placement on row 0 (for linear arrays).
    pub fn row0(x: IdxExpr) -> PlaceExpr {
        PlaceExpr::Grid {
            x,
            y: IdxExpr::c(0),
        }
    }

    /// Evaluate to raw (possibly off-grid) coordinates.
    pub fn eval(&self, idx: &[i64], cols: u32) -> (i64, i64) {
        match self {
            PlaceExpr::Grid { x, y } => (x.eval(idx), y.eval(idx)),
            PlaceExpr::Linear { id, order } => order.coords(id.eval(idx), cols),
        }
    }
}

/// An affine space-time map over domain indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AffineMap {
    /// Where each element executes.
    pub place: PlaceExpr,
    /// When each element executes.
    pub time: IdxExpr,
}

/// Where an input tensor's elements live before execution starts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InputPlacement {
    /// Off chip: each distinct element is charged one DRAM fetch.
    Dram,
    /// Pre-distributed on chip; each element's home PE is given by a
    /// place expression over the *input's own* indices. Reads from the
    /// home PE are tile accesses; remote reads are NoC messages.
    Local(PlaceExpr),
    /// Idealized: resident wherever it is read (no movement charged).
    /// Useful to isolate the cost of the computation proper.
    AtUse,
}

/// Errors resolving a mapping against a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// An affine mapping was applied to a node with no domain index.
    MissingIndex {
        /// Offending node.
        node: u32,
    },
    /// The table mapping's length does not match the graph.
    LengthMismatch {
        /// Table length.
        table: usize,
        /// Graph length.
        graph: usize,
    },
}

impl std::fmt::Display for MappingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MappingError::MissingIndex { node } => {
                write!(
                    f,
                    "affine mapping applied to node {node} with no domain index"
                )
            }
            MappingError::LengthMismatch { table, graph } => {
                write!(
                    f,
                    "table mapping has {table} entries for a graph of {graph} nodes"
                )
            }
        }
    }
}

impl std::error::Error for MappingError {}

/// A fully resolved space-time assignment: raw coordinates and cycles
/// per node. Raw (i64) because legality checking — not resolution —
/// decides whether places are on the grid and times non-negative.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolvedMapping {
    /// Per-node raw PE coordinates.
    pub place: Vec<(i64, i64)>,
    /// Per-node cycle.
    pub time: Vec<i64>,
}

impl ResolvedMapping {
    /// The checked place of a node (call only after legality passes).
    pub fn place_of(&self, node: u32) -> Place {
        let (x, y) = self.place[node as usize];
        Place::new(x as u32, y as u32)
    }

    /// The makespan: latest cycle + 1 (assuming times start near 0).
    pub fn makespan(&self) -> i64 {
        self.time.iter().copied().max().map_or(0, |t| t + 1)
    }

    /// Number of distinct PEs actually used.
    pub fn pes_used(&self) -> usize {
        let mut v: Vec<(i64, i64)> = self.place.clone();
        v.sort_unstable();
        v.dedup();
        v.len()
    }
}

/// A space-time mapping in either affine or table form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Mapping {
    /// Affine over node domain indices.
    Affine(AffineMap),
    /// Explicit per-node assignment.
    Table(ResolvedMapping),
}

impl Mapping {
    /// Everything on PE (0,0), one node per cycle in topological order —
    /// the fully serial mapping ("mappings … range from completely
    /// serial to minimum-depth parallel").
    pub fn serial(graph: &DataflowGraph) -> Mapping {
        Mapping::Table(ResolvedMapping {
            place: vec![(0, 0); graph.len()],
            time: (0..graph.len() as i64).collect(),
        })
    }

    /// Resolve against a graph.
    pub fn resolve(
        &self,
        graph: &DataflowGraph,
        machine: &MachineConfig,
    ) -> Result<ResolvedMapping, MappingError> {
        let mut place = Vec::with_capacity(graph.len());
        let mut time = Vec::with_capacity(graph.len());
        self.resolve_into(graph, machine, &mut place, &mut time)?;
        Ok(ResolvedMapping { place, time })
    }

    /// [`Self::resolve`] into caller-owned buffers (cleared first), so
    /// the flat candidate evaluator resolves into scratch with no
    /// allocation in steady state. Errors in exactly the cases
    /// `resolve` errors; buffer contents are unspecified on error.
    pub fn resolve_into(
        &self,
        graph: &DataflowGraph,
        machine: &MachineConfig,
        place: &mut Vec<(i64, i64)>,
        time: &mut Vec<i64>,
    ) -> Result<(), MappingError> {
        place.clear();
        time.clear();
        match self {
            Mapping::Affine(am) => {
                for (id, n) in graph.nodes.iter().enumerate() {
                    if n.index.is_empty() {
                        return Err(MappingError::MissingIndex { node: id as u32 });
                    }
                    place.push(am.place.eval(&n.index, machine.cols));
                    time.push(am.time.eval(&n.index));
                }
                Ok(())
            }
            Mapping::Table(t) => {
                if t.place.len() != graph.len() || t.time.len() != graph.len() {
                    return Err(MappingError::LengthMismatch {
                        table: t.place.len().min(t.time.len()),
                        graph: graph.len(),
                    });
                }
                place.extend_from_slice(&t.place);
                time.extend_from_slice(&t.time);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::CExpr;
    use crate::value::Value;

    fn chain(n: usize) -> DataflowGraph {
        let mut g = DataflowGraph::new("chain", 32);
        let mut prev = None;
        for i in 0..n {
            let id = match prev {
                None => g.add_node(CExpr::konst(Value::real(1.0)), vec![], vec![i as i64]),
                Some(p) => g.add_node(
                    CExpr::dep(0).add(CExpr::konst(Value::real(1.0))),
                    vec![p],
                    vec![i as i64],
                ),
            };
            prev = Some(id);
        }
        g
    }

    #[test]
    fn serpentine_keeps_neighbors_adjacent() {
        let cols = 4;
        for id in 0..15 {
            let a = LinearOrder::Serpentine.coords(id, cols);
            let b = LinearOrder::Serpentine.coords(id + 1, cols);
            let hops = (a.0 - b.0).abs() + (a.1 - b.1).abs();
            assert_eq!(hops, 1, "ids {id},{} at {a:?},{b:?}", id + 1);
        }
    }

    #[test]
    fn row_major_wraps_with_long_hop() {
        let cols = 4;
        let a = LinearOrder::RowMajor.coords(3, cols);
        let b = LinearOrder::RowMajor.coords(4, cols);
        assert_eq!(a, (3, 0));
        assert_eq!(b, (0, 1));
    }

    #[test]
    fn affine_resolution_uses_node_indices() {
        let g = chain(8);
        let m = MachineConfig::linear(4);
        let map = Mapping::Affine(AffineMap {
            place: PlaceExpr::row0(IdxExpr::i() % 4),
            time: IdxExpr::i(),
        });
        let r = map.resolve(&g, &m).unwrap();
        assert_eq!(r.place[5], (1, 0));
        assert_eq!(r.time[5], 5);
        assert_eq!(r.makespan(), 8);
        assert_eq!(r.pes_used(), 4);
    }

    #[test]
    fn affine_on_unindexed_graph_fails() {
        let mut g = DataflowGraph::new("no-index", 32);
        g.add_node(CExpr::konst(Value::ZERO), vec![], vec![]);
        let m = MachineConfig::linear(2);
        let map = Mapping::Affine(AffineMap {
            place: PlaceExpr::row0(IdxExpr::i()),
            time: IdxExpr::i(),
        });
        assert!(matches!(
            map.resolve(&g, &m),
            Err(MappingError::MissingIndex { node: 0 })
        ));
    }

    #[test]
    fn table_length_checked() {
        let g = chain(4);
        let m = MachineConfig::linear(2);
        let map = Mapping::Table(ResolvedMapping {
            place: vec![(0, 0); 3],
            time: vec![0; 3],
        });
        assert!(matches!(
            map.resolve(&g, &m),
            Err(MappingError::LengthMismatch { table: 3, graph: 4 })
        ));
    }

    #[test]
    fn serial_mapping_is_one_pe_one_per_cycle() {
        let g = chain(5);
        let m = MachineConfig::linear(4);
        let r = Mapping::serial(&g).resolve(&g, &m).unwrap();
        assert_eq!(r.pes_used(), 1);
        assert_eq!(r.makespan(), 5);
        assert_eq!(r.time, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn place_expr_linear_eval() {
        let p = PlaceExpr::Linear {
            id: IdxExpr::i(),
            order: LinearOrder::Serpentine,
        };
        assert_eq!(p.eval(&[6], 4), (1, 1)); // row 1 reversed: 4→(3,1), 5→(2,1), 6→(1,1)
    }

    #[test]
    fn serpentine_row1_reversed() {
        // Row 1 (ids 4..7) on 4 cols runs right-to-left.
        assert_eq!(LinearOrder::Serpentine.coords(4, 4), (3, 1));
        assert_eq!(LinearOrder::Serpentine.coords(7, 4), (0, 1));
        // Row 2 runs left-to-right again.
        assert_eq!(LinearOrder::Serpentine.coords(8, 4), (0, 2));
    }
}
