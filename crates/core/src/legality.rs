//! Mapping legality: the static verifier for space-time mappings.
//!
//! "A legal mapping is one that preserves causality — scheduling element
//! computations after their inputs have been computed, allows time for
//! elements to move from definition to use, and does not exceed storage
//! bounds for elements in transit."
//!
//! [`check`] verifies, for a graph + resolved mapping + machine:
//!
//! 1. **Bounds** — every place is on the grid, every time non-negative.
//! 2. **Causality with wire delay** — for every edge `d → n`,
//!    `time(n) ≥ time(d) + max(1, hops(place(d), place(n)))`.
//! 3. **Issue width** — at most `issue_width` elements per PE per cycle.
//! 4. **Storage** — each value occupies its producer's tile from its
//!    production cycle until its last consumption (outputs: until the
//!    makespan); the peak concurrent footprint per tile must fit.
//!
//! The checker reports *all* violations (capped) rather than failing
//! fast, so a mapping author sees the shape of the problem. This is the
//! crate's nod to Martonosi's statement (§4): the mapping layer is a
//! full-stack interface narrow enough to verify automatically.

use std::collections::HashMap;

use serde::Serialize;

use crate::dataflow::{DataflowGraph, NodeId};
use crate::machine::MachineConfig;
use crate::mapping::ResolvedMapping;

/// Cap on recorded violations (total counts are still exact).
const MAX_RECORDED: usize = 64;

/// A single legality violation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum LegalityError {
    /// A node is mapped off the grid.
    PlaceOutOfBounds {
        /// Offending node.
        node: NodeId,
        /// Raw coordinates.
        place: (i64, i64),
    },
    /// A node is scheduled before cycle 0.
    NegativeTime {
        /// Offending node.
        node: NodeId,
        /// Scheduled cycle.
        time: i64,
    },
    /// A value would need to arrive before it was produced (or faster
    /// than the wires allow).
    CausalityViolation {
        /// Producer node.
        producer: NodeId,
        /// Consumer node.
        consumer: NodeId,
        /// Minimum legal gap in cycles.
        required_gap: i64,
        /// Actual gap in cycles.
        actual_gap: i64,
    },
    /// Too many elements scheduled on one PE in one cycle.
    IssueWidthExceeded {
        /// PE coordinates.
        place: (i64, i64),
        /// Cycle.
        time: i64,
        /// Elements scheduled.
        count: u32,
        /// Allowed issue width.
        width: u32,
    },
    /// A tile's peak live footprint exceeds its capacity.
    StorageExceeded {
        /// PE coordinates.
        place: (i64, i64),
        /// Peak live bits.
        peak_bits: u64,
        /// Tile capacity in bits.
        capacity_bits: u64,
    },
}

/// Result of a legality check.
#[derive(Debug, Clone, Serialize)]
pub struct LegalityReport {
    /// Recorded violations (at most [`MAX_RECORDED`]).
    pub errors: Vec<LegalityError>,
    /// Exact total violation count.
    pub total_violations: u64,
    /// Peak live bits over all tiles (useful even when legal).
    pub peak_tile_bits: u64,
}

impl LegalityReport {
    /// Whether the mapping is legal.
    pub fn is_legal(&self) -> bool {
        self.total_violations == 0
    }
}

/// Per-PE peak live bits. A value lives in its producer's tile from its
/// production cycle until its last consumption; output values live until
/// the makespan (they must survive to be drained).
pub fn tile_peaks(
    graph: &DataflowGraph,
    rm: &ResolvedMapping,
    makespan: i64,
) -> HashMap<(i64, i64), u64> {
    let width = u64::from(graph.width_bits);
    // Last-use time per node.
    let mut last_use: Vec<i64> = rm.time.clone(); // at least its own cycle
    for (n, &t) in graph.nodes.iter().zip(&rm.time) {
        for &d in &n.deps {
            if t > last_use[d as usize] {
                last_use[d as usize] = t;
            }
        }
    }
    for (id, n) in graph.nodes.iter().enumerate() {
        if n.output {
            last_use[id] = makespan;
        }
    }
    // Sweep events per PE.
    let mut events: HashMap<(i64, i64), Vec<(i64, i64)>> = HashMap::new();
    for ((&pe, &t), &last) in rm.place.iter().zip(&rm.time).zip(&last_use) {
        let ev = events.entry(pe).or_default();
        ev.push((t, 1));
        ev.push((last + 1, -1));
    }
    let mut peaks = HashMap::new();
    for (pe, mut ev) in events {
        ev.sort_unstable();
        let mut live: i64 = 0;
        let mut peak: i64 = 0;
        for (_, delta) in ev {
            live += delta;
            peak = peak.max(live);
        }
        peaks.insert(pe, peak as u64 * width);
    }
    peaks
}

/// Number of PEs whose peak live footprint exceeds `capacity_bits` —
/// the storage-violation count [`check`] reports for the same peaks.
/// Exposed so the annealer and the incremental evaluator can agree on
/// storage legality without running the full checker.
pub fn storage_violation_count(peaks: &HashMap<(i64, i64), u64>, capacity_bits: u64) -> u64 {
    peaks.values().filter(|&&p| p > capacity_bits).count() as u64
}

/// Check a resolved mapping for legality on a machine.
pub fn check(
    graph: &DataflowGraph,
    rm: &ResolvedMapping,
    machine: &MachineConfig,
) -> LegalityReport {
    let mut errors = Vec::new();
    let mut total: u64 = 0;
    let record = |e: LegalityError, errors: &mut Vec<LegalityError>, total: &mut u64| {
        *total += 1;
        if errors.len() < MAX_RECORDED {
            errors.push(e);
        }
    };

    // 1. Bounds.
    let mut any_oob = false;
    for id in 0..graph.len() {
        let (x, y) = rm.place[id];
        if !machine.contains(x, y) {
            any_oob = true;
            record(
                LegalityError::PlaceOutOfBounds {
                    node: id as NodeId,
                    place: (x, y),
                },
                &mut errors,
                &mut total,
            );
        }
        if rm.time[id] < 0 {
            record(
                LegalityError::NegativeTime {
                    node: id as NodeId,
                    time: rm.time[id],
                },
                &mut errors,
                &mut total,
            );
        }
    }

    // 2. Causality (only meaningful when places are on-grid).
    if !any_oob {
        for (id, n) in graph.nodes.iter().enumerate() {
            let cons_pe = (rm.place[id].0 as u32, rm.place[id].1 as u32);
            for &d in &n.deps {
                let prod_pe = (rm.place[d as usize].0 as u32, rm.place[d as usize].1 as u32);
                let required = machine.required_gap(prod_pe, cons_pe);
                let actual = rm.time[id] - rm.time[d as usize];
                if actual < required {
                    record(
                        LegalityError::CausalityViolation {
                            producer: d,
                            consumer: id as NodeId,
                            required_gap: required,
                            actual_gap: actual,
                        },
                        &mut errors,
                        &mut total,
                    );
                }
            }
        }
    }

    // 3. Issue width.
    let mut issue: HashMap<((i64, i64), i64), u32> = HashMap::new();
    for id in 0..graph.len() {
        *issue.entry((rm.place[id], rm.time[id])).or_insert(0) += 1;
    }
    for ((pe, t), count) in issue {
        if count > machine.issue_width {
            record(
                LegalityError::IssueWidthExceeded {
                    place: pe,
                    time: t,
                    count,
                    width: machine.issue_width,
                },
                &mut errors,
                &mut total,
            );
        }
    }

    // 4. Storage.
    let peaks = tile_peaks(graph, rm, rm.makespan());
    let mut global_peak = 0u64;
    for (pe, peak) in &peaks {
        global_peak = global_peak.max(*peak);
        if *peak > machine.tile_bits {
            record(
                LegalityError::StorageExceeded {
                    place: *pe,
                    peak_bits: *peak,
                    capacity_bits: machine.tile_bits,
                },
                &mut errors,
                &mut total,
            );
        }
    }

    LegalityReport {
        errors,
        total_violations: total,
        peak_tile_bits: global_peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::CExpr;
    use crate::mapping::{Mapping, ResolvedMapping};
    use crate::value::Value;

    /// a → b chain of length 3.
    fn chain3() -> DataflowGraph {
        let mut g = DataflowGraph::new("c3", 32);
        let a = g.add_node(CExpr::konst(Value::real(1.0)), vec![], vec![0]);
        let b = g.add_node(CExpr::dep(0), vec![a], vec![1]);
        let c = g.add_node(CExpr::dep(0), vec![b], vec![2]);
        g.mark_output(c);
        g
    }

    #[test]
    fn serial_mapping_is_legal() {
        let g = chain3();
        let m = MachineConfig::linear(4);
        let rm = Mapping::serial(&g).resolve(&g, &m).unwrap();
        let rep = check(&g, &rm, &m);
        assert!(rep.is_legal(), "{:?}", rep.errors);
    }

    #[test]
    fn simultaneous_dependent_nodes_flagged() {
        let g = chain3();
        let m = MachineConfig::linear(4);
        let rm = ResolvedMapping {
            place: vec![(0, 0), (1, 0), (2, 0)],
            time: vec![0, 0, 0],
        };
        let rep = check(&g, &rm, &m);
        assert!(!rep.is_legal());
        assert!(rep
            .errors
            .iter()
            .any(|e| matches!(e, LegalityError::CausalityViolation { .. })));
    }

    #[test]
    fn wire_delay_needs_more_gap_for_distant_pes() {
        let g = chain3();
        let m = MachineConfig::linear(8);
        // b is 5 hops from a but scheduled only 1 cycle later.
        let rm = ResolvedMapping {
            place: vec![(0, 0), (5, 0), (5, 0)],
            time: vec![0, 1, 2],
        };
        let rep = check(&g, &rm, &m);
        let causality: Vec<_> = rep
            .errors
            .iter()
            .filter(|e| matches!(e, LegalityError::CausalityViolation { .. }))
            .collect();
        assert_eq!(causality.len(), 1);
        if let LegalityError::CausalityViolation {
            required_gap,
            actual_gap,
            ..
        } = causality[0]
        {
            assert_eq!(*required_gap, 5);
            assert_eq!(*actual_gap, 1);
        }
    }

    #[test]
    fn out_of_bounds_place_flagged() {
        let g = chain3();
        let m = MachineConfig::linear(2);
        let rm = ResolvedMapping {
            place: vec![(0, 0), (1, 0), (7, 0)],
            time: vec![0, 1, 2],
        };
        let rep = check(&g, &rm, &m);
        assert!(rep
            .errors
            .iter()
            .any(|e| matches!(e, LegalityError::PlaceOutOfBounds { node: 2, .. })));
    }

    #[test]
    fn negative_time_flagged() {
        let g = chain3();
        let m = MachineConfig::linear(2);
        let rm = ResolvedMapping {
            place: vec![(0, 0), (0, 0), (0, 0)],
            time: vec![-1, 0, 1],
        };
        let rep = check(&g, &rm, &m);
        assert!(rep
            .errors
            .iter()
            .any(|e| matches!(e, LegalityError::NegativeTime { node: 0, time: -1 })));
    }

    #[test]
    fn issue_width_enforced() {
        let mut g = DataflowGraph::new("wide", 32);
        for i in 0..3 {
            g.add_node(CExpr::konst(Value::real(i as f64)), vec![], vec![i]);
        }
        let m = MachineConfig::linear(2); // issue_width = 1
        let rm = ResolvedMapping {
            place: vec![(0, 0); 3],
            time: vec![5; 3],
        };
        let rep = check(&g, &rm, &m);
        assert!(rep.errors.iter().any(|e| matches!(
            e,
            LegalityError::IssueWidthExceeded {
                count: 3,
                width: 1,
                ..
            }
        )));
    }

    #[test]
    fn wider_issue_accepts_parallel_elements() {
        let mut g = DataflowGraph::new("wide", 32);
        for i in 0..3 {
            g.add_node(CExpr::konst(Value::real(i as f64)), vec![], vec![i]);
        }
        let mut m = MachineConfig::linear(2);
        m.issue_width = 4;
        let rm = ResolvedMapping {
            place: vec![(0, 0); 3],
            time: vec![5; 3],
        };
        assert!(check(&g, &rm, &m).is_legal());
    }

    #[test]
    fn storage_bound_enforced() {
        // Many values produced early on one PE, all consumed at the end.
        let mut g = DataflowGraph::new("hoard", 32);
        let n = 10usize;
        let mut ids = Vec::new();
        for i in 0..n {
            ids.push(g.add_node(CExpr::konst(Value::real(i as f64)), vec![], vec![i as i64]));
        }
        // A final consumer of all of them (fold).
        let mut acc = ids[0];
        for &id in &ids[1..] {
            acc = g.add_node(CExpr::dep(0).add(CExpr::dep(1)), vec![acc, id], vec![99]);
        }
        let mut m = MachineConfig::linear(1);
        m.issue_width = 1;
        m.tile_bits = 3 * 32; // room for only 3 live values
        let rm = Mapping::serial(&g).resolve(&g, &m).unwrap();
        let rep = check(&g, &rm, &m);
        assert!(rep
            .errors
            .iter()
            .any(|e| matches!(e, LegalityError::StorageExceeded { .. })));
        assert!(rep.peak_tile_bits > m.tile_bits);
    }

    #[test]
    fn peak_tile_bits_reported_when_legal() {
        let g = chain3();
        let m = MachineConfig::linear(4);
        let rm = Mapping::serial(&g).resolve(&g, &m).unwrap();
        let rep = check(&g, &rm, &m);
        assert!(rep.is_legal());
        // Output node lives to makespan; chain keeps ≤2 values live.
        assert!(rep.peak_tile_bits >= 32);
        assert!(rep.peak_tile_bits <= 64);
    }

    #[test]
    fn violation_counts_exact_beyond_cap() {
        // 100 dependent pairs all scheduled simultaneously → 100
        // causality violations, more than the recording cap.
        let mut g = DataflowGraph::new("big", 32);
        let mut deps = Vec::new();
        for i in 0..101 {
            let id = if i == 0 {
                g.add_node(CExpr::konst(Value::ZERO), vec![], vec![i])
            } else {
                g.add_node(CExpr::dep(0), vec![deps[i as usize - 1]], vec![i])
            };
            deps.push(id);
        }
        let mut m = MachineConfig::linear(1);
        m.issue_width = 200;
        let rm = ResolvedMapping {
            place: vec![(0, 0); 101],
            time: vec![0; 101],
        };
        let rep = check(&g, &rm, &m);
        assert_eq!(rep.total_violations, 100);
        assert_eq!(rep.errors.len(), 64);
    }
}
