//! A parser for the paper's surface syntax.
//!
//! Dally's statement closes with research questions, the first being
//! "What languages best express functions and mapping…?" — and the
//! paper itself writes one program in an implied language:
//!
//! ```text
//! Forall i, j in (0:N-1, 0:N-1)
//!   H(i,j) = min(H(i-1,j-1) + f(R[i],Q[j]), H(i-1,j)+D, H(i,j-1)+I, 0);
//! Map H(i,j) at i % P  time floor(i/P)*N + j
//! ```
//!
//! This module makes that fragment *executable as written*: a lexer and
//! recursive-descent parser that turn the text into a
//! [`Recurrence`] plus an optional affine [`Mapping`].
//!
//! Grammar (names bound through a [`ParseEnv`]):
//!
//! ```text
//! program   := forall [ map ]
//! forall    := "Forall" ident ("," ident)* "in" "(" range ("," range)* ")"
//!              ident "(" ident* ")" "=" elem ";"?
//! range     := "0" ":" const "-" "1"            // 0:N-1
//! elem      := term (("+"|"-") term)*
//! term      := factor ("*" factor)*
//! factor    := number | param | "(" elem ")"
//!            | "min"|"max" "(" elem,+ ")"       // n-ary
//!            | "f" "(" ref "," ref ")"          // match/mismatch score
//!            | LHS "(" offs,+ ")"               // self reference
//!            | ident "[" idx,+ "]"              // input read
//! map       := "Map" LHS "(" … ")" "at" idx ["," idx] "time" idx
//! idx       := affine over vars with +,-,*,%, "floor" "(" idx "/" const ")"
//! ```

use std::collections::HashMap;

use crate::affine::IdxExpr;
use crate::dataflow::InputSpec;
use crate::expr::{BinOp, ElemExpr, InputRef};
use crate::mapping::{AffineMap, Mapping, PlaceExpr};
use crate::recurrence::{Boundary, Domain, OutputSpec, Recurrence};

/// Environment binding the free names of a program.
#[derive(Debug, Clone)]
pub struct ParseEnv {
    /// Scalar parameters (`N`, `P`, `D`, `I`, …). `f`'s match/mismatch
    /// scores come from `f_eq` / `f_ne` (defaults 0 and 1).
    pub params: HashMap<String, f64>,
    /// Input tensors in declaration order: name → dims.
    pub inputs: Vec<(String, Vec<usize>)>,
    /// Boundary policy for the recurrence.
    pub boundary: Boundary,
    /// Output selection.
    pub output: OutputSpec,
    /// Datapath width.
    pub width_bits: u32,
}

impl ParseEnv {
    /// An environment with the given parameters and inputs, zero
    /// boundary, all-outputs, 32-bit datapath.
    pub fn new(params: &[(&str, f64)], inputs: &[(&str, Vec<usize>)]) -> ParseEnv {
        ParseEnv {
            params: params.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
            inputs: inputs
                .iter()
                .map(|(k, d)| (k.to_string(), d.clone()))
                .collect(),
            boundary: Boundary::Zero,
            output: OutputSpec::All,
            width_bits: 32,
        }
    }
}

/// A parsed program.
#[derive(Debug, Clone)]
pub struct Parsed {
    /// The function.
    pub recurrence: Recurrence,
    /// The mapping, if a `Map` clause was present.
    pub mapping: Option<Mapping>,
}

/// Parse errors, with a byte offset into the source.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset where the error was noticed.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

// ---------------------------------------------------------------------
// Lexer.

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(f64),
    Sym(char),
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.push((start, Tok::Ident(src[start..i].to_string())));
        } else if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.') {
                i += 1;
            }
            let n: f64 = src[start..i].parse().map_err(|_| ParseError {
                at: start,
                message: format!("bad number literal '{}'", &src[start..i]),
            })?;
            out.push((start, Tok::Num(n)));
        } else if "(),[]=+-*/%:;".contains(c) {
            out.push((i, Tok::Sym(c)));
            i += 1;
        } else {
            return Err(ParseError {
                at: i,
                message: format!("unexpected character '{c}'"),
            });
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Parser.

struct Parser<'a> {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    env: &'a ParseEnv,
    vars: Vec<String>,
    lhs: String,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn at(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |(a, _)| *a)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.at(),
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn expect_sym(&mut self, c: char) -> Result<(), ParseError> {
        match self.bump() {
            Some(Tok::Sym(s)) if s == c => Ok(()),
            other => Err(self.err(format!("expected '{c}', found {other:?}"))),
        }
    }

    fn expect_ident(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) if s == kw => Ok(()),
            other => Err(self.err(format!("expected '{kw}', found {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn eat_sym(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Sym(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn param(&self, name: &str) -> Result<f64, ParseError> {
        self.env.params.get(name).copied().ok_or_else(|| {
            self.err(format!(
                "unbound parameter '{name}' (add it to ParseEnv::params)"
            ))
        })
    }

    fn param_int(&self, name: &str) -> Result<i64, ParseError> {
        let v = self.param(name)?;
        if v.fract() != 0.0 {
            return Err(self.err(format!("parameter '{name}' = {v} must be an integer here")));
        }
        Ok(v as i64)
    }

    fn var_index(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == name)
    }

    fn input_id(&self, name: &str) -> Option<usize> {
        self.env.inputs.iter().position(|(n, _)| n == name)
    }

    // --- index (affine) expressions --------------------------------

    /// Parse an affine index expression (used in mapping clauses and
    /// input subscripts). Stops at `,`, `)`, `]`, or the keywords
    /// `time`.
    fn idx_expr(&mut self) -> Result<IdxExpr, ParseError> {
        let mut acc = self.idx_term()?;
        loop {
            if self.eat_sym('+') {
                acc = acc + self.idx_term()?;
            } else if self.eat_sym('-') {
                acc = acc - self.idx_term()?;
            } else {
                return Ok(acc);
            }
        }
    }

    fn idx_term(&mut self) -> Result<IdxExpr, ParseError> {
        let mut acc = self.idx_factor()?;
        loop {
            if self.eat_sym('*') {
                let rhs = self.idx_factor()?;
                // One side must be constant.
                acc = match (const_of(&acc), const_of(&rhs)) {
                    (_, Some(c)) => acc * c,
                    (Some(c), _) => rhs * c,
                    _ => return Err(self.err("'*' needs a constant operand (affine only)")),
                };
            } else if self.eat_sym('%') {
                let rhs = self.idx_factor()?;
                let m = const_of(&rhs).ok_or_else(|| self.err("'%' needs a constant modulus"))?;
                acc = acc % m;
            } else {
                return Ok(acc);
            }
        }
    }

    fn idx_factor(&mut self) -> Result<IdxExpr, ParseError> {
        match self.bump() {
            Some(Tok::Num(n)) => {
                if n.fract() != 0.0 {
                    return Err(self.err("index expressions are integral"));
                }
                Ok(IdxExpr::c(n as i64))
            }
            Some(Tok::Sym('(')) => {
                let e = self.idx_expr()?;
                self.expect_sym(')')?;
                Ok(e)
            }
            Some(Tok::Ident(name)) if name == "floor" => {
                // floor(expr / const)
                self.expect_sym('(')?;
                let num = self.idx_expr()?;
                self.expect_sym('/')?;
                let den = self.idx_factor()?;
                let d =
                    const_of(&den).ok_or_else(|| self.err("floor() divisor must be constant"))?;
                self.expect_sym(')')?;
                Ok(num.div(d))
            }
            Some(Tok::Ident(name)) => {
                if let Some(k) = self.var_index(&name) {
                    Ok(IdxExpr::Var(k))
                } else {
                    Ok(IdxExpr::c(self.param_int(&name)?))
                }
            }
            other => Err(self.err(format!("expected index expression, found {other:?}"))),
        }
    }

    // --- element expressions ----------------------------------------

    fn elem_expr(&mut self) -> Result<ElemExpr, ParseError> {
        let mut acc = self.elem_term()?;
        loop {
            if self.eat_sym('+') {
                acc = acc.add(self.elem_term()?);
            } else if self.eat_sym('-') {
                acc = acc.sub(self.elem_term()?);
            } else {
                return Ok(acc);
            }
        }
    }

    fn elem_term(&mut self) -> Result<ElemExpr, ParseError> {
        let mut acc = self.elem_factor()?;
        while self.eat_sym('*') {
            acc = acc.mul(self.elem_factor()?);
        }
        Ok(acc)
    }

    fn elem_factor(&mut self) -> Result<ElemExpr, ParseError> {
        match self.bump() {
            Some(Tok::Num(n)) => Ok(ElemExpr::lit(n)),
            Some(Tok::Sym('(')) => {
                let e = self.elem_expr()?;
                self.expect_sym(')')?;
                Ok(e)
            }
            Some(Tok::Ident(name)) if name == "min" || name == "max" => {
                self.expect_sym('(')?;
                let mut args = vec![self.elem_expr()?];
                while self.eat_sym(',') {
                    args.push(self.elem_expr()?);
                }
                self.expect_sym(')')?;
                if name == "min" {
                    Ok(ElemExpr::min_of(args))
                } else {
                    let mut acc = args.pop().expect("nonempty");
                    while let Some(e) = args.pop() {
                        acc = e.max(acc);
                    }
                    Ok(acc)
                }
            }
            Some(Tok::Ident(name)) if name == "f" => {
                // f(A[..], B[..]) — the paper's scoring function.
                self.expect_sym('(')?;
                let a = self.elem_factor()?;
                self.expect_sym(',')?;
                let b = self.elem_factor()?;
                self.expect_sym(')')?;
                let eq = self.env.params.get("f_eq").copied().unwrap_or(0.0);
                let ne = self.env.params.get("f_ne").copied().unwrap_or(1.0);
                Ok(ElemExpr::Bin(
                    BinOp::Match { eq, ne },
                    Box::new(a),
                    Box::new(b),
                ))
            }
            Some(Tok::Ident(name)) if name == self.lhs => {
                // Self reference: H(i-1, j) — each arg must be var_k ± c.
                self.expect_sym('(')?;
                let mut offs = Vec::new();
                for k in 0..self.vars.len() {
                    if k > 0 {
                        self.expect_sym(',')?;
                    }
                    let e = self.idx_expr()?;
                    let off = self.offset_of(&e, k)?;
                    offs.push(off);
                }
                self.expect_sym(')')?;
                Ok(ElemExpr::SelfRef(offs))
            }
            Some(Tok::Ident(name)) => {
                if self.eat_sym('[') {
                    // Input read.
                    let id = self
                        .input_id(&name)
                        .ok_or_else(|| self.err(format!("undeclared input '{name}'")))?;
                    let mut index = vec![self.idx_expr()?];
                    while self.eat_sym(',') {
                        index.push(self.idx_expr()?);
                    }
                    self.expect_sym(']')?;
                    Ok(ElemExpr::Input(InputRef { input: id, index }))
                } else {
                    // A scalar parameter used as a constant.
                    Ok(ElemExpr::lit(self.param(&name)?))
                }
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }

    /// Extract the constant offset of `e` relative to variable `k`:
    /// accepts `i_k`, `i_k + c`, `i_k - c` (in any association the
    /// affine parser produced).
    fn offset_of(&self, e: &IdxExpr, k: usize) -> Result<i64, ParseError> {
        fn split(e: &IdxExpr) -> Option<(usize, i64)> {
            match e {
                IdxExpr::Var(v) => Some((*v, 0)),
                IdxExpr::Add(a, b) => match (split(a), const_of(b)) {
                    (Some((v, o)), Some(c)) => Some((v, o + c)),
                    _ => match (const_of(a), split(b)) {
                        (Some(c), Some((v, o))) => Some((v, o + c)),
                        _ => None,
                    },
                },
                IdxExpr::Sub(a, b) => match (split(a), const_of(b)) {
                    (Some((v, o)), Some(c)) => Some((v, o - c)),
                    _ => None,
                },
                _ => None,
            }
        }
        match split(e) {
            Some((v, off)) if v == k => Ok(off),
            _ => Err(self.err(format!(
                "self-reference argument {k} must be '{} ± const'",
                self.vars[k]
            ))),
        }
    }

    // --- clauses ------------------------------------------------------

    fn forall(&mut self) -> Result<Recurrence, ParseError> {
        self.expect_ident("Forall")?;
        let mut vars = vec![self.ident()?];
        while self.eat_sym(',') {
            vars.push(self.ident()?);
        }
        self.vars = vars;
        self.expect_ident("in")?;
        self.expect_sym('(')?;
        let mut extents = Vec::new();
        for k in 0..self.vars.len() {
            if k > 0 {
                self.expect_sym(',')?;
            }
            // 0 : <idx expr, constant>  — canonical "0:N-1".
            match self.bump() {
                Some(Tok::Num(0.0)) => {}
                other => return Err(self.err(format!("range must start at 0, found {other:?}"))),
            }
            self.expect_sym(':')?;
            let hi = self.idx_expr()?;
            let hi = const_of(&hi)
                .ok_or_else(|| self.err("range bound must be a constant expression"))?;
            extents.push((hi + 1).max(0) as usize);
        }
        self.expect_sym(')')?;

        // LHS: H(i, j)
        let lhs = self.ident()?;
        self.lhs = lhs.clone();
        self.expect_sym('(')?;
        for k in 0..self.vars.len() {
            if k > 0 {
                self.expect_sym(',')?;
            }
            let v = self.ident()?;
            if Some(k) != self.var_index(&v) {
                return Err(self.err(format!(
                    "LHS index {k} must be '{}', found '{v}'",
                    self.vars[k]
                )));
            }
        }
        self.expect_sym(')')?;
        self.expect_sym('=')?;
        let expr = self.elem_expr()?;
        let _ = self.eat_sym(';');

        Ok(Recurrence {
            name: lhs,
            domain: Domain { extents },
            expr,
            inputs: self
                .env
                .inputs
                .iter()
                .map(|(n, d)| InputSpec {
                    name: n.clone(),
                    dims: d.clone(),
                })
                .collect(),
            width_bits: self.env.width_bits,
            boundary: self.env.boundary,
            output: self.env.output,
        })
    }

    fn map_clause(&mut self) -> Result<Mapping, ParseError> {
        self.expect_ident("Map")?;
        let name = self.ident()?;
        if name != self.lhs {
            return Err(self.err(format!(
                "Map target '{name}' is not the tensor '{}'",
                self.lhs
            )));
        }
        self.expect_sym('(')?;
        for k in 0..self.vars.len() {
            if k > 0 {
                self.expect_sym(',')?;
            }
            self.ident()?;
        }
        self.expect_sym(')')?;
        self.expect_ident("at")?;
        let x = self.idx_expr()?;
        let y = if self.eat_sym(',') {
            self.idx_expr()?
        } else {
            IdxExpr::c(0)
        };
        self.expect_ident("time")?;
        let time = self.idx_expr()?;
        Ok(Mapping::Affine(AffineMap {
            place: PlaceExpr::Grid { x, y },
            time,
        }))
    }
}

/// Constant-fold an index expression with no variables.
fn const_of(e: &IdxExpr) -> Option<i64> {
    e.max_var().is_none().then(|| e.eval(&[]))
}

/// Parse a bare index expression (mapping-clause syntax) with the
/// given variable names bound to `Var(0..)`. Useful for tests, REPLs,
/// and property checks of the syntax.
pub fn parse_idx_expr(src: &str, vars: &[&str], env: &ParseEnv) -> Result<IdxExpr, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        env,
        vars: vars.iter().map(|s| s.to_string()).collect(),
        lhs: String::new(),
    };
    let e = p.idx_expr()?;
    if p.peek().is_some() {
        return Err(p.err("trailing input after index expression"));
    }
    Ok(e)
}

/// Parse a program (a `Forall` clause, optionally followed by a `Map`
/// clause) against an environment.
pub fn parse(src: &str, env: &ParseEnv) -> Result<Parsed, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        env,
        vars: Vec::new(),
        lhs: String::new(),
    };
    let recurrence = p.forall()?;
    recurrence
        .validate()
        .map_err(|e| p.err(format!("invalid recurrence: {e}")))?;
    let mapping = if p.peek().is_some() {
        Some(p.map_clause()?)
    } else {
        None
    };
    if p.peek().is_some() {
        return Err(p.err("trailing input after program"));
    }
    Ok(Parsed {
        recurrence,
        mapping,
    })
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // matrix-style i/j indexing reads clearest in checks
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::value::Value;

    /// The paper's fragment, verbatim (modulo the hyphenation of its
    /// two-column layout).
    const PAPER: &str = "\
Forall i, j in (0:N-1, 0:N-1)
  H(i,j) = min(H(i-1, j-1) + f(R[i],Q[j]), H(i-1,j)+D, H(i,j-1)+ I, 0) ;
Map H(i,j) at i % P  time floor(i/P)*N + j";

    fn env(n: usize, p: i64) -> ParseEnv {
        let mut e = ParseEnv::new(
            &[("N", n as f64), ("P", p as f64), ("D", 1.0), ("I", 1.0)],
            &[("R", vec![n]), ("Q", vec![n])],
        );
        e.output = OutputSpec::LastElement;
        e
    }

    #[test]
    fn parses_the_papers_fragment_verbatim() {
        let n = 12;
        let parsed = parse(PAPER, &env(n, 4)).unwrap();
        assert_eq!(parsed.recurrence.domain.extents, vec![n, n]);
        assert!(parsed.mapping.is_some());

        // Parsed program computes the same values as the hand-built one.
        let g = parsed.recurrence.elaborate().unwrap();
        let r = b"ACGTACGTACGT";
        let q = b"AGGTACGTTCGA";
        let to_vals = |s: &[u8]| {
            s.iter()
                .map(|&c| Value::real(f64::from(c)))
                .collect::<Vec<_>>()
        };
        let vals = g.eval(&[to_vals(r), to_vals(q)]);

        // Reference: the paper's local form via the kernel crate's
        // logic, re-derived inline (min with 0 floor is env-boundary
        // dependent; here boundary = Zero + floor term present).
        // Compare against a direct DP with the same semantics.
        let mut h = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in 0..n {
                let diag = if i > 0 && j > 0 { h[i - 1][j - 1] } else { 0.0 };
                let up = if i > 0 { h[i - 1][j] } else { 0.0 };
                let left = if j > 0 { h[i][j - 1] } else { 0.0 };
                let fv = if r[i] == q[j] { 0.0 } else { 1.0 };
                h[i][j] = (diag + fv).min(up + 1.0).min(left + 1.0).min(0.0);
            }
        }
        for i in 0..n {
            for j in 0..n {
                let id = parsed
                    .recurrence
                    .domain
                    .flatten(&[i as i64, j as i64])
                    .unwrap();
                assert!((vals[id].re - h[i][j]).abs() < 1e-9, "H({i},{j})");
            }
        }
    }

    #[test]
    fn parsed_mapping_equals_hand_built_literal() {
        let n = 8;
        let p = 4;
        let parsed = parse(PAPER, &env(n, p)).unwrap();
        let g = parsed.recurrence.elaborate().unwrap();
        let machine = MachineConfig::linear(p as u32);
        let rm = parsed.mapping.unwrap().resolve(&g, &machine).unwrap();
        // Spot-check the paper's formulas: place = i % P, time =
        // floor(i/P)*N + j.
        let id = parsed.recurrence.domain.flatten(&[5, 3]).unwrap();
        assert_eq!(rm.place[id], (5 % p, 0));
        assert_eq!(rm.time[id], (5 / p) * n as i64 + 3);
    }

    #[test]
    fn parses_a_scan() {
        let env = ParseEnv::new(&[("N", 6.0)], &[("X", vec![6])]);
        let parsed = parse("Forall i in (0:N-1) S(i) = S(i-1) + X[i]", &env).unwrap();
        let g = parsed.recurrence.elaborate().unwrap();
        let x: Vec<Value> = (1..=6).map(|v| Value::real(v as f64)).collect();
        let vals = g.eval(&[x]);
        assert_eq!(vals.last().unwrap().re, 21.0);
        assert!(parsed.mapping.is_none());
    }

    #[test]
    fn unbound_parameter_reported() {
        let env = ParseEnv::new(&[], &[]);
        let err = parse("Forall i in (0:N-1) S(i) = S(i-1)", &env).unwrap_err();
        assert!(err.message.contains("unbound parameter 'N'"), "{err}");
    }

    #[test]
    fn undeclared_input_reported() {
        let env = ParseEnv::new(&[("N", 4.0)], &[]);
        let err = parse("Forall i in (0:N-1) S(i) = Z[i]", &env).unwrap_err();
        assert!(err.message.contains("undeclared input 'Z'"), "{err}");
    }

    #[test]
    fn ill_founded_self_reference_reported() {
        let env = ParseEnv::new(&[("N", 4.0)], &[]);
        let err = parse("Forall i in (0:N-1) S(i) = S(i+1)", &env).unwrap_err();
        assert!(err.message.contains("invalid recurrence"), "{err}");
    }

    #[test]
    fn bad_self_ref_argument_reported() {
        let env = ParseEnv::new(&[("N", 4.0)], &[]);
        let err = parse("Forall i, j in (0:N-1, 0:N-1) S(i,j) = S(j, i)", &env).unwrap_err();
        assert!(err.message.contains("must be"), "{err}");
    }

    #[test]
    fn two_dimensional_place() {
        let env = ParseEnv::new(&[("N", 8.0), ("P", 2.0)], &[]);
        let parsed = parse(
            "Forall i, j in (0:N-1, 0:N-1) H(i,j) = H(i-1,j) + 1 Map H(i,j) at j % P, i % P time i*N + j",
            &env,
        )
        .unwrap();
        let g = parsed.recurrence.elaborate().unwrap();
        let machine = MachineConfig::n5(2, 2);
        let rm = parsed.mapping.unwrap().resolve(&g, &machine).unwrap();
        let id = parsed.recurrence.domain.flatten(&[3, 1]).unwrap();
        assert_eq!(rm.place[id], (1, 1));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let env = ParseEnv::new(&[("N", 4.0)], &[]);
        let err = parse("Forall i in (0:N-1) S(i) = 1 ; nonsense", &env).unwrap_err();
        assert!(
            err.message.contains("Map") || err.message.contains("expected"),
            "{err}"
        );
    }
}
