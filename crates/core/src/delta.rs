//! Incremental cost/legality evaluation: O(Δ) per placement move.
//!
//! The annealer in [`crate::search`] refines a mapping one single-node
//! placement move at a time, but re-deriving the schedule and re-walking
//! the whole graph per move costs O(|V|+|E|) — graph-sized work for a
//! cone-sized change. [`DeltaEvaluator`] caches everything the full
//! [`Evaluator`](crate::cost::Evaluator) derives from a placement and
//! repairs only what a move can touch:
//!
//! * **Times** (list schedule): node ids are topological (`deps[k] < id`)
//!   and the retime rule consults only *smaller-id* nodes (producers,
//!   and same-PE occupancy in id order). Processing the dirty set with a
//!   min-heap in increasing id order therefore reaches the exact
//!   [`retime`](crate::search::retime) fixpoint with each node
//!   recomputed at most once. The dirty seed for moving node `n` is
//!   `{n} ∪ consumers(n) ∪ {ids > n on the source or destination PE}`;
//!   a node whose time changes re-dirties its consumers and its same-PE
//!   successors.
//! * **Ledger** (energy/traffic): per-node contributions
//!   ([`NodeCost`]) are time-independent, and a move changes only the
//!   moved node's own contribution and its producers' def→use messages
//!   — `deg(n) + 1` leaves of a fixed-shape reduction tree
//!   ([`CostTree`]), refreshed in O(deg·log V). Because the full
//!   evaluator sums through the *same* tree, totals agree bit-for-bit.
//! * **Storage legality**: per-PE peak live bits are re-swept only for
//!   the source/destination PEs, the PEs of retimed nodes, and the PEs
//!   of values whose last use moved. Output lifetimes use a far-future
//!   sentinel instead of the makespan — the peak of an interval stack is
//!   invariant to any right endpoint past the last start — so peaks
//!   never depend on makespan changes.
//! * **Aggregates**: makespan and the global peak are maxima over
//!   multisets kept in `BTreeMap` histograms; PEs-used is the size of
//!   the PE→nodes index; the storage-violation count is maintained as
//!   peaks change. [`DeltaEvaluator::report`] is therefore O(1)-ish
//!   (one tree-root read plus map lookups).
//!
//! In debug builds every [`DeltaEvaluator::apply_move`] re-derives the
//! full schedule and report and asserts bit-exact equality
//! ([`DeltaEvaluator::assert_parity`]); property tests in the workspace
//! root drive random move sequences through the same assertion.
//!
//! Every cached field is a pure function of the placement vector, so
//! undoing a move can always fall back to applying the reverse move;
//! [`DeltaEvaluator::undo`] is cheaper — each move journals the values
//! it overwrites, and replaying the journal in reverse restores the
//! prior state with no scheduling, sweeping, or sorting at all. The
//! annealer uses it to make rejected proposals nearly free.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

use crate::cost::{CostReport, CostTree, Evaluator, NodeCost, OffchipTotals};
use crate::dataflow::{DataflowGraph, NodeId};
use crate::machine::MachineConfig;
use crate::mapping::ResolvedMapping;
use crate::search::FigureOfMerit;

/// Stand-in for "lives forever" in lifetime sweeps. Any value past the
/// last production cycle yields the same peak; this one also never
/// overflows `+ 1`.
const FAR_FUTURE: i64 = i64::MAX / 4;

/// One recorded mutation of [`DeltaEvaluator`] state, with the value
/// it replaced — replaying a move's entries in reverse restores the
/// exact prior state without re-running any scheduling.
#[derive(Debug, Clone, Copy)]
enum UndoEntry {
    Place { node: usize, pe: (i64, i64) },
    RemovedFromPe { pe: (i64, i64), id: NodeId },
    InsertedToPe { pe: (i64, i64), id: NodeId },
    Time { id: NodeId, t: i64 },
    LastUse { id: NodeId, t: i64 },
    Peak { pe: (i64, i64), v: Option<u64> },
    Leaf { id: NodeId, cost: NodeCost },
}

fn hist_add<K: Ord>(h: &mut BTreeMap<K, u32>, k: K) {
    *h.entry(k).or_insert(0) += 1;
}

fn hist_remove<K: Ord + std::fmt::Debug>(h: &mut BTreeMap<K, u32>, k: K) {
    match h.get_mut(&k) {
        Some(c) if *c > 1 => *c -= 1,
        Some(_) => {
            h.remove(&k);
        }
        None => panic!("histogram underflow at key {k:?}"),
    }
}

/// Incremental evaluator over single-node placement moves.
///
/// Holds a placement (times always the [`retime`](crate::search::retime)
/// list schedule of that placement) plus every derived quantity the full
/// evaluator would compute, and repairs them in cone-sized work per
/// [`Self::apply_move`]. [`Self::report`] is bit-identical to
/// `Evaluator::evaluate` on [`Self::mapping`], by construction and by
/// debug-mode assertion.
pub struct DeltaEvaluator<'e, 'a> {
    ev: &'e Evaluator<'a>,
    graph: &'a DataflowGraph,
    machine: &'a MachineConfig,
    consumers: Vec<Vec<NodeId>>,
    place: Vec<(i64, i64)>,
    time: Vec<i64>,
    /// max(own time, consumer times); outputs are *not* extended here —
    /// the sweep substitutes [`FAR_FUTURE`] for them.
    last_use: Vec<i64>,
    /// Node ids per PE, ascending. No empty lists are kept.
    pe_nodes: HashMap<(i64, i64), Vec<NodeId>>,
    /// Multiset of node times; max key + 1 = makespan.
    time_hist: BTreeMap<i64, u32>,
    /// Peak live bits per occupied PE.
    peaks: HashMap<(i64, i64), u64>,
    /// Multiset of per-PE peaks; max key = global peak.
    peak_hist: BTreeMap<u64, u32>,
    /// PEs whose peak exceeds `machine.tile_bits`.
    over_capacity: u64,
    tree: CostTree,
    off: OffchipTotals,
    in_heap: Vec<bool>,
    /// Mutations of the most recent [`Self::apply_move`], for
    /// [`Self::undo`]. Cleared at the start of each move.
    journal: Vec<UndoEntry>,
    paranoid: bool,
}

impl<'e, 'a> DeltaEvaluator<'e, 'a> {
    /// Build from an initial placement (all places must be on-grid).
    /// Times are derived by list scheduling, exactly as
    /// [`crate::search::retime`] would.
    pub fn new(ev: &'e Evaluator<'a>, init_places: &[(i64, i64)]) -> Self {
        let graph = ev.graph();
        let machine = ev.machine();
        assert_eq!(
            init_places.len(),
            graph.len(),
            "placement length must match graph"
        );
        for &(x, y) in init_places {
            assert!(machine.contains(x, y), "initial place ({x},{y}) off-grid");
        }
        let rm = crate::search::retime(graph, init_places, machine);
        let consumers = graph.consumers();

        let mut last_use = rm.time.clone();
        for (id, n) in graph.nodes.iter().enumerate() {
            for &d in &n.deps {
                if rm.time[id] > last_use[d as usize] {
                    last_use[d as usize] = rm.time[id];
                }
            }
        }

        let mut pe_nodes: HashMap<(i64, i64), Vec<NodeId>> = HashMap::new();
        for (id, &pe) in rm.place.iter().enumerate() {
            pe_nodes.entry(pe).or_default().push(id as NodeId);
        }

        let mut time_hist = BTreeMap::new();
        for &t in &rm.time {
            hist_add(&mut time_hist, t);
        }

        let leaves: Vec<NodeCost> = (0..graph.len())
            .map(|id| ev.node_cost(id, &rm.place, &consumers))
            .collect();
        let tree = CostTree::build(&leaves);
        let off = ev.offchip_totals();
        let n = graph.len();

        let mut this = DeltaEvaluator {
            ev,
            graph,
            machine,
            consumers,
            place: rm.place,
            time: rm.time,
            last_use,
            pe_nodes,
            time_hist,
            peaks: HashMap::new(),
            peak_hist: BTreeMap::new(),
            over_capacity: 0,
            tree,
            off,
            in_heap: vec![false; n],
            journal: Vec::new(),
            paranoid: true,
        };
        let pes: Vec<(i64, i64)> = this.pe_nodes.keys().copied().collect();
        for pe in pes {
            this.refresh_peak(pe);
        }
        this.journal.clear();
        this
    }

    /// Disable (or re-enable) the per-move full-parity assertion that
    /// runs in debug builds. Useful for debug-build throughput tests;
    /// release builds never run the assertion either way.
    pub fn with_paranoia(mut self, on: bool) -> Self {
        self.paranoid = on;
        self
    }

    /// Current place of a node.
    pub fn place_of(&self, node: usize) -> (i64, i64) {
        self.place[node]
    }

    /// The current mapping (places + list-scheduled times).
    pub fn mapping(&self) -> ResolvedMapping {
        ResolvedMapping {
            place: self.place.clone(),
            time: self.time.clone(),
        }
    }

    /// Number of PEs whose peak live bits exceed the machine's tile
    /// capacity — the same count [`crate::legality::check`] reports as
    /// `StorageExceeded` violations.
    pub fn storage_violations(&self) -> u64 {
        self.over_capacity
    }

    /// The current cost report, bit-identical to running the full
    /// evaluator on [`Self::mapping`].
    pub fn report(&self) -> CostReport {
        let cycles = self.time_hist.keys().next_back().map_or(0, |&t| t + 1);
        let peak = self.peak_hist.keys().next_back().copied().unwrap_or(0);
        self.ev.assemble(
            self.tree.total(),
            &self.off,
            cycles,
            peak,
            self.pe_nodes.len(),
        )
    }

    /// Score of the current mapping under `fom` (lower is better) —
    /// identical arithmetic to `fom.score(&self.report())`.
    pub fn score(&self, fom: FigureOfMerit) -> f64 {
        fom.score(&self.report())
    }

    /// Move `node` to `new_pe` (must be on-grid) and repair all cached
    /// state. Work is proportional to the retimed cone, the moved
    /// node's degree, and the affected PEs' populations — not the graph.
    ///
    /// To undo, apply the reverse move: all state is a pure function of
    /// the placement.
    pub fn apply_move(&mut self, node: usize, new_pe: (i64, i64)) {
        assert!(node < self.graph.len(), "node out of range");
        assert!(
            self.machine.contains(new_pe.0, new_pe.1),
            "move target {new_pe:?} off-grid"
        );
        self.journal.clear();
        let old_pe = self.place[node];
        if old_pe == new_pe {
            return;
        }
        let id = node as NodeId;

        // Membership: the PE→nodes index drives occupancy, peaks, and
        // the pes_used count.
        let mut heap: BinaryHeap<Reverse<NodeId>> = BinaryHeap::new();
        {
            let t_old = self.time[node];
            let list = self.pe_nodes.get_mut(&old_pe).expect("node on its PE");
            let pos = list.binary_search(&id).expect("node on its PE");
            list.remove(pos);
            // Later source-PE nodes may now schedule earlier — but only
            // those at or past the vacated slot: a node's gap scan never
            // consults slots above its own scheduled time.
            for &j in &list[pos..] {
                if self.time[j as usize] >= t_old {
                    self.in_heap[j as usize] = true;
                    heap.push(Reverse(j));
                }
            }
            if list.is_empty() {
                self.pe_nodes.remove(&old_pe);
            }
            self.journal
                .push(UndoEntry::RemovedFromPe { pe: old_pe, id });
        }
        {
            let list = self.pe_nodes.entry(new_pe).or_default();
            let pos = list
                .binary_search(&id)
                .expect_err("node cannot already be on target PE");
            list.insert(pos, id);
            self.journal
                .push(UndoEntry::InsertedToPe { pe: new_pe, id });
            // Later destination-PE nodes are dirtied when the moved
            // node pops (first, by id order) and its new slot is known
            // — seeding them all here would over-approximate.
        }
        self.place[node] = new_pe;
        self.journal.push(UndoEntry::Place { node, pe: old_pe });

        // The moved node reschedules; its consumers' wire-delay gaps
        // changed even if its time does not.
        if !self.in_heap[node] {
            self.in_heap[node] = true;
            heap.push(Reverse(id));
        }
        for &c in &self.consumers[node] {
            if !self.in_heap[c as usize] {
                self.in_heap[c as usize] = true;
                heap.push(Reverse(c));
            }
        }

        // Retime the dirty set in increasing id order. Every quantity a
        // node's schedule consults (producer times, smaller-id same-PE
        // occupancy) is final by the time it pops, so one pass reaches
        // the list-schedule fixpoint.
        //
        // Occupancy is shared across pops on the same PE: pops arrive
        // in increasing id order (pushes only ever target ids above the
        // current pop), so each PE's slot multiset can be extended with
        // finalized times as a cursor walks up its membership list,
        // instead of re-collecting and re-sorting per pop.
        #[derive(Default)]
        struct Occ {
            cursor: usize,
            slots: Vec<i64>,
        }
        let mut occ: HashMap<(i64, i64), Occ> = HashMap::new();
        let mut dirty_pes: Vec<(i64, i64)> = vec![old_pe, new_pe];
        while let Some(Reverse(i)) = heap.pop() {
            let iu = i as usize;
            self.in_heap[iu] = false;
            let t_new = {
                let pe = self.place[iu];
                let o = occ.entry(pe).or_default();
                let list = &self.pe_nodes[&pe];
                while o.cursor < list.len() && list[o.cursor] < i {
                    let s = self.time[list[o.cursor] as usize];
                    let p = o.slots.partition_point(|&x| x < s);
                    debug_assert!(
                        o.slots.get(p) != Some(&s),
                        "finalized same-PE times are pairwise distinct"
                    );
                    o.slots.insert(p, s);
                    o.cursor += 1;
                }
                self.schedule_time_in(iu, &o.slots)
            };
            let t_old = self.time[iu];
            if iu == node {
                // The moved node's slot is new on this PE: later nodes
                // at or past it must reschedule around it, even when
                // the moved node's own time did not change.
                if let Some(list) = self.pe_nodes.get(&self.place[iu]) {
                    let pos = list.partition_point(|&j| j <= i);
                    for &j in &list[pos..] {
                        if self.time[j as usize] >= t_new && !self.in_heap[j as usize] {
                            self.in_heap[j as usize] = true;
                            heap.push(Reverse(j));
                        }
                    }
                }
            }
            if t_new == t_old {
                continue;
            }
            hist_remove(&mut self.time_hist, t_old);
            hist_add(&mut self.time_hist, t_new);
            self.time[iu] = t_new;
            self.journal.push(UndoEntry::Time { id: i, t: t_old });
            dirty_pes.push(self.place[iu]);

            // Ripple: same-PE successors at or past the perturbed slot
            // range (slots above a node's own time are never consulted
            // by its gap scan), and consumers.
            let lo = t_old.min(t_new);
            if let Some(list) = self.pe_nodes.get(&self.place[iu]) {
                let pos = list.partition_point(|&j| j <= i);
                for &j in &list[pos..] {
                    if self.time[j as usize] >= lo && !self.in_heap[j as usize] {
                        self.in_heap[j as usize] = true;
                        heap.push(Reverse(j));
                    }
                }
            }
            for &c in &self.consumers[iu] {
                if !self.in_heap[c as usize] {
                    self.in_heap[c as usize] = true;
                    heap.push(Reverse(c));
                }
            }

            // A time change moves this value's production and possibly
            // the last use of its operands.
            let lu_self = self.recompute_last_use(iu);
            if lu_self != self.last_use[iu] {
                self.journal.push(UndoEntry::LastUse {
                    id: i,
                    t: self.last_use[iu],
                });
                self.last_use[iu] = lu_self;
            }
            for k in 0..self.graph.nodes[iu].deps.len() {
                let du = self.graph.nodes[iu].deps[k] as usize;
                let lu = self.recompute_last_use(du);
                if lu != self.last_use[du] {
                    self.journal.push(UndoEntry::LastUse {
                        id: du as NodeId,
                        t: self.last_use[du],
                    });
                    self.last_use[du] = lu;
                    dirty_pes.push(self.place[du]);
                }
            }
        }

        // Re-cost the moved node (its reads and the messages it sends)
        // and its producers (the messages they send to it).
        self.journal.push(UndoEntry::Leaf {
            id,
            cost: self.tree.leaf(node),
        });
        self.tree
            .update(node, self.ev.node_cost(node, &self.place, &self.consumers));
        for k in 0..self.graph.nodes[node].deps.len() {
            let du = self.graph.nodes[node].deps[k] as usize;
            self.journal.push(UndoEntry::Leaf {
                id: du as NodeId,
                cost: self.tree.leaf(du),
            });
            self.tree
                .update(du, self.ev.node_cost(du, &self.place, &self.consumers));
        }

        // Re-sweep peaks only where lifetimes could have moved.
        dirty_pes.sort_unstable();
        dirty_pes.dedup();
        for pe in dirty_pes {
            self.refresh_peak(pe);
        }

        if cfg!(debug_assertions) && self.paranoid {
            self.assert_parity();
        }
    }

    /// Revert the most recent [`Self::apply_move`] by replaying its
    /// journal in reverse: every entry restores the exact value the
    /// move overwrote, so no schedule, lifetime, or peak is recomputed.
    /// A second `undo` (or one after a no-op move) is a no-op.
    pub fn undo(&mut self) {
        while let Some(e) = self.journal.pop() {
            match e {
                UndoEntry::Place { node, pe } => self.place[node] = pe,
                UndoEntry::RemovedFromPe { pe, id } => {
                    let list = self.pe_nodes.entry(pe).or_default();
                    let pos = list
                        .binary_search(&id)
                        .expect_err("undo: node already back on PE");
                    list.insert(pos, id);
                }
                UndoEntry::InsertedToPe { pe, id } => {
                    let list = self.pe_nodes.get_mut(&pe).expect("undo: PE exists");
                    let pos = list.binary_search(&id).expect("undo: node on PE");
                    list.remove(pos);
                    if list.is_empty() {
                        self.pe_nodes.remove(&pe);
                    }
                }
                UndoEntry::Time { id, t } => {
                    let iu = id as usize;
                    hist_remove(&mut self.time_hist, self.time[iu]);
                    hist_add(&mut self.time_hist, t);
                    self.time[iu] = t;
                }
                UndoEntry::LastUse { id, t } => self.last_use[id as usize] = t,
                UndoEntry::Peak { pe, v } => {
                    let cap = self.machine.tile_bits;
                    if let Some(c) = self.peaks.remove(&pe) {
                        hist_remove(&mut self.peak_hist, c);
                        if c > cap {
                            self.over_capacity -= 1;
                        }
                    }
                    if let Some(x) = v {
                        hist_add(&mut self.peak_hist, x);
                        if x > cap {
                            self.over_capacity += 1;
                        }
                        self.peaks.insert(pe, x);
                    }
                }
                UndoEntry::Leaf { id, cost } => self.tree.update(id as usize, cost),
            }
        }
        if cfg!(debug_assertions) && self.paranoid {
            self.assert_parity();
        }
    }

    /// The list-schedule time of `i` given current producer times and
    /// the sorted occupied slots of smaller-id same-PE nodes — the same
    /// rule as [`crate::search::retime`], node-at-a-time. The linear
    /// "advance past each occupied slot" scan is replaced by a binary
    /// search for the first gap: with pairwise-distinct slots (an
    /// invariant of the schedule rule — every slot was itself picked as
    /// a first gap) the dense prefix `slots[lo + j] == ready + j` is
    /// exactly the set of slots the scan would step over.
    fn schedule_time_in(&self, i: usize, slots: &[i64]) -> i64 {
        let n = &self.graph.nodes[i];
        let pe = self.place[i];
        let pe_u = (pe.0 as u32, pe.1 as u32);
        let mut ready = 0i64;
        for &d in &n.deps {
            let prod = self.place[d as usize];
            let prod_u = (prod.0 as u32, prod.1 as u32);
            ready = ready.max(self.time[d as usize] + self.machine.required_gap(prod_u, pe_u));
        }
        let lo = slots.partition_point(|&s| s < ready);
        let m = slots.len() - lo;
        let (mut left, mut right) = (0usize, m);
        while left < right {
            let mid = left + (right - left) / 2;
            if slots[lo + mid] == ready + mid as i64 {
                left = mid + 1;
            } else {
                right = mid;
            }
        }
        ready + left as i64
    }

    fn recompute_last_use(&self, id: usize) -> i64 {
        let mut lu = self.time[id];
        for &c in &self.consumers[id] {
            lu = lu.max(self.time[c as usize]);
        }
        lu
    }

    /// Re-sweep one PE's peak live bits and fold the change into the
    /// peak histogram and the over-capacity count.
    fn refresh_peak(&mut self, pe: (i64, i64)) {
        let new = self.pe_nodes.get(&pe).map(|list| {
            let width = u64::from(self.graph.width_bits);
            let mut events: Vec<(i64, i64)> = Vec::with_capacity(list.len() * 2);
            for &j in list {
                let ju = j as usize;
                let last = if self.graph.nodes[ju].output {
                    FAR_FUTURE
                } else {
                    self.last_use[ju]
                };
                events.push((self.time[ju], 1));
                events.push((last + 1, -1));
            }
            events.sort_unstable();
            let mut live = 0i64;
            let mut peak = 0i64;
            for (_, d) in events {
                live += d;
                peak = peak.max(live);
            }
            peak as u64 * width
        });
        let old = self.peaks.get(&pe).copied();
        if old == new {
            return;
        }
        self.journal.push(UndoEntry::Peak { pe, v: old });
        let cap = self.machine.tile_bits;
        if let Some(o) = old {
            hist_remove(&mut self.peak_hist, o);
            if o > cap {
                self.over_capacity -= 1;
            }
            self.peaks.remove(&pe);
        }
        if let Some(v) = new {
            hist_add(&mut self.peak_hist, v);
            if v > cap {
                self.over_capacity += 1;
            }
            self.peaks.insert(pe, v);
        }
    }

    /// Assert bit-exact agreement with the full pipeline: times against
    /// [`crate::search::retime`], the report against
    /// `Evaluator::evaluate`, and the storage-violation count against
    /// [`crate::legality::tile_peaks`]. O(|V|+|E|) — runs automatically
    /// after every move in debug builds (see [`Self::with_paranoia`]).
    pub fn assert_parity(&self) {
        let rm = crate::search::retime(self.graph, &self.place, self.machine);
        assert_eq!(
            rm.time, self.time,
            "incremental retime departed from the full list schedule"
        );
        let full = self.ev.evaluate(&rm);
        let mine = self.report();
        assert_eq!(full, mine, "incremental report != full evaluate");
        let peaks = crate::legality::tile_peaks(self.graph, &rm, rm.makespan());
        assert_eq!(
            crate::legality::storage_violation_count(&peaks, self.machine.tile_bits),
            self.over_capacity,
            "incremental storage-violation count != full legality sweep"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::CExpr;
    use crate::legality::{check, LegalityError};
    use crate::search::retime;
    use crate::value::Value;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// A layered random DAG: `n` nodes, each depending on up to two
    /// earlier ones.
    fn random_dag(n: u32, seed: u64) -> DataflowGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = DataflowGraph::new("dag", 32);
        for i in 0..n {
            let ndeps = rng.random_range(0..=2.min(i));
            let mut deps = Vec::new();
            for _ in 0..ndeps {
                deps.push(rng.random_range(0..i));
            }
            deps.sort_unstable();
            deps.dedup();
            let expr = match deps.len() {
                0 => CExpr::konst(Value::real(1.0)),
                1 => CExpr::dep(0),
                _ => CExpr::dep(0).add(CExpr::dep(1)),
            };
            let id = g.add_node(expr, deps, vec![i as i64]);
            if i % 7 == 0 {
                g.mark_output(id);
            }
        }
        g
    }

    #[test]
    fn random_moves_stay_bit_exact() {
        let g = random_dag(60, 3);
        let m = MachineConfig::n5(3, 3);
        let ev = Evaluator::new(&g, &m);
        let init = crate::search::default_mapper(&g, &m);
        let mut delta = DeltaEvaluator::new(&ev, &init.place);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..120 {
            let node = rng.random_range(0..g.len());
            let pe = (rng.random_range(0..3i64), rng.random_range(0..3i64));
            delta.apply_move(node, pe);
            // apply_move already asserts parity in debug builds; check
            // explicitly so release test runs verify too.
            delta.assert_parity();
        }
    }

    #[test]
    fn same_pe_move_is_a_noop() {
        let g = random_dag(20, 1);
        let m = MachineConfig::n5(2, 2);
        let ev = Evaluator::new(&g, &m);
        let init = crate::search::default_mapper(&g, &m);
        let mut delta = DeltaEvaluator::new(&ev, &init.place);
        let before = delta.report();
        let pe = delta.place_of(5);
        delta.apply_move(5, pe);
        assert_eq!(before, delta.report());
    }

    #[test]
    fn reverse_move_restores_the_exact_report() {
        let g = random_dag(40, 5);
        let m = MachineConfig::n5(3, 2);
        let ev = Evaluator::new(&g, &m);
        let init = crate::search::default_mapper(&g, &m);
        let mut delta = DeltaEvaluator::new(&ev, &init.place);
        let before = delta.report();
        let old = delta.place_of(11);
        let target = if old == (0, 0) { (1, 0) } else { (0, 0) };
        delta.apply_move(11, target);
        delta.apply_move(11, old);
        assert_eq!(before, delta.report());
        assert_eq!(delta.mapping(), retime(&g, &init.place, &m));
    }

    #[test]
    fn undo_restores_the_exact_state_without_rescheduling() {
        let g = random_dag(40, 6);
        let m = MachineConfig::n5(3, 2);
        let ev = Evaluator::new(&g, &m);
        let init = crate::search::default_mapper(&g, &m);
        let mut delta = DeltaEvaluator::new(&ev, &init.place);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..30 {
            let before_rm = delta.mapping();
            let before_rep = delta.report();
            let node = rng.random_range(0..g.len());
            let pe = (rng.random_range(0..3i64), rng.random_range(0..2i64));
            delta.apply_move(node, pe);
            delta.undo();
            assert_eq!(before_rm, delta.mapping());
            assert_eq!(before_rep, delta.report());
            // A second undo (journal drained) is a no-op.
            delta.undo();
            assert_eq!(before_rep, delta.report());
            // Leave some moves applied so later rounds start elsewhere.
            if rng.random::<f64>() < 0.5 {
                delta.apply_move(node, pe);
            }
        }
    }

    #[test]
    fn storage_violations_match_full_legality_check() {
        let g = random_dag(50, 8);
        let mut m = MachineConfig::n5(2, 2);
        m.tile_bits = 4 * 32; // tiny tiles: hoarding PEs go over
        m.issue_width = 64; // keep issue legal while we pile nodes up
        let ev = Evaluator::new(&g, &m);
        let init = crate::search::default_mapper(&g, &m);
        let mut delta = DeltaEvaluator::new(&ev, &init.place);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..60 {
            let node = rng.random_range(0..g.len());
            let pe = (rng.random_range(0..2i64), rng.random_range(0..2i64));
            delta.apply_move(node, pe);
            let rm = delta.mapping();
            let rep = check(&g, &rm, &m);
            let storage = rep
                .errors
                .iter()
                .filter(|e| matches!(e, LegalityError::StorageExceeded { .. }))
                .count() as u64;
            // The checker caps recorded errors at 64; with 4 PEs we are
            // far below the cap, so counts are exact.
            assert_eq!(delta.storage_violations(), storage);
        }
    }

    #[test]
    fn report_matches_evaluator_with_multicast_and_local_inputs() {
        use crate::affine::IdxExpr;
        use crate::mapping::{InputPlacement, PlaceExpr};
        let mut g = DataflowGraph::new("mc", 32);
        let x = g.add_input("X", vec![8]);
        let src = g.add_node(CExpr::input(x, 0), vec![], vec![0]);
        for i in 1..8i64 {
            let id = g.add_node(
                CExpr::dep(0).add(CExpr::input(x, i as u32)),
                vec![src],
                vec![i],
            );
            if i == 7 {
                g.mark_output(id);
            }
        }
        let m = MachineConfig::n5(4, 2);
        let ev = Evaluator::new(&g, &m)
            .with_multicast(true)
            .with_input_placement(0, InputPlacement::Local(PlaceExpr::row0(IdxExpr::c(0))))
            .with_writeback(true);
        let init = crate::search::default_mapper(&g, &m);
        let mut delta = DeltaEvaluator::new(&ev, &init.place);
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..40 {
            let node = rng.random_range(0..g.len());
            let pe = (rng.random_range(0..4i64), rng.random_range(0..2i64));
            delta.apply_move(node, pe);
            delta.assert_parity();
        }
    }

    #[test]
    fn empty_graph_reports_zero() {
        let g = DataflowGraph::new("empty", 32);
        let m = MachineConfig::linear(2);
        let ev = Evaluator::new(&g, &m);
        let delta = DeltaEvaluator::new(&ev, &[]);
        let rep = delta.report();
        assert_eq!(rep.cycles, 0);
        assert_eq!(rep.pes_used, 0);
        assert_eq!(delta.storage_violations(), 0);
    }
}
