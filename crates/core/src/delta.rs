//! Incremental cost/legality evaluation: O(Δ) per placement move.
//!
//! The annealer in [`crate::search`] refines a mapping one single-node
//! placement move at a time, but re-deriving the schedule and re-walking
//! the whole graph per move costs O(|V|+|E|) — graph-sized work for a
//! cone-sized change. [`DeltaEvaluator`] caches everything the full
//! [`Evaluator`](crate::cost::Evaluator) derives from a placement and
//! repairs only what a move can touch:
//!
//! * **Times** (list schedule): node ids are topological (`deps[k] < id`)
//!   and the retime rule consults only *smaller-id* nodes (producers,
//!   and same-PE occupancy in id order). Processing the dirty set with a
//!   min-heap in increasing id order therefore reaches the exact
//!   [`retime`](crate::search::retime) fixpoint with each node
//!   recomputed at most once. The dirty seed for moving node `n` is
//!   `{n} ∪ consumers(n) ∪ {ids > n on the source or destination PE}`;
//!   a node whose time changes re-dirties its consumers and its same-PE
//!   successors.
//! * **Ledger** (energy/traffic): per-node contributions
//!   ([`NodeCost`]) are time-independent, and a move changes only the
//!   moved node's own contribution and its producers' def→use messages
//!   — `deg(n) + 1` leaves of a fixed-shape reduction tree
//!   ([`CostTree`]), refreshed in O(deg·log V). Because the full
//!   evaluator sums through the *same* tree, totals agree bit-for-bit.
//! * **Storage legality**: per-PE peak live bits are re-swept only for
//!   the source/destination PEs, the PEs of retimed nodes, and the PEs
//!   of values whose last use moved. Output lifetimes use a far-future
//!   sentinel instead of the makespan — the peak of an interval stack is
//!   invariant to any right endpoint past the last start — so peaks
//!   never depend on makespan changes.
//! * **Aggregates**: makespan and the global peak are maxima over
//!   multisets kept in `BTreeMap` histograms; PEs-used is the size of
//!   the PE→nodes index; the storage-violation count is maintained as
//!   peaks change. [`DeltaEvaluator::report`] is therefore O(1)-ish
//!   (one tree-root read plus map lookups).
//!
//! In debug builds every [`DeltaEvaluator::apply_move`] re-derives the
//! full schedule and report and asserts bit-exact equality
//! ([`DeltaEvaluator::assert_parity`]); property tests in the workspace
//! root drive random move sequences through the same assertion.
//!
//! Every cached field is a pure function of the placement vector, so
//! undoing a move can always fall back to applying the reverse move;
//! [`DeltaEvaluator::undo`] is cheaper — each move journals the values
//! it overwrites, and replaying the journal in reverse restores the
//! prior state with no scheduling, sweeping, or sorting at all. The
//! annealer uses it to make rejected proposals nearly free.
//!
//! [`DeltaCandidates`] applies the same bit-exactness discipline to a
//! *pool* of mapping candidates under **structural** edits
//! ([`AppliedEdit`]: add/remove node, retarget edge, resize tile).
//! A candidate's places and times are pure functions of each node's
//! immutable domain index (affine) or of a fixed table, so an edit
//! never reschedules surviving nodes — the legality counters (bounds,
//! causality, issue width, storage) and the cost-tree leaves can be
//! repaired in edit-cone-sized work per candidate, and a candidate's
//! evaluation stays bit-identical to
//! [`crate::search::evaluate_candidate`] run cold on the edited graph.
//! An edit that invalidates a candidate (a table length change, a new
//! node without a domain index) drops its cached state; the next
//! evaluation rebuilds it cold and counts the rebuild, which is how the
//! session layer above classifies warm vs cold re-tunes.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

use crate::cost::{CostReport, CostTree, Evaluator, NodeCost, OffchipTotals};
use crate::dataflow::{DataflowGraph, Node, NodeId};
use crate::flat::EvalContext;
use crate::machine::MachineConfig;
use crate::mapping::{Mapping, ResolvedMapping};
use crate::mutate::AppliedEdit;
use crate::search::{CandidateEval, FigureOfMerit};

/// Stand-in for "lives forever" in lifetime sweeps. Any value past the
/// last production cycle yields the same peak; this one also never
/// overflows `+ 1`.
const FAR_FUTURE: i64 = i64::MAX / 4;

/// One recorded mutation of [`DeltaEvaluator`] state, with the value
/// it replaced — replaying a move's entries in reverse restores the
/// exact prior state without re-running any scheduling.
#[derive(Debug, Clone, Copy)]
enum UndoEntry {
    Place { node: usize, pe: (i64, i64) },
    RemovedFromPe { pe: u32, id: NodeId },
    InsertedToPe { pe: u32, id: NodeId },
    Time { id: NodeId, t: i64 },
    LastUse { id: NodeId, t: i64 },
    Peak { pe: u32, v: Option<u64> },
    Leaf { id: NodeId, cost: NodeCost },
}

/// Per-PE occupancy cursor shared across the pops of one move: the
/// sorted slot multiset of finalized smaller-id same-PE times, extended
/// as a cursor walks up the PE's membership list.
#[derive(Debug, Default)]
struct Occ {
    cursor: usize,
    slots: Vec<i64>,
}

/// Reusable per-move working buffers. Taken out of the evaluator at the
/// start of [`DeltaEvaluator::apply_move`] (so the borrow checker sees
/// them as locals) and put back at the end; cleared via epoch stamps and
/// `clear()`, never freed, so steady-state moves allocate nothing.
#[derive(Debug, Default)]
struct MoveScratch {
    heap: BinaryHeap<Reverse<NodeId>>,
    /// Dense per-PE occupancy cursors, validated by epoch stamp.
    occ: Vec<Occ>,
    occ_epoch: Vec<u64>,
    epoch: u64,
    /// Interned ids of PEs whose lifetimes may have moved.
    dirty_pes: Vec<usize>,
    /// Live-interval endpoints for one PE's peak re-sweep.
    events: Vec<(i64, i64)>,
    /// Distinct remote consumer PEs for one node's re-cost.
    pes: Vec<(i64, i64)>,
    /// Multicast destinations (what-if path only).
    dests: Vec<(u32, u32)>,
}

fn hist_add<K: Ord>(h: &mut BTreeMap<K, u32>, k: K) {
    *h.entry(k).or_insert(0) += 1;
}

fn hist_remove<K: Ord + std::fmt::Debug>(h: &mut BTreeMap<K, u32>, k: K) {
    match h.get_mut(&k) {
        Some(c) if *c > 1 => *c -= 1,
        Some(_) => {
            h.remove(&k);
        }
        None => panic!("histogram underflow at key {k:?}"),
    }
}

/// Incremental evaluator over single-node placement moves.
///
/// Holds a placement (times always the [`retime`](crate::search::retime)
/// list schedule of that placement) plus every derived quantity the full
/// evaluator would compute, and repairs them in cone-sized work per
/// [`Self::apply_move`]. [`Self::report`] is bit-identical to
/// `Evaluator::evaluate` on [`Self::mapping`], by construction and by
/// debug-mode assertion.
pub struct DeltaEvaluator<'e, 'a> {
    ev: &'e Evaluator<'a>,
    graph: &'a DataflowGraph,
    machine: &'a MachineConfig,
    /// Shared flat-evaluation state: CSR consumer lists and the
    /// placement-independent cost prefixes (replaces the old
    /// `Vec<Vec<NodeId>>` consumer index).
    ctx: EvalContext,
    place: Vec<(i64, i64)>,
    time: Vec<i64>,
    /// max(own time, consumer times); outputs are *not* extended here —
    /// the sweep substitutes [`FAR_FUTURE`] for them.
    last_use: Vec<i64>,
    /// Grid columns, for interning places to dense PE ids
    /// (`pe = y·cols + x`; every held place is on-grid by invariant).
    cols: i64,
    /// Node ids per PE, ascending, indexed by interned PE id. Empty
    /// lists mean unoccupied (they stay allocated for reuse).
    pe_nodes: Vec<Vec<NodeId>>,
    /// Number of non-empty `pe_nodes` lists — the report's PEs-used.
    occupied: usize,
    /// Multiset of node times; max key + 1 = makespan.
    time_hist: BTreeMap<i64, u32>,
    /// Peak live bits per PE, indexed by interned PE id; `None` =
    /// unoccupied.
    peaks: Vec<Option<u64>>,
    /// Multiset of per-PE peaks; max key = global peak.
    peak_hist: BTreeMap<u64, u32>,
    /// PEs whose peak exceeds `machine.tile_bits`.
    over_capacity: u64,
    tree: CostTree,
    off: OffchipTotals,
    in_heap: Vec<bool>,
    /// Mutations of the most recent [`Self::apply_move`], for
    /// [`Self::undo`]. Cleared at the start of each move.
    journal: Vec<UndoEntry>,
    /// Reusable per-move buffers (see [`MoveScratch`]).
    scratch: MoveScratch,
    paranoid: bool,
}

impl<'e, 'a> DeltaEvaluator<'e, 'a> {
    /// Build from an initial placement (all places must be on-grid).
    /// Times are derived by list scheduling, exactly as
    /// [`crate::search::retime`] would.
    pub fn new(ev: &'e Evaluator<'a>, init_places: &[(i64, i64)]) -> Self {
        let graph = ev.graph();
        let machine = ev.machine();
        assert_eq!(
            init_places.len(),
            graph.len(),
            "placement length must match graph"
        );
        for &(x, y) in init_places {
            assert!(machine.contains(x, y), "initial place ({x},{y}) off-grid");
        }
        let rm = crate::search::retime(graph, init_places, machine);
        let ctx = EvalContext::new(ev);

        let mut last_use = rm.time.clone();
        for (id, n) in graph.nodes.iter().enumerate() {
            for &d in &n.deps {
                if rm.time[id] > last_use[d as usize] {
                    last_use[d as usize] = rm.time[id];
                }
            }
        }

        let cols = i64::from(machine.cols);
        let pe_count = machine.cols as usize * machine.rows as usize;
        let mut pe_nodes: Vec<Vec<NodeId>> = vec![Vec::new(); pe_count];
        for (id, &pe) in rm.place.iter().enumerate() {
            pe_nodes[(pe.1 * cols + pe.0) as usize].push(id as NodeId);
        }
        let occupied = pe_nodes.iter().filter(|l| !l.is_empty()).count();

        let mut time_hist = BTreeMap::new();
        for &t in &rm.time {
            hist_add(&mut time_hist, t);
        }

        let mut pes = Vec::new();
        let mut dests = Vec::new();
        let leaves: Vec<NodeCost> = (0..graph.len())
            .map(|id| ctx.node_cost(ev, id, &rm.place, &mut pes, &mut dests))
            .collect();
        let tree = CostTree::build(&leaves);
        let off = ctx.offchip();
        let n = graph.len();

        let mut this = DeltaEvaluator {
            ev,
            graph,
            machine,
            ctx,
            place: rm.place,
            time: rm.time,
            last_use,
            cols,
            pe_nodes,
            occupied,
            time_hist,
            peaks: vec![None; pe_count],
            peak_hist: BTreeMap::new(),
            over_capacity: 0,
            tree,
            off,
            in_heap: vec![false; n],
            journal: Vec::new(),
            scratch: MoveScratch {
                pes,
                dests,
                ..MoveScratch::default()
            },
            paranoid: true,
        };
        let mut events = std::mem::take(&mut this.scratch.events);
        for pe in 0..pe_count {
            if !this.pe_nodes[pe].is_empty() {
                this.refresh_peak(pe, &mut events);
            }
        }
        this.scratch.events = events;
        this.journal.clear();
        this
    }

    /// Interned id of an on-grid place.
    #[inline]
    fn pe_id(&self, pe: (i64, i64)) -> usize {
        (pe.1 * self.cols + pe.0) as usize
    }

    /// Disable (or re-enable) the per-move full-parity assertion that
    /// runs in debug builds. Useful for debug-build throughput tests;
    /// release builds never run the assertion either way.
    pub fn with_paranoia(mut self, on: bool) -> Self {
        self.paranoid = on;
        self
    }

    /// Current place of a node.
    pub fn place_of(&self, node: usize) -> (i64, i64) {
        self.place[node]
    }

    /// The current mapping (places + list-scheduled times).
    pub fn mapping(&self) -> ResolvedMapping {
        ResolvedMapping {
            place: self.place.clone(),
            time: self.time.clone(),
        }
    }

    /// Number of PEs whose peak live bits exceed the machine's tile
    /// capacity — the same count [`crate::legality::check`] reports as
    /// `StorageExceeded` violations.
    pub fn storage_violations(&self) -> u64 {
        self.over_capacity
    }

    /// The current cost report, bit-identical to running the full
    /// evaluator on [`Self::mapping`].
    pub fn report(&self) -> CostReport {
        let cycles = self.time_hist.keys().next_back().map_or(0, |&t| t + 1);
        let peak = self.peak_hist.keys().next_back().copied().unwrap_or(0);
        self.ev
            .assemble(self.tree.total(), &self.off, cycles, peak, self.occupied)
    }

    /// Score of the current mapping under `fom` (lower is better) —
    /// identical arithmetic to `ev.score(fom, &self.report())` under
    /// the evaluator's active cost backend.
    pub fn score(&self, fom: FigureOfMerit) -> f64 {
        self.ev.score(fom, &self.report())
    }

    /// Move `node` to `new_pe` (must be on-grid) and repair all cached
    /// state. Work is proportional to the retimed cone, the moved
    /// node's degree, and the affected PEs' populations — not the graph.
    ///
    /// To undo, apply the reverse move: all state is a pure function of
    /// the placement.
    pub fn apply_move(&mut self, node: usize, new_pe: (i64, i64)) {
        assert!(node < self.graph.len(), "node out of range");
        assert!(
            self.machine.contains(new_pe.0, new_pe.1),
            "move target {new_pe:?} off-grid"
        );
        self.journal.clear();
        let old_pe = self.place[node];
        if old_pe == new_pe {
            return;
        }
        let id = node as NodeId;
        let old_pid = self.pe_id(old_pe);
        let new_pid = self.pe_id(new_pe);

        // Check the per-move buffers out of self so the borrow checker
        // sees them as locals, independent of the cached state.
        let mut s = std::mem::take(&mut self.scratch);
        let pe_count = self.pe_nodes.len();
        if s.occ.len() < pe_count {
            s.occ.resize_with(pe_count, Occ::default);
            s.occ_epoch.resize(pe_count, 0);
        }
        s.epoch += 1;
        s.heap.clear();
        s.dirty_pes.clear();

        // Membership: the PE→nodes index drives occupancy, peaks, and
        // the pes_used count.
        {
            let t_old = self.time[node];
            let list = &mut self.pe_nodes[old_pid];
            let pos = list.binary_search(&id).expect("node on its PE");
            list.remove(pos);
            // Later source-PE nodes may now schedule earlier — but only
            // those at or past the vacated slot: a node's gap scan never
            // consults slots above its own scheduled time.
            for &j in &list[pos..] {
                if self.time[j as usize] >= t_old {
                    self.in_heap[j as usize] = true;
                    s.heap.push(Reverse(j));
                }
            }
            if list.is_empty() {
                self.occupied -= 1;
            }
            self.journal.push(UndoEntry::RemovedFromPe {
                pe: old_pid as u32,
                id,
            });
        }
        {
            let list = &mut self.pe_nodes[new_pid];
            if list.is_empty() {
                self.occupied += 1;
            }
            let pos = list
                .binary_search(&id)
                .expect_err("node cannot already be on target PE");
            list.insert(pos, id);
            self.journal.push(UndoEntry::InsertedToPe {
                pe: new_pid as u32,
                id,
            });
            // Later destination-PE nodes are dirtied when the moved
            // node pops (first, by id order) and its new slot is known
            // — seeding them all here would over-approximate.
        }
        self.place[node] = new_pe;
        self.journal.push(UndoEntry::Place { node, pe: old_pe });

        // The moved node reschedules; its consumers' wire-delay gaps
        // changed even if its time does not.
        if !self.in_heap[node] {
            self.in_heap[node] = true;
            s.heap.push(Reverse(id));
        }
        for &c in self.ctx.consumers(node) {
            if !self.in_heap[c as usize] {
                self.in_heap[c as usize] = true;
                s.heap.push(Reverse(c));
            }
        }

        // Retime the dirty set in increasing id order. Every quantity a
        // node's schedule consults (producer times, smaller-id same-PE
        // occupancy) is final by the time it pops, so one pass reaches
        // the list-schedule fixpoint.
        //
        // Occupancy is shared across pops on the same PE: pops arrive
        // in increasing id order (pushes only ever target ids above the
        // current pop), so each PE's slot multiset can be extended with
        // finalized times as a cursor walks up its membership list,
        // instead of re-collecting and re-sorting per pop. The cursors
        // live in a dense per-PE array validated by epoch stamp.
        s.dirty_pes.push(old_pid);
        s.dirty_pes.push(new_pid);
        while let Some(Reverse(i)) = s.heap.pop() {
            let iu = i as usize;
            self.in_heap[iu] = false;
            let pid = self.pe_id(self.place[iu]);
            let t_new = {
                let o = &mut s.occ[pid];
                if s.occ_epoch[pid] != s.epoch {
                    s.occ_epoch[pid] = s.epoch;
                    o.cursor = 0;
                    o.slots.clear();
                }
                let list = &self.pe_nodes[pid];
                while o.cursor < list.len() && list[o.cursor] < i {
                    let t = self.time[list[o.cursor] as usize];
                    let p = o.slots.partition_point(|&x| x < t);
                    debug_assert!(
                        o.slots.get(p) != Some(&t),
                        "finalized same-PE times are pairwise distinct"
                    );
                    o.slots.insert(p, t);
                    o.cursor += 1;
                }
                self.schedule_time_in(iu, &o.slots)
            };
            let t_old = self.time[iu];
            if iu == node {
                // The moved node's slot is new on this PE: later nodes
                // at or past it must reschedule around it, even when
                // the moved node's own time did not change.
                let list = &self.pe_nodes[pid];
                let pos = list.partition_point(|&j| j <= i);
                for &j in &list[pos..] {
                    if self.time[j as usize] >= t_new && !self.in_heap[j as usize] {
                        self.in_heap[j as usize] = true;
                        s.heap.push(Reverse(j));
                    }
                }
            }
            if t_new == t_old {
                continue;
            }
            hist_remove(&mut self.time_hist, t_old);
            hist_add(&mut self.time_hist, t_new);
            self.time[iu] = t_new;
            self.journal.push(UndoEntry::Time { id: i, t: t_old });
            s.dirty_pes.push(pid);

            // Ripple: same-PE successors at or past the perturbed slot
            // range (slots above a node's own time are never consulted
            // by its gap scan), and consumers.
            let lo = t_old.min(t_new);
            {
                let list = &self.pe_nodes[pid];
                let pos = list.partition_point(|&j| j <= i);
                for &j in &list[pos..] {
                    if self.time[j as usize] >= lo && !self.in_heap[j as usize] {
                        self.in_heap[j as usize] = true;
                        s.heap.push(Reverse(j));
                    }
                }
            }
            for &c in self.ctx.consumers(iu) {
                if !self.in_heap[c as usize] {
                    self.in_heap[c as usize] = true;
                    s.heap.push(Reverse(c));
                }
            }

            // A time change moves this value's production and possibly
            // the last use of its operands.
            let lu_self = self.recompute_last_use(iu);
            if lu_self != self.last_use[iu] {
                self.journal.push(UndoEntry::LastUse {
                    id: i,
                    t: self.last_use[iu],
                });
                self.last_use[iu] = lu_self;
            }
            for k in 0..self.graph.nodes[iu].deps.len() {
                let du = self.graph.nodes[iu].deps[k] as usize;
                let lu = self.recompute_last_use(du);
                if lu != self.last_use[du] {
                    self.journal.push(UndoEntry::LastUse {
                        id: du as NodeId,
                        t: self.last_use[du],
                    });
                    self.last_use[du] = lu;
                    s.dirty_pes.push(self.pe_id(self.place[du]));
                }
            }
        }

        // Re-cost the moved node (its reads and the messages it sends)
        // and its producers (the messages they send to it).
        self.journal.push(UndoEntry::Leaf {
            id,
            cost: self.tree.leaf(node),
        });
        let c = self
            .ctx
            .node_cost(self.ev, node, &self.place, &mut s.pes, &mut s.dests);
        self.tree.update(node, c);
        for k in 0..self.graph.nodes[node].deps.len() {
            let du = self.graph.nodes[node].deps[k] as usize;
            self.journal.push(UndoEntry::Leaf {
                id: du as NodeId,
                cost: self.tree.leaf(du),
            });
            let c = self
                .ctx
                .node_cost(self.ev, du, &self.place, &mut s.pes, &mut s.dests);
            self.tree.update(du, c);
        }

        // Re-sweep peaks only where lifetimes could have moved.
        s.dirty_pes.sort_unstable();
        s.dirty_pes.dedup();
        let mut events = std::mem::take(&mut s.events);
        for k in 0..s.dirty_pes.len() {
            self.refresh_peak(s.dirty_pes[k], &mut events);
        }
        s.events = events;
        self.scratch = s;

        if cfg!(debug_assertions) && self.paranoid {
            self.assert_parity();
        }
    }

    /// Revert the most recent [`Self::apply_move`] by replaying its
    /// journal in reverse: every entry restores the exact value the
    /// move overwrote, so no schedule, lifetime, or peak is recomputed.
    /// A second `undo` (or one after a no-op move) is a no-op.
    pub fn undo(&mut self) {
        while let Some(e) = self.journal.pop() {
            match e {
                UndoEntry::Place { node, pe } => self.place[node] = pe,
                UndoEntry::RemovedFromPe { pe, id } => {
                    let list = &mut self.pe_nodes[pe as usize];
                    if list.is_empty() {
                        self.occupied += 1;
                    }
                    let pos = list
                        .binary_search(&id)
                        .expect_err("undo: node already back on PE");
                    list.insert(pos, id);
                }
                UndoEntry::InsertedToPe { pe, id } => {
                    let list = &mut self.pe_nodes[pe as usize];
                    let pos = list.binary_search(&id).expect("undo: node on PE");
                    list.remove(pos);
                    if list.is_empty() {
                        self.occupied -= 1;
                    }
                }
                UndoEntry::Time { id, t } => {
                    let iu = id as usize;
                    hist_remove(&mut self.time_hist, self.time[iu]);
                    hist_add(&mut self.time_hist, t);
                    self.time[iu] = t;
                }
                UndoEntry::LastUse { id, t } => self.last_use[id as usize] = t,
                UndoEntry::Peak { pe, v } => {
                    let cap = self.machine.tile_bits;
                    if let Some(c) = self.peaks[pe as usize].take() {
                        hist_remove(&mut self.peak_hist, c);
                        if c > cap {
                            self.over_capacity -= 1;
                        }
                    }
                    if let Some(x) = v {
                        hist_add(&mut self.peak_hist, x);
                        if x > cap {
                            self.over_capacity += 1;
                        }
                        self.peaks[pe as usize] = Some(x);
                    }
                }
                UndoEntry::Leaf { id, cost } => self.tree.update(id as usize, cost),
            }
        }
        if cfg!(debug_assertions) && self.paranoid {
            self.assert_parity();
        }
    }

    /// The list-schedule time of `i` given current producer times and
    /// the sorted occupied slots of smaller-id same-PE nodes — the same
    /// rule as [`crate::search::retime`], node-at-a-time. The linear
    /// "advance past each occupied slot" scan is replaced by a binary
    /// search for the first gap: with pairwise-distinct slots (an
    /// invariant of the schedule rule — every slot was itself picked as
    /// a first gap) the dense prefix `slots[lo + j] == ready + j` is
    /// exactly the set of slots the scan would step over.
    fn schedule_time_in(&self, i: usize, slots: &[i64]) -> i64 {
        let n = &self.graph.nodes[i];
        let pe = self.place[i];
        let pe_u = (pe.0 as u32, pe.1 as u32);
        let mut ready = 0i64;
        for &d in &n.deps {
            let prod = self.place[d as usize];
            let prod_u = (prod.0 as u32, prod.1 as u32);
            ready = ready.max(self.time[d as usize] + self.machine.required_gap(prod_u, pe_u));
        }
        let lo = slots.partition_point(|&s| s < ready);
        let m = slots.len() - lo;
        let (mut left, mut right) = (0usize, m);
        while left < right {
            let mid = left + (right - left) / 2;
            if slots[lo + mid] == ready + mid as i64 {
                left = mid + 1;
            } else {
                right = mid;
            }
        }
        ready + left as i64
    }

    fn recompute_last_use(&self, id: usize) -> i64 {
        let mut lu = self.time[id];
        for &c in self.ctx.consumers(id) {
            lu = lu.max(self.time[c as usize]);
        }
        lu
    }

    /// Re-sweep one PE's peak live bits (into the reusable `events`
    /// buffer) and fold the change into the peak histogram and the
    /// over-capacity count.
    fn refresh_peak(&mut self, pe: usize, events: &mut Vec<(i64, i64)>) {
        let list = &self.pe_nodes[pe];
        let new = if list.is_empty() {
            None
        } else {
            let width = u64::from(self.graph.width_bits);
            events.clear();
            for &j in list {
                let ju = j as usize;
                let last = if self.graph.nodes[ju].output {
                    FAR_FUTURE
                } else {
                    self.last_use[ju]
                };
                events.push((self.time[ju], 1));
                events.push((last + 1, -1));
            }
            events.sort_unstable();
            let mut live = 0i64;
            let mut peak = 0i64;
            for &(_, d) in events.iter() {
                live += d;
                peak = peak.max(live);
            }
            Some(peak as u64 * width)
        };
        let old = self.peaks[pe];
        if old == new {
            return;
        }
        self.journal.push(UndoEntry::Peak {
            pe: pe as u32,
            v: old,
        });
        let cap = self.machine.tile_bits;
        if let Some(o) = old {
            hist_remove(&mut self.peak_hist, o);
            if o > cap {
                self.over_capacity -= 1;
            }
        }
        if let Some(v) = new {
            hist_add(&mut self.peak_hist, v);
            if v > cap {
                self.over_capacity += 1;
            }
        }
        self.peaks[pe] = new;
    }

    /// Assert bit-exact agreement with the full pipeline: times against
    /// [`crate::search::retime`], the report against
    /// `Evaluator::evaluate`, and the storage-violation count against
    /// [`crate::legality::tile_peaks`]. O(|V|+|E|) — runs automatically
    /// after every move in debug builds (see [`Self::with_paranoia`]).
    pub fn assert_parity(&self) {
        let rm = crate::search::retime(self.graph, &self.place, self.machine);
        assert_eq!(
            rm.time, self.time,
            "incremental retime departed from the full list schedule"
        );
        let full = self.ev.evaluate(&rm);
        let mine = self.report();
        assert_eq!(full, mine, "incremental report != full evaluate");
        let peaks = crate::legality::tile_peaks(self.graph, &rm, rm.makespan());
        assert_eq!(
            crate::legality::storage_violation_count(&peaks, self.machine.tile_bits),
            self.over_capacity,
            "incremental storage-violation count != full legality sweep"
        );
    }
}

/// Whether the edge `d → n` violates causality under the given static
/// places/times: 1 if the consumer runs before the producer's value can
/// arrive, else 0. Edges with an off-grid endpoint contribute 0 — the
/// full checker only counts causality when every place is on-grid, and
/// the u32 coordinate casts would be garbage otherwise. Pure in the
/// endpoints' (static) places and times, so adding and later removing
/// the same edge telescopes exactly.
fn edge_violation(
    machine: &MachineConfig,
    place: &[(i64, i64)],
    time: &[i64],
    d: usize,
    n: usize,
) -> u64 {
    let (px, py) = place[d];
    let (cx, cy) = place[n];
    if !machine.contains(px, py) || !machine.contains(cx, cy) {
        return 0;
    }
    let required = machine.required_gap((px as u32, py as u32), (cx as u32, cy as u32));
    u64::from(time[n] - time[d] < required)
}

/// Cached evaluation state of one resolvable candidate: its static
/// places/times plus every aggregate [`crate::legality::check`] and
/// `Evaluator::evaluate` would derive, maintained incrementally.
struct CandState {
    place: Vec<(i64, i64)>,
    time: Vec<i64>,
    /// Nodes mapped off the grid.
    oob: u64,
    /// Nodes scheduled before cycle 0.
    neg: u64,
    /// Causality-violating edges (per dep slot, duplicates counted),
    /// under the [`edge_violation`] convention. Only added to the
    /// violation total when `oob == 0`, exactly like the full checker.
    causality: u64,
    /// Elements per (PE, cycle) — including off-grid places, exactly
    /// like the full checker's issue phase.
    issue: HashMap<((i64, i64), i64), u32>,
    /// Issue cells over the machine's width.
    issue_over: u64,
    /// max(own time, consumer times); outputs are *not* extended here —
    /// the sweep substitutes [`FAR_FUTURE`] for them.
    last_use: Vec<i64>,
    /// Node ids per PE, ascending. No empty lists are kept.
    pe_nodes: HashMap<(i64, i64), Vec<NodeId>>,
    /// Peak live bits per occupied PE.
    peaks: HashMap<(i64, i64), u64>,
    /// Multiset of per-PE peaks; max key = global peak.
    peak_hist: BTreeMap<u64, u32>,
    /// PEs whose peak exceeds the machine's tile capacity.
    storage_over: u64,
    /// Multiset of node times; max key + 1 = makespan.
    time_hist: BTreeMap<i64, u32>,
    leaves: Vec<NodeCost>,
    tree: CostTree,
    /// The tree's leaf capacity (`CostTree` keeps it private); a leaf
    /// append that stays within it can use the zero-padded slots, one
    /// that outgrows it forces a rebuild.
    tree_cap: usize,
    /// Leaves whose [`NodeCost`] is stale. Flushed lazily at
    /// evaluation time, and only for legal candidates — costing an
    /// off-grid placement is meaningless.
    dirty: Vec<usize>,
}

impl CandState {
    /// Build from scratch for a resolved candidate — the same work the
    /// cold path does, cached.
    fn build(ev: &Evaluator<'_>, rm: &ResolvedMapping, consumers: &[Vec<NodeId>]) -> CandState {
        let graph = ev.graph();
        let machine = ev.machine();
        let n = graph.len();

        let mut oob = 0u64;
        let mut neg = 0u64;
        for id in 0..n {
            if !machine.contains(rm.place[id].0, rm.place[id].1) {
                oob += 1;
            }
            if rm.time[id] < 0 {
                neg += 1;
            }
        }
        let mut causality = 0u64;
        for (id, node) in graph.nodes.iter().enumerate() {
            for &d in &node.deps {
                causality += edge_violation(machine, &rm.place, &rm.time, d as usize, id);
            }
        }
        let mut issue: HashMap<((i64, i64), i64), u32> = HashMap::new();
        for id in 0..n {
            *issue.entry((rm.place[id], rm.time[id])).or_insert(0) += 1;
        }
        let issue_over = issue.values().filter(|&&c| c > machine.issue_width).count() as u64;

        let mut last_use = rm.time.clone();
        for (id, node) in graph.nodes.iter().enumerate() {
            for &d in &node.deps {
                if rm.time[id] > last_use[d as usize] {
                    last_use[d as usize] = rm.time[id];
                }
            }
        }
        let mut pe_nodes: HashMap<(i64, i64), Vec<NodeId>> = HashMap::new();
        for (id, &pe) in rm.place.iter().enumerate() {
            pe_nodes.entry(pe).or_default().push(id as NodeId);
        }
        let mut time_hist = BTreeMap::new();
        for &t in &rm.time {
            hist_add(&mut time_hist, t);
        }

        let mut this = CandState {
            place: rm.place.clone(),
            time: rm.time.clone(),
            oob,
            neg,
            causality,
            issue,
            issue_over,
            last_use,
            pe_nodes,
            peaks: HashMap::new(),
            peak_hist: BTreeMap::new(),
            storage_over: 0,
            time_hist,
            leaves: Vec::new(),
            tree: CostTree::build(&[]),
            tree_cap: 1,
            dirty: Vec::new(),
        };
        let pes: Vec<(i64, i64)> = this.pe_nodes.keys().copied().collect();
        for pe in pes {
            this.refresh_peak(graph, machine, pe);
        }
        if this.total() == 0 {
            this.leaves = (0..n)
                .map(|id| ev.node_cost(id, &this.place, consumers))
                .collect();
        } else {
            // Illegal now: defer costing until (if ever) edits make the
            // candidate legal — off-grid places cast to garbage u32
            // coordinates inside `node_cost`.
            this.leaves = vec![NodeCost::default(); n];
            this.dirty = (0..n).collect();
        }
        this.tree = CostTree::build(&this.leaves);
        this.tree_cap = n.next_power_of_two().max(1);
        this
    }

    /// Exact violation total, mirroring the full checker's phases:
    /// causality is only meaningful (and only counted) with every place
    /// on-grid.
    fn total(&self) -> u64 {
        let causality = if self.oob == 0 { self.causality } else { 0 };
        self.oob + self.neg + causality + self.issue_over + self.storage_over
    }

    fn issue_add(&mut self, width: u32, key: ((i64, i64), i64)) {
        let c = self.issue.entry(key).or_insert(0);
        *c += 1;
        if u64::from(*c) == u64::from(width) + 1 {
            self.issue_over += 1;
        }
    }

    fn issue_remove(&mut self, width: u32, key: ((i64, i64), i64)) {
        let c = self.issue.get_mut(&key).expect("issue histogram underflow");
        if u64::from(*c) == u64::from(width) + 1 {
            self.issue_over -= 1;
        }
        *c -= 1;
        if *c == 0 {
            self.issue.remove(&key);
        }
    }

    fn recompute_last_use(time: &[i64], consumers: &[Vec<NodeId>], id: usize) -> i64 {
        let mut lu = time[id];
        for &c in &consumers[id] {
            lu = lu.max(time[c as usize]);
        }
        lu
    }

    /// Re-sweep one PE's peak live bits and fold the change into the
    /// peak histogram and the over-capacity count. Same sweep as
    /// [`DeltaEvaluator::refresh_peak`], minus the undo journal.
    fn refresh_peak(&mut self, graph: &DataflowGraph, machine: &MachineConfig, pe: (i64, i64)) {
        let new = self.pe_nodes.get(&pe).map(|list| {
            let width = u64::from(graph.width_bits);
            let mut events: Vec<(i64, i64)> = Vec::with_capacity(list.len() * 2);
            for &j in list {
                let ju = j as usize;
                let last = if graph.nodes[ju].output {
                    FAR_FUTURE
                } else {
                    self.last_use[ju]
                };
                events.push((self.time[ju], 1));
                events.push((last + 1, -1));
            }
            events.sort_unstable();
            let mut live = 0i64;
            let mut peak = 0i64;
            for (_, d) in events {
                live += d;
                peak = peak.max(live);
            }
            peak as u64 * width
        });
        let old = self.peaks.get(&pe).copied();
        if old == new {
            return;
        }
        let cap = machine.tile_bits;
        if let Some(o) = old {
            hist_remove(&mut self.peak_hist, o);
            if o > cap {
                self.storage_over -= 1;
            }
            self.peaks.remove(&pe);
        }
        if let Some(v) = new {
            hist_add(&mut self.peak_hist, v);
            if v > cap {
                self.storage_over += 1;
            }
            self.peaks.insert(pe, v);
        }
    }

    /// A node was appended with the given (statically resolved) place
    /// and time.
    fn repair_add(&mut self, ev: &Evaluator<'_>, id: usize, pe: (i64, i64), t: i64) {
        let graph = ev.graph();
        let machine = ev.machine();
        self.place.push(pe);
        self.time.push(t);
        if !machine.contains(pe.0, pe.1) {
            self.oob += 1;
        }
        if t < 0 {
            self.neg += 1;
        }
        for &d in &graph.nodes[id].deps {
            self.causality += edge_violation(machine, &self.place, &self.time, d as usize, id);
        }
        self.issue_add(machine.issue_width, (pe, t));
        hist_add(&mut self.time_hist, t);
        // No consumers yet: the new node's value dies at birth.
        self.last_use.push(t);
        let mut dirty_pes = vec![pe];
        for &d in &graph.nodes[id].deps {
            let du = d as usize;
            if t > self.last_use[du] {
                self.last_use[du] = t;
                dirty_pes.push(self.place[du]);
            }
            // The producer now sends one more def→use message.
            self.dirty.push(du);
        }
        // Largest id: appending keeps the list ascending.
        self.pe_nodes.entry(pe).or_default().push(id as NodeId);
        self.leaves.push(NodeCost::default());
        self.dirty.push(id);
        let want = self.leaves.len().next_power_of_two().max(1);
        if want != self.tree_cap {
            // Stale dirty leaves are fine: the flush recomputes their
            // root paths, and every other internal node sums unchanged
            // descendants.
            self.tree = CostTree::build(&self.leaves);
            self.tree_cap = want;
        }
        dirty_pes.sort_unstable();
        dirty_pes.dedup();
        for pe in dirty_pes {
            self.refresh_peak(graph, machine, pe);
        }
    }

    /// Consumerless node `r` was removed; ids above it shifted down.
    /// `consumers` is the *post-edit* shared consumer index.
    fn repair_remove(
        &mut self,
        ev: &Evaluator<'_>,
        consumers: &[Vec<NodeId>],
        r: usize,
        removed: &Node,
    ) {
        let graph = ev.graph();
        let machine = ev.machine();
        let pe = self.place[r];
        let t = self.time[r];
        if !machine.contains(pe.0, pe.1) {
            self.oob -= 1;
        }
        if t < 0 {
            self.neg -= 1;
        }
        // Subtract with the pre-compaction arrays: the removed node's
        // entries are still present and its deps all sit below it.
        for &d in &removed.deps {
            self.causality -= edge_violation(machine, &self.place, &self.time, d as usize, r);
        }
        self.issue_remove(machine.issue_width, (pe, t));
        hist_remove(&mut self.time_hist, t);
        {
            let list = self.pe_nodes.get_mut(&pe).expect("node on its PE");
            let pos = list.binary_search(&(r as NodeId)).expect("node on its PE");
            list.remove(pos);
            if list.is_empty() {
                self.pe_nodes.remove(&pe);
            }
        }
        // Uniform decrement keeps every list sorted.
        for list in self.pe_nodes.values_mut() {
            for id in list.iter_mut() {
                if *id > r as NodeId {
                    *id -= 1;
                }
            }
        }
        self.place.remove(r);
        self.time.remove(r);
        self.last_use.remove(r);
        self.leaves.remove(r);
        self.dirty.retain(|&i| i != r);
        for i in self.dirty.iter_mut() {
            if *i > r {
                *i -= 1;
            }
        }
        let mut dirty_pes = vec![pe];
        for &d in &removed.deps {
            let du = d as usize;
            let lu = Self::recompute_last_use(&self.time, consumers, du);
            if lu != self.last_use[du] {
                self.last_use[du] = lu;
                dirty_pes.push(self.place[du]);
            }
            // One fewer def→use message from each former producer.
            self.dirty.push(du);
        }
        // Compaction shifted every leaf slot: rebuild the fixed-shape
        // tree at the new capacity.
        self.tree = CostTree::build(&self.leaves);
        self.tree_cap = self.leaves.len().next_power_of_two().max(1);
        dirty_pes.sort_unstable();
        dirty_pes.dedup();
        for pe in dirty_pes {
            self.refresh_peak(graph, machine, pe);
        }
    }

    /// Dep slot of `node` moved from `old_dep` to `new_dep`. Places and
    /// times are untouched; only one causality edge, the two producers'
    /// message costs, and their last-use lifetimes can change. The
    /// edited node's own leaf is unchanged — its operand count, input
    /// reads, and produced messages do not depend on who feeds it.
    fn repair_retarget(
        &mut self,
        ev: &Evaluator<'_>,
        consumers: &[Vec<NodeId>],
        node: usize,
        old_dep: usize,
        new_dep: usize,
    ) {
        if old_dep == new_dep {
            return;
        }
        let graph = ev.graph();
        let machine = ev.machine();
        self.causality -= edge_violation(machine, &self.place, &self.time, old_dep, node);
        self.causality += edge_violation(machine, &self.place, &self.time, new_dep, node);
        let mut dirty_pes = Vec::new();
        for du in [old_dep, new_dep] {
            let lu = Self::recompute_last_use(&self.time, consumers, du);
            if lu != self.last_use[du] {
                self.last_use[du] = lu;
                dirty_pes.push(self.place[du]);
            }
            self.dirty.push(du);
        }
        dirty_pes.sort_unstable();
        dirty_pes.dedup();
        for pe in dirty_pes {
            self.refresh_peak(graph, machine, pe);
        }
    }

    /// The tile capacity changed: peaks and energies are capacity-
    /// independent, only the over-capacity count moves.
    fn repair_resize(&mut self, machine: &MachineConfig) {
        self.storage_over = self
            .peaks
            .values()
            .filter(|&&p| p > machine.tile_bits)
            .count() as u64;
    }

    /// Recost stale leaves, reusing the pool's def→use scratch buffer.
    /// Called only when the candidate is legal.
    fn flush(&mut self, ev: &Evaluator<'_>, consumers: &[Vec<NodeId>], pes: &mut Vec<(i64, i64)>) {
        if self.dirty.is_empty() {
            return;
        }
        self.dirty.sort_unstable();
        self.dirty.dedup();
        for idx in std::mem::take(&mut self.dirty) {
            let c = ev.node_cost_in(idx, &self.place, &consumers[idx], pes);
            self.leaves[idx] = c;
            self.tree.update(idx, c);
        }
    }
}

/// A pool of candidate mappings kept evaluable across structural edits.
///
/// Feed it every [`AppliedEdit`] receipt (in order) via [`Self::apply`];
/// [`Self::evaluate`] then returns, for any candidate, exactly what
/// [`crate::search::evaluate_candidate`] would return against the
/// *current* graph and machine — same [`CandidateEval`] variant, same
/// violation count, bit-identical report and score — without re-walking
/// the graph when incremental repair sufficed.
///
/// The evaluator passed to [`Self::new`], [`Self::apply`], and
/// [`Self::evaluate`] must be configured identically each time (same
/// input placements, writeback, multicast) and must wrap the graph and
/// machine as evolved *only* through the applied edits.
pub struct DeltaCandidates {
    mappings: Vec<Mapping>,
    /// Shared consumer index of the current graph.
    consumers: Vec<Vec<NodeId>>,
    /// Nodes with no domain index — any makes affine candidates
    /// unresolvable.
    unindexed: usize,
    /// Refcount of DRAM-placed input reads per distinct element; the
    /// key count is the off-chip fetch count.
    dram_refs: HashMap<(u32, u32), u32>,
    /// Nodes marked as outputs.
    marked_outputs: u64,
    /// Nodes with at least one consumer (`len - nonsink` = sink count,
    /// the writeback set when nothing is marked).
    nonsink: u64,
    graph_len: usize,
    /// One cached state per candidate; `None` = unresolvable now, or
    /// invalidated and awaiting a lazy cold rebuild.
    states: Vec<Option<CandState>>,
    rebuilds: u64,
    /// Reusable def→use scratch threaded through leaf flushes, so warm
    /// re-evaluations (the `tune_warm` path) stop allocating per stale
    /// leaf.
    pes_scratch: Vec<(i64, i64)>,
}

impl DeltaCandidates {
    /// Build the pool, eagerly caching state for every candidate that
    /// resolves against the evaluator's current graph and machine.
    pub fn new(ev: &Evaluator<'_>, mappings: Vec<Mapping>) -> Self {
        let graph = ev.graph();
        let machine = ev.machine();
        let consumers = graph.consumers();
        let unindexed = graph.nodes.iter().filter(|n| n.index.is_empty()).count();
        let mut dram_refs: HashMap<(u32, u32), u32> = HashMap::new();
        for n in &graph.nodes {
            for (input, flat) in n.expr.input_reads() {
                if ev.dram_input(input) {
                    *dram_refs.entry((input, flat)).or_insert(0) += 1;
                }
            }
        }
        let marked_outputs = graph.nodes.iter().filter(|n| n.output).count() as u64;
        let nonsink = consumers.iter().filter(|c| !c.is_empty()).count() as u64;
        let states = mappings
            .iter()
            .map(|m| {
                m.resolve(graph, machine)
                    .ok()
                    .map(|rm| CandState::build(ev, &rm, &consumers))
            })
            .collect();
        DeltaCandidates {
            mappings,
            consumers,
            unindexed,
            dram_refs,
            marked_outputs,
            nonsink,
            graph_len: graph.len(),
            states,
            rebuilds: 0,
            pes_scratch: Vec::new(),
        }
    }

    /// Number of candidates in the pool.
    pub fn len(&self) -> usize {
        self.mappings.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.mappings.is_empty()
    }

    /// How many candidates have been rebuilt cold at evaluation time
    /// because an edit invalidated their cached state. Zero across an
    /// edit/evaluate cycle means every evaluation was served warm.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Whether candidate `i`'s mapping resolves against the current
    /// graph — the same predicate as `Mapping::resolve`, answered from
    /// maintained counters.
    fn resolvable(&self, i: usize) -> bool {
        match &self.mappings[i] {
            Mapping::Affine(_) => self.unindexed == 0,
            Mapping::Table(t) => t.place.len() == self.graph_len && t.time.len() == self.graph_len,
        }
    }

    /// Fold one applied edit into the shared indexes and every cached
    /// candidate state. `ev` must wrap the *post-edit* graph/machine.
    pub fn apply(&mut self, ev: &Evaluator<'_>, edit: &AppliedEdit) {
        let graph = ev.graph();
        match edit {
            AppliedEdit::AddNode { id } => {
                let node = &graph.nodes[*id as usize];
                self.consumers.push(Vec::new());
                for &d in &node.deps {
                    let du = d as usize;
                    if self.consumers[du].is_empty() {
                        self.nonsink += 1;
                    }
                    // The new id is the largest: order is preserved.
                    self.consumers[du].push(*id);
                }
                if node.index.is_empty() {
                    self.unindexed += 1;
                }
                for (input, flat) in node.expr.input_reads() {
                    if ev.dram_input(input) {
                        *self.dram_refs.entry((input, flat)).or_insert(0) += 1;
                    }
                }
                if node.output {
                    self.marked_outputs += 1;
                }
                self.graph_len += 1;
            }
            AppliedEdit::RemoveNode { node, .. } => {
                if node.index.is_empty() {
                    self.unindexed -= 1;
                }
                for (input, flat) in node.expr.input_reads() {
                    if ev.dram_input(input) {
                        match self.dram_refs.get_mut(&(input, flat)) {
                            Some(c) if *c > 1 => *c -= 1,
                            Some(_) => {
                                self.dram_refs.remove(&(input, flat));
                            }
                            None => panic!("DRAM refcount underflow"),
                        }
                    }
                }
                if node.output {
                    self.marked_outputs -= 1;
                }
                self.graph_len -= 1;
                // Compaction renumbers entries in every list; rebuild.
                self.consumers = graph.consumers();
                self.nonsink = self.consumers.iter().filter(|c| !c.is_empty()).count() as u64;
            }
            AppliedEdit::RetargetEdge {
                node,
                old_dep,
                new_dep,
                ..
            } => {
                if old_dep != new_dep {
                    let ou = *old_dep as usize;
                    let pos = self.consumers[ou]
                        .binary_search(node)
                        .expect("retargeted consumer recorded on old producer");
                    self.consumers[ou].remove(pos);
                    if self.consumers[ou].is_empty() {
                        self.nonsink -= 1;
                    }
                    let nu = *new_dep as usize;
                    if self.consumers[nu].is_empty() {
                        self.nonsink += 1;
                    }
                    let pos = match self.consumers[nu].binary_search(node) {
                        Ok(p) | Err(p) => p,
                    };
                    self.consumers[nu].insert(pos, *node);
                }
            }
            AppliedEdit::ResizeTile { .. } => {}
        }
        debug_assert_eq!(self.graph_len, graph.len(), "edits applied out of order");

        for i in 0..self.mappings.len() {
            if !self.resolvable(i) {
                self.states[i] = None;
                continue;
            }
            let Some(state) = self.states[i].as_mut() else {
                // Invalidated earlier; rebuilt lazily at evaluation.
                continue;
            };
            match edit {
                AppliedEdit::AddNode { id } => {
                    let Mapping::Affine(am) = &self.mappings[i] else {
                        unreachable!("a length change drops table candidates")
                    };
                    let idu = *id as usize;
                    let n = &graph.nodes[idu];
                    let pe = am.place.eval(&n.index, ev.machine().cols);
                    let t = am.time.eval(&n.index);
                    state.repair_add(ev, idu, pe, t);
                }
                AppliedEdit::RemoveNode { id, node } => {
                    state.repair_remove(ev, &self.consumers, *id as usize, node);
                }
                AppliedEdit::RetargetEdge {
                    node,
                    old_dep,
                    new_dep,
                    ..
                } => {
                    state.repair_retarget(
                        ev,
                        &self.consumers,
                        *node as usize,
                        *old_dep as usize,
                        *new_dep as usize,
                    );
                }
                AppliedEdit::ResizeTile { .. } => {
                    state.repair_resize(ev.machine());
                }
            }
        }
    }

    /// Evaluate candidate `i` against the current graph/machine —
    /// bit-identical to the cold path, cone-sized work when the cached
    /// state survived the edits since the last call.
    pub fn evaluate(&mut self, i: usize, ev: &Evaluator<'_>, fom: FigureOfMerit) -> CandidateEval {
        if !self.resolvable(i) {
            self.states[i] = None;
            return CandidateEval::Unresolvable;
        }
        if self.states[i].is_none() {
            let rm = self.mappings[i]
                .resolve(ev.graph(), ev.machine())
                .expect("resolvable candidate must resolve");
            self.states[i] = Some(CandState::build(ev, &rm, &self.consumers));
            self.rebuilds += 1;
        }
        let state = self.states[i].as_mut().expect("state just ensured");
        let total = state.total();
        if total > 0 {
            return CandidateEval::Illegal(total);
        }
        state.flush(ev, &self.consumers, &mut self.pes_scratch);
        let cycles = state.time_hist.keys().next_back().map_or(0, |&t| t + 1);
        let peak = state.peak_hist.keys().next_back().copied().unwrap_or(0);
        let writeback = if ev.writeback_on() {
            if self.marked_outputs > 0 {
                self.marked_outputs
            } else {
                self.graph_len as u64 - self.nonsink
            }
        } else {
            0
        };
        let off = ev.offchip_from_count(self.dram_refs.len() as u64 + writeback);
        let report = ev.assemble(state.tree.total(), &off, cycles, peak, state.pe_nodes.len());
        let score = ev.score(fom, &report);
        CandidateEval::Legal {
            resolved: ResolvedMapping {
                place: state.place.clone(),
                time: state.time.clone(),
            },
            report,
            score,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::CExpr;
    use crate::legality::{check, LegalityError};
    use crate::search::retime;
    use crate::value::Value;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// A layered random DAG: `n` nodes, each depending on up to two
    /// earlier ones.
    fn random_dag(n: u32, seed: u64) -> DataflowGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = DataflowGraph::new("dag", 32);
        for i in 0..n {
            let ndeps = rng.random_range(0..=2.min(i));
            let mut deps = Vec::new();
            for _ in 0..ndeps {
                deps.push(rng.random_range(0..i));
            }
            deps.sort_unstable();
            deps.dedup();
            let expr = match deps.len() {
                0 => CExpr::konst(Value::real(1.0)),
                1 => CExpr::dep(0),
                _ => CExpr::dep(0).add(CExpr::dep(1)),
            };
            let id = g.add_node(expr, deps, vec![i as i64]);
            if i % 7 == 0 {
                g.mark_output(id);
            }
        }
        g
    }

    #[test]
    fn random_moves_stay_bit_exact() {
        let g = random_dag(60, 3);
        let m = MachineConfig::n5(3, 3);
        let ev = Evaluator::new(&g, &m);
        let init = crate::search::default_mapper(&g, &m);
        let mut delta = DeltaEvaluator::new(&ev, &init.place);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..120 {
            let node = rng.random_range(0..g.len());
            let pe = (rng.random_range(0..3i64), rng.random_range(0..3i64));
            delta.apply_move(node, pe);
            // apply_move already asserts parity in debug builds; check
            // explicitly so release test runs verify too.
            delta.assert_parity();
        }
    }

    #[test]
    fn same_pe_move_is_a_noop() {
        let g = random_dag(20, 1);
        let m = MachineConfig::n5(2, 2);
        let ev = Evaluator::new(&g, &m);
        let init = crate::search::default_mapper(&g, &m);
        let mut delta = DeltaEvaluator::new(&ev, &init.place);
        let before = delta.report();
        let pe = delta.place_of(5);
        delta.apply_move(5, pe);
        assert_eq!(before, delta.report());
    }

    #[test]
    fn reverse_move_restores_the_exact_report() {
        let g = random_dag(40, 5);
        let m = MachineConfig::n5(3, 2);
        let ev = Evaluator::new(&g, &m);
        let init = crate::search::default_mapper(&g, &m);
        let mut delta = DeltaEvaluator::new(&ev, &init.place);
        let before = delta.report();
        let old = delta.place_of(11);
        let target = if old == (0, 0) { (1, 0) } else { (0, 0) };
        delta.apply_move(11, target);
        delta.apply_move(11, old);
        assert_eq!(before, delta.report());
        assert_eq!(delta.mapping(), retime(&g, &init.place, &m));
    }

    #[test]
    fn undo_restores_the_exact_state_without_rescheduling() {
        let g = random_dag(40, 6);
        let m = MachineConfig::n5(3, 2);
        let ev = Evaluator::new(&g, &m);
        let init = crate::search::default_mapper(&g, &m);
        let mut delta = DeltaEvaluator::new(&ev, &init.place);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..30 {
            let before_rm = delta.mapping();
            let before_rep = delta.report();
            let node = rng.random_range(0..g.len());
            let pe = (rng.random_range(0..3i64), rng.random_range(0..2i64));
            delta.apply_move(node, pe);
            delta.undo();
            assert_eq!(before_rm, delta.mapping());
            assert_eq!(before_rep, delta.report());
            // A second undo (journal drained) is a no-op.
            delta.undo();
            assert_eq!(before_rep, delta.report());
            // Leave some moves applied so later rounds start elsewhere.
            if rng.random::<f64>() < 0.5 {
                delta.apply_move(node, pe);
            }
        }
    }

    #[test]
    fn storage_violations_match_full_legality_check() {
        let g = random_dag(50, 8);
        let mut m = MachineConfig::n5(2, 2);
        m.tile_bits = 4 * 32; // tiny tiles: hoarding PEs go over
        m.issue_width = 64; // keep issue legal while we pile nodes up
        let ev = Evaluator::new(&g, &m);
        let init = crate::search::default_mapper(&g, &m);
        let mut delta = DeltaEvaluator::new(&ev, &init.place);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..60 {
            let node = rng.random_range(0..g.len());
            let pe = (rng.random_range(0..2i64), rng.random_range(0..2i64));
            delta.apply_move(node, pe);
            let rm = delta.mapping();
            let rep = check(&g, &rm, &m);
            let storage = rep
                .errors
                .iter()
                .filter(|e| matches!(e, LegalityError::StorageExceeded { .. }))
                .count() as u64;
            // The checker caps recorded errors at 64; with 4 PEs we are
            // far below the cap, so counts are exact.
            assert_eq!(delta.storage_violations(), storage);
        }
    }

    #[test]
    fn report_matches_evaluator_with_multicast_and_local_inputs() {
        use crate::affine::IdxExpr;
        use crate::mapping::{InputPlacement, PlaceExpr};
        let mut g = DataflowGraph::new("mc", 32);
        let x = g.add_input("X", vec![8]);
        let src = g.add_node(CExpr::input(x, 0), vec![], vec![0]);
        for i in 1..8i64 {
            let id = g.add_node(
                CExpr::dep(0).add(CExpr::input(x, i as u32)),
                vec![src],
                vec![i],
            );
            if i == 7 {
                g.mark_output(id);
            }
        }
        let m = MachineConfig::n5(4, 2);
        let ev = Evaluator::new(&g, &m)
            .with_multicast(true)
            .with_input_placement(0, InputPlacement::Local(PlaceExpr::row0(IdxExpr::c(0))))
            .with_writeback(true);
        let init = crate::search::default_mapper(&g, &m);
        let mut delta = DeltaEvaluator::new(&ev, &init.place);
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..40 {
            let node = rng.random_range(0..g.len());
            let pe = (rng.random_range(0..4i64), rng.random_range(0..2i64));
            delta.apply_move(node, pe);
            delta.assert_parity();
        }
    }

    #[test]
    fn empty_graph_reports_zero() {
        let g = DataflowGraph::new("empty", 32);
        let m = MachineConfig::linear(2);
        let ev = Evaluator::new(&g, &m);
        let delta = DeltaEvaluator::new(&ev, &[]);
        let rep = delta.report();
        assert_eq!(rep.cycles, 0);
        assert_eq!(rep.pes_used, 0);
        assert_eq!(delta.storage_violations(), 0);
    }

    // ------------------------------------------------------------------
    // DeltaCandidates: structural-edit repair parity.
    // ------------------------------------------------------------------

    use crate::affine::IdxExpr;
    use crate::mapping::{AffineMap, LinearOrder, Mapping, PlaceExpr};
    use crate::mutate::{apply_edit, GraphEdit};
    use crate::search::{evaluate_candidate, CandidateEval, FigureOfMerit, MappingCandidate};

    fn assert_same_eval(warm: &CandidateEval, cold: &CandidateEval, ctx: &str) {
        match (warm, cold) {
            (CandidateEval::Unresolvable, CandidateEval::Unresolvable) => {}
            (CandidateEval::Illegal(a), CandidateEval::Illegal(b)) => {
                assert_eq!(a, b, "violation counts differ: {ctx}");
            }
            (
                CandidateEval::Legal {
                    resolved: ra,
                    report: pa,
                    score: sa,
                },
                CandidateEval::Legal {
                    resolved: rb,
                    report: pb,
                    score: sb,
                },
            ) => {
                assert_eq!(ra, rb, "resolved mappings differ: {ctx}");
                assert_eq!(pa, pb, "reports differ: {ctx}");
                assert_eq!(
                    sa.to_bits(),
                    sb.to_bits(),
                    "scores not bit-identical: {ctx}"
                );
            }
            _ => panic!("variant mismatch ({ctx}): warm {warm:?} vs cold {cold:?}"),
        }
    }

    /// The candidate mix every parity test drives: one that goes
    /// off-grid on big graphs, one causality-tight, one always legal
    /// (times spread past the grid diameter), and a fixed table.
    fn candidate_mix(g: &DataflowGraph) -> Vec<Mapping> {
        vec![
            Mapping::Affine(AffineMap {
                place: PlaceExpr::Linear {
                    id: IdxExpr::i(),
                    order: LinearOrder::RowMajor,
                },
                time: IdxExpr::i(),
            }),
            Mapping::Affine(AffineMap {
                place: PlaceExpr::row0(IdxExpr::i() % 3),
                time: IdxExpr::i(),
            }),
            Mapping::Affine(AffineMap {
                place: PlaceExpr::row0(IdxExpr::i() % 3),
                time: IdxExpr::i() * 4,
            }),
            Mapping::serial(g),
        ]
    }

    fn random_edit(rng: &mut StdRng, g: &DataflowGraph, next_idx: &mut i64) -> GraphEdit {
        loop {
            match rng.random_range(0..10u32) {
                0..=3 => {
                    let n = g.len() as u32;
                    let (expr, deps) = if n == 0 || rng.random_range(0..4u32) == 0 {
                        (CExpr::konst(Value::real(1.0)), vec![])
                    } else if n == 1 || rng.random_range(0..2u32) == 0 {
                        (CExpr::dep(0), vec![rng.random_range(0..n)])
                    } else {
                        let a = rng.random_range(0..n);
                        let b = rng.random_range(0..n);
                        (CExpr::dep(0).add(CExpr::dep(1)), vec![a.min(b), a.max(b)])
                    };
                    *next_idx += 1;
                    return GraphEdit::AddNode {
                        expr,
                        deps,
                        index: vec![*next_idx],
                        output: rng.random_range(0..5u32) == 0,
                    };
                }
                4..=5 => {
                    let cons = g.consumers();
                    let sinks: Vec<u32> = (0..g.len() as u32)
                        .filter(|&i| cons[i as usize].is_empty())
                        .collect();
                    if sinks.is_empty() {
                        continue;
                    }
                    return GraphEdit::RemoveNode {
                        id: sinks[rng.random_range(0..sinks.len())],
                    };
                }
                6..=8 => {
                    let with_deps: Vec<u32> = g
                        .nodes
                        .iter()
                        .enumerate()
                        .filter(|(_, n)| !n.deps.is_empty())
                        .map(|(i, _)| i as u32)
                        .collect();
                    if with_deps.is_empty() {
                        continue;
                    }
                    let node = with_deps[rng.random_range(0..with_deps.len())];
                    let slot = rng.random_range(0..g.nodes[node as usize].deps.len() as u32);
                    return GraphEdit::RetargetEdge {
                        node,
                        slot,
                        new_dep: rng.random_range(0..node),
                    };
                }
                _ => {
                    let bits = [4 * 32u64, 1 << 12, 1 << 20];
                    return GraphEdit::ResizeTile {
                        tile_bits: bits[rng.random_range(0..bits.len())],
                    };
                }
            }
        }
    }

    #[test]
    fn random_edit_streams_keep_candidates_bit_exact() {
        for seed in 0..3u64 {
            let mut g = random_dag(30, 11 + seed);
            let mut m = MachineConfig::n5(3, 2);
            let mappings = candidate_mix(&g);
            let mut dc = {
                let ev = Evaluator::new(&g, &m);
                DeltaCandidates::new(&ev, mappings.clone())
            };
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let mut next_idx = g.len() as i64 - 1;
            for step in 0..50 {
                let edit = random_edit(&mut rng, &g, &mut next_idx);
                let receipt = apply_edit(&mut g, &mut m, &edit).expect("generated edits are valid");
                let ev = Evaluator::new(&g, &m);
                dc.apply(&ev, &receipt);
                for (i, mapping) in mappings.iter().enumerate() {
                    let warm = dc.evaluate(i, &ev, FigureOfMerit::Edp);
                    let cold = evaluate_candidate(
                        &ev,
                        &g,
                        &m,
                        &MappingCandidate::new(format!("c{i}"), mapping.clone()),
                        FigureOfMerit::Edp,
                    );
                    assert_same_eval(&warm, &cold, &format!("seed {seed} step {step} cand {i}"));
                }
            }
        }
    }

    #[test]
    fn table_candidates_drop_on_length_change_and_rebuild_lazily() {
        let mut g = random_dag(10, 2);
        let mut m = MachineConfig::n5(2, 2);
        let serial = Mapping::serial(&g);
        let mut dc = {
            let ev = Evaluator::new(&g, &m);
            DeltaCandidates::new(&ev, vec![serial.clone()])
        };
        let add = GraphEdit::AddNode {
            expr: CExpr::konst(Value::real(2.0)),
            deps: vec![],
            index: vec![10],
            output: false,
        };
        let r = apply_edit(&mut g, &mut m, &add).unwrap();
        let added = match r {
            AppliedEdit::AddNode { id } => id,
            _ => unreachable!(),
        };
        {
            let ev = Evaluator::new(&g, &m);
            dc.apply(&ev, &r);
            assert!(matches!(
                dc.evaluate(0, &ev, FigureOfMerit::Energy),
                CandidateEval::Unresolvable
            ));
            assert_eq!(dc.rebuilds(), 0, "unresolvable is not a rebuild");
        }
        let r = apply_edit(&mut g, &mut m, &GraphEdit::RemoveNode { id: added }).unwrap();
        let ev = Evaluator::new(&g, &m);
        dc.apply(&ev, &r);
        let warm = dc.evaluate(0, &ev, FigureOfMerit::Energy);
        let cold = evaluate_candidate(
            &ev,
            &g,
            &m,
            &MappingCandidate::new("serial", serial),
            FigureOfMerit::Energy,
        );
        assert_same_eval(&warm, &cold, "table restored to matching length");
        assert_eq!(dc.rebuilds(), 1, "length restored via one cold rebuild");
    }

    #[test]
    fn unindexed_node_cold_rebuilds_affine_candidates() {
        let mut g = random_dag(12, 3);
        let mut m = MachineConfig::n5(3, 2);
        let affine = Mapping::Affine(AffineMap {
            place: PlaceExpr::row0(IdxExpr::i() % 3),
            time: IdxExpr::i() * 4,
        });
        let mut dc = {
            let ev = Evaluator::new(&g, &m);
            DeltaCandidates::new(&ev, vec![affine.clone()])
        };
        // An irregular (index-less) node makes every affine candidate
        // unresolvable.
        let add = GraphEdit::AddNode {
            expr: CExpr::konst(Value::real(1.0)),
            deps: vec![],
            index: vec![],
            output: false,
        };
        let r = apply_edit(&mut g, &mut m, &add).unwrap();
        let added = match r {
            AppliedEdit::AddNode { id } => id,
            _ => unreachable!(),
        };
        {
            let ev = Evaluator::new(&g, &m);
            dc.apply(&ev, &r);
            assert!(matches!(
                dc.evaluate(0, &ev, FigureOfMerit::Edp),
                CandidateEval::Unresolvable
            ));
        }
        let r = apply_edit(&mut g, &mut m, &GraphEdit::RemoveNode { id: added }).unwrap();
        let ev = Evaluator::new(&g, &m);
        dc.apply(&ev, &r);
        let warm = dc.evaluate(0, &ev, FigureOfMerit::Edp);
        let cold = evaluate_candidate(
            &ev,
            &g,
            &m,
            &MappingCandidate::new("affine", affine),
            FigureOfMerit::Edp,
        );
        assert_same_eval(&warm, &cold, "affine resolvable again");
        assert_eq!(dc.rebuilds(), 1);
    }

    #[test]
    fn resize_repair_stays_warm_through_an_illegal_excursion() {
        let mut g = random_dag(20, 4);
        let mut m = MachineConfig::n5(3, 2);
        let affine = Mapping::Affine(AffineMap {
            place: PlaceExpr::row0(IdxExpr::i() % 3),
            time: IdxExpr::i() * 4,
        });
        let old_bits = m.tile_bits;
        let mut dc = {
            let ev = Evaluator::new(&g, &m);
            DeltaCandidates::new(&ev, vec![affine.clone()])
        };
        let check_parity = |dc: &mut DeltaCandidates, g: &DataflowGraph, m: &MachineConfig, ctx| {
            let ev = Evaluator::new(g, m);
            let warm = dc.evaluate(0, &ev, FigureOfMerit::Footprint);
            let cold = evaluate_candidate(
                &ev,
                g,
                m,
                &MappingCandidate::new("affine", affine.clone()),
                FigureOfMerit::Footprint,
            );
            assert_same_eval(&warm, &cold, ctx);
            warm
        };
        assert!(matches!(
            check_parity(&mut dc, &g, &m, "before resize"),
            CandidateEval::Legal { .. }
        ));
        // Shrink tiles far below any peak: storage violations appear.
        let r = apply_edit(&mut g, &mut m, &GraphEdit::ResizeTile { tile_bits: 1 }).unwrap();
        {
            let ev = Evaluator::new(&g, &m);
            dc.apply(&ev, &r);
        }
        assert!(matches!(
            check_parity(&mut dc, &g, &m, "tiny tiles"),
            CandidateEval::Illegal(_)
        ));
        // Restore: legal again, and never rebuilt cold along the way.
        let r = apply_edit(
            &mut g,
            &mut m,
            &GraphEdit::ResizeTile {
                tile_bits: old_bits,
            },
        )
        .unwrap();
        {
            let ev = Evaluator::new(&g, &m);
            dc.apply(&ev, &r);
        }
        assert!(matches!(
            check_parity(&mut dc, &g, &m, "restored tiles"),
            CandidateEval::Legal { .. }
        ));
        assert_eq!(dc.rebuilds(), 0, "resize round-trip repaired warm");
    }

    #[test]
    fn dram_and_writeback_counters_stay_exact_under_edits() {
        let mut g = DataflowGraph::new("io", 32);
        let x = g.add_input("X", vec![8]);
        g.add_node(CExpr::input(x, 0), vec![], vec![0]);
        g.add_node(CExpr::input(x, 1).add(CExpr::input(x, 0)), vec![], vec![1]);
        let mut m = MachineConfig::n5(3, 2);
        let affine = Mapping::Affine(AffineMap {
            place: PlaceExpr::row0(IdxExpr::i() % 3),
            time: IdxExpr::i() * 4,
        });
        // Must be configured identically on every call.
        fn make_ev<'a>(g: &'a DataflowGraph, m: &'a MachineConfig) -> Evaluator<'a> {
            Evaluator::new(g, m).with_writeback(true)
        }
        let mut dc = {
            let ev = make_ev(&g, &m);
            DeltaCandidates::new(&ev, vec![affine.clone()])
        };
        let mut rng = StdRng::seed_from_u64(77);
        let mut next_idx = 1i64;
        for step in 0..40 {
            let edit = if g.len() < 3 || rng.random_range(0..3u32) > 0 {
                let n = g.len() as u32;
                let elem = rng.random_range(0..8u32);
                let (expr, deps) = if rng.random_range(0..2u32) == 0 {
                    (CExpr::input(x, elem), vec![])
                } else {
                    (
                        CExpr::input(x, elem).add(CExpr::dep(0)),
                        vec![rng.random_range(0..n)],
                    )
                };
                next_idx += 1;
                GraphEdit::AddNode {
                    expr,
                    deps,
                    index: vec![next_idx],
                    output: rng.random_range(0..3u32) == 0,
                }
            } else {
                let cons = g.consumers();
                let sinks: Vec<u32> = (0..g.len() as u32)
                    .filter(|&i| cons[i as usize].is_empty())
                    .collect();
                GraphEdit::RemoveNode {
                    id: sinks[rng.random_range(0..sinks.len())],
                }
            };
            let receipt = apply_edit(&mut g, &mut m, &edit).expect("valid edit");
            let ev = make_ev(&g, &m);
            dc.apply(&ev, &receipt);
            let warm = dc.evaluate(0, &ev, FigureOfMerit::Energy);
            let cold = evaluate_candidate(
                &ev,
                &g,
                &m,
                &MappingCandidate::new("affine", affine.clone()),
                FigureOfMerit::Energy,
            );
            assert_same_eval(&warm, &cold, &format!("io step {step}"));
        }
    }
}
