//! Mapping-space search.
//!
//! "For each function there are many possible mappings that range from
//! completely serial to minimum-depth parallel with many points
//! between. One can systematically search the space of possible
//! mappings to optimize a given figure of merit: execution time, energy
//! per op, memory footprint, or some combination."
//!
//! Three engines:
//!
//! * [`search`] — exhaustive evaluation of an explicit candidate list
//!   (a *mapping family*), keeping every legal result, the best under a
//!   [`FigureOfMerit`], and the time/energy Pareto front;
//! * [`default_mapper`] — the paper's "default mapper" for programmers
//!   who "don't want to bother with mapping": a greedy list scheduler
//!   that places each element where it becomes ready earliest,
//!   producing a legal table mapping for *any* graph;
//! * [`anneal`] — a simulated-annealing refiner over placements (times
//!   re-derived by list scheduling), for irregular graphs where no
//!   affine family applies.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::cost::{CostReport, Evaluator};
use crate::dataflow::DataflowGraph;
use crate::delta::DeltaEvaluator;
use crate::legality::check;
use crate::machine::MachineConfig;
use crate::mapping::{Mapping, ResolvedMapping};

/// What to optimize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FigureOfMerit {
    /// Execution time (ps).
    Time,
    /// Total energy (fJ).
    Energy,
    /// Energy-delay product.
    Edp,
    /// Peak tile footprint (bits).
    Footprint,
}

impl FigureOfMerit {
    /// Scalar score (lower is better).
    pub fn score(self, r: &CostReport) -> f64 {
        match self {
            FigureOfMerit::Time => r.time_ps.raw(),
            FigureOfMerit::Energy => r.energy().raw(),
            FigureOfMerit::Edp => r.edp(),
            FigureOfMerit::Footprint => r.peak_tile_bits as f64,
        }
    }
}

/// A named candidate mapping.
#[derive(Debug, Clone)]
pub struct MappingCandidate {
    /// Label for reports (e.g. `"P=8 skewed"`).
    pub label: String,
    /// The mapping.
    pub mapping: Mapping,
}

impl MappingCandidate {
    /// Construct.
    pub fn new(label: impl Into<String>, mapping: Mapping) -> Self {
        MappingCandidate {
            label: label.into(),
            mapping,
        }
    }
}

/// A family of candidate mappings. Kernel crates implement this for
/// their recurrences (e.g. "anti-diagonal with P ∈ {1,2,4,…}, skew ∈
/// {paper, corrected}").
pub trait MappingFamily {
    /// Enumerate the family.
    fn candidates(&self, machine: &MachineConfig) -> Vec<MappingCandidate>;
}

/// One evaluated legal mapping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchResult {
    /// Candidate label.
    pub label: String,
    /// Cost report.
    pub report: CostReport,
    /// Score under the search's figure of merit (lower is better).
    pub score: f64,
}

/// The outcome of a search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// Candidates evaluated.
    pub evaluated: usize,
    /// Candidates that were legal.
    pub legal: usize,
    /// Labels of illegal candidates (with violation counts).
    pub rejected: Vec<(String, u64)>,
    /// Legal results sorted by ascending score.
    pub results: Vec<SearchResult>,
    /// Indices into `results` forming the time/energy Pareto front,
    /// sorted by ascending time.
    pub pareto: Vec<usize>,
}

impl SearchOutcome {
    /// The best legal result, if any.
    pub fn best(&self) -> Option<&SearchResult> {
        self.results.first()
    }
}

/// The outcome of evaluating one candidate in isolation: the pure
/// resolve → legality-check → cost step that [`search`] runs per
/// candidate, exposed so callers (e.g. the `fm-autotune` tuner) can fan
/// candidates across threads and still assemble a [`SearchOutcome`]
/// identical to the serial one via [`assemble_outcome`].
#[derive(Debug, Clone, PartialEq)]
pub enum CandidateEval {
    /// Legal: the resolved mapping, its cost report, and its score.
    Legal {
        /// The fully resolved (table) mapping.
        resolved: ResolvedMapping,
        /// The evaluator's cost report.
        report: CostReport,
        /// Score under the figure of merit (lower is better).
        score: f64,
    },
    /// The mapping failed to resolve on this machine.
    Unresolvable,
    /// The mapping resolved but violated legality (violation count).
    Illegal(u64),
}

/// Evaluate a single candidate: resolve, legality-check, cost.
///
/// Pure in the sense that it reads only its arguments, so calls for
/// distinct candidates may run concurrently.
pub fn evaluate_candidate(
    evaluator: &Evaluator<'_>,
    graph: &DataflowGraph,
    machine: &MachineConfig,
    candidate: &MappingCandidate,
    fom: FigureOfMerit,
) -> CandidateEval {
    let rm = match candidate.mapping.resolve(graph, machine) {
        Ok(rm) => rm,
        Err(_) => return CandidateEval::Unresolvable,
    };
    let rep = check(graph, &rm, machine);
    if !rep.is_legal() {
        return CandidateEval::Illegal(rep.total_violations);
    }
    let report = evaluator.evaluate(&rm);
    let score = evaluator.score(fom, &report);
    CandidateEval::Legal {
        resolved: rm,
        report,
        score,
    }
}

/// The reference (pre-flat-engine) candidate evaluation: resolve with
/// fresh buffers, `HashMap`-based legality, and the per-call
/// leaf-rebuild cost path (`Evaluator::evaluate_ref`). Kept as the
/// bit-exactness oracle for the flat engine's debug asserts, parity
/// tests, and the E22 baseline arm — not a hot path.
#[doc(hidden)]
pub fn evaluate_candidate_ref(
    evaluator: &Evaluator<'_>,
    graph: &DataflowGraph,
    machine: &MachineConfig,
    candidate: &MappingCandidate,
    fom: FigureOfMerit,
) -> CandidateEval {
    let rm = match candidate.mapping.resolve(graph, machine) {
        Ok(rm) => rm,
        Err(_) => return CandidateEval::Unresolvable,
    };
    let rep = check(graph, &rm, machine);
    if !rep.is_legal() {
        return CandidateEval::Illegal(rep.total_violations);
    }
    let report = evaluator.evaluate_ref(&rm);
    let score = evaluator.score(fom, &report);
    CandidateEval::Legal {
        resolved: rm,
        report,
        score,
    }
}

/// Assemble per-candidate evaluations (in candidate order) into a
/// [`SearchOutcome`]. The sort is stable, so ties on score resolve
/// toward the earlier candidate — the winner does not depend on how the
/// evaluations were computed, only on their order here.
pub fn assemble_outcome(
    candidates: &[MappingCandidate],
    evals: impl IntoIterator<Item = CandidateEval>,
) -> SearchOutcome {
    let mut results = Vec::new();
    let mut rejected = Vec::new();
    for (cand, eval) in candidates.iter().zip(evals) {
        match eval {
            CandidateEval::Legal { report, score, .. } => results.push(SearchResult {
                label: cand.label.clone(),
                report,
                score,
            }),
            CandidateEval::Unresolvable => rejected.push((cand.label.clone(), u64::MAX)),
            CandidateEval::Illegal(violations) => {
                rejected.push((cand.label.clone(), violations));
            }
        }
    }
    results.sort_by(|a, b| a.score.total_cmp(&b.score));
    let pareto = pareto_front(&results);
    SearchOutcome {
        evaluated: candidates.len(),
        legal: results.len(),
        rejected,
        results,
        pareto,
    }
}

/// Exhaustively evaluate a candidate list.
pub fn search(
    evaluator: &Evaluator<'_>,
    graph: &DataflowGraph,
    machine: &MachineConfig,
    candidates: &[MappingCandidate],
    fom: FigureOfMerit,
) -> SearchOutcome {
    assemble_outcome(
        candidates,
        candidates
            .iter()
            .map(|c| evaluate_candidate(evaluator, graph, machine, c, fom)),
    )
}

/// Indices of the time/energy Pareto-optimal results, ascending in time.
fn pareto_front(results: &[SearchResult]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..results.len()).collect();
    idx.sort_by(|&a, &b| {
        results[a]
            .report
            .time_ps
            .raw()
            .total_cmp(&results[b].report.time_ps.raw())
    });
    let mut front = Vec::new();
    let mut best_energy = f64::INFINITY;
    for i in idx {
        let e = results[i].report.energy().raw();
        if e < best_energy {
            best_energy = e;
            front.push(i);
        }
    }
    front
}

/// The default mapper: greedy list scheduling over the grid.
///
/// Visits nodes in topological (id) order; each node is placed on the
/// PE where it can start earliest, considering operand arrival
/// (causality gap from each producer) and PE occupancy; ties break
/// toward the PE with the least operand-movement energy. The result is
/// legal by construction for causality and single-issue occupancy.
pub fn default_mapper(graph: &DataflowGraph, machine: &MachineConfig) -> ResolvedMapping {
    let pes: Vec<(u32, u32)> = (0..machine.rows)
        .flat_map(|y| (0..machine.cols).map(move |x| (x, y)))
        .collect();
    // Next free cycle per PE (single-issue model).
    let mut next_free: Vec<i64> = vec![0; pes.len()];
    let pe_index = |p: (u32, u32)| (p.1 * machine.cols + p.0) as usize;

    let mut place: Vec<(i64, i64)> = Vec::with_capacity(graph.len());
    let mut time: Vec<i64> = Vec::with_capacity(graph.len());

    for (id, n) in graph.nodes.iter().enumerate() {
        // Candidate PEs: producers' PEs, their 4-neighborhoods, and the
        // globally least-loaded PE. Sources consider only the least
        // loaded (spreading independent work).
        let mut cands: Vec<(u32, u32)> = Vec::new();
        for &d in &n.deps {
            let (px, py) = place[d as usize];
            let p = (px as u32, py as u32);
            cands.push(p);
            for (dx, dy) in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)] {
                let (nx, ny) = (px + dx, py + dy);
                if machine.contains(nx, ny) {
                    cands.push((nx as u32, ny as u32));
                }
            }
        }
        let least = (0..pes.len()).min_by_key(|&i| next_free[i]).unwrap();
        cands.push(pes[least]);
        cands.sort_unstable();
        cands.dedup();

        let mut best: Option<((u32, u32), i64, f64)> = None;
        for &pe in &cands {
            let mut ready: i64 = 0;
            let mut move_mm = 0.0;
            for &d in &n.deps {
                let (px, py) = place[d as usize];
                let prod = (px as u32, py as u32);
                let arrive = time[d as usize] + machine.required_gap(prod, pe);
                ready = ready.max(arrive);
                move_mm += machine.distance_mm(prod, pe);
            }
            let start = ready.max(next_free[pe_index(pe)]);
            let better = match &best {
                None => true,
                Some((_, bt, bm)) => start < *bt || (start == *bt && move_mm < *bm),
            };
            if better {
                best = Some((pe, start, move_mm));
            }
        }
        let (pe, start, _) = best.expect("at least one candidate PE");
        next_free[pe_index(pe)] = start + 1;
        place.push((i64::from(pe.0), i64::from(pe.1)));
        time.push(start);
        let _ = id;
    }

    ResolvedMapping { place, time }
}

/// List-schedule *times* for fixed placements: each node starts at the
/// earliest cycle satisfying causality and single-issue occupancy of
/// its (given) PE. Used by [`anneal`] to re-derive a legal schedule
/// after moving nodes.
pub fn retime(
    graph: &DataflowGraph,
    places: &[(i64, i64)],
    machine: &MachineConfig,
) -> ResolvedMapping {
    use std::collections::HashMap;
    let mut busy: HashMap<(i64, i64), Vec<i64>> = HashMap::new(); // sorted busy cycles per PE
    let mut time: Vec<i64> = Vec::with_capacity(graph.len());
    for (id, n) in graph.nodes.iter().enumerate() {
        let pe = places[id];
        let pe_u = (pe.0 as u32, pe.1 as u32);
        let mut ready = 0i64;
        for &d in &n.deps {
            let prod = places[d as usize];
            let prod_u = (prod.0 as u32, prod.1 as u32);
            ready = ready.max(time[d as usize] + machine.required_gap(prod_u, pe_u));
        }
        let slots = busy.entry(pe).or_default();
        // Find first cycle ≥ ready not already taken (slots kept sorted).
        let mut t = ready;
        let mut pos = slots.partition_point(|&s| s < ready);
        while pos < slots.len() && slots[pos] == t {
            t += 1;
            pos += 1;
        }
        slots.insert(pos, t);
        time.push(t);
    }
    ResolvedMapping {
        place: places.to_vec(),
        time,
    }
}

/// Which evaluation engine [`anneal_with`] drives. Both produce the
/// identical (mapping, report) for the same inputs and seed — the
/// incremental backend just does cone-sized work per move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnealBackend {
    /// Re-derive the full schedule and re-cost the whole graph per move.
    Full,
    /// Repair cached state through [`DeltaEvaluator`]: O(Δ) per move.
    Incremental,
}

/// Storage-violation count of a mapping, as the incremental engine
/// tracks it: PEs whose peak live bits exceed the tile capacity.
fn full_violations(graph: &DataflowGraph, machine: &MachineConfig, rm: &ResolvedMapping) -> u64 {
    let peaks = crate::legality::tile_peaks(graph, rm, rm.makespan());
    crate::legality::storage_violation_count(&peaks, machine.tile_bits)
}

/// The annealer's evaluation engine. One enum (rather than two loops)
/// so both backends consume the *same* RNG stream and make the same
/// accept/reject decisions — that is what makes backend parity testable
/// bit-for-bit.
// One Engine lives per anneal() call, on the stack, never in a
// collection — the Full/Inc size asymmetry is harmless.
#[allow(clippy::large_enum_variant)]
enum Engine<'e, 'a> {
    Full {
        ev: &'e Evaluator<'a>,
        graph: &'a DataflowGraph,
        machine: &'a MachineConfig,
        places: Vec<(i64, i64)>,
        rm: ResolvedMapping,
        report: CostReport,
        violations: u64,
        /// Pre-move (rm, report, violations), for O(1) revert.
        stash: Option<(ResolvedMapping, CostReport, u64)>,
    },
    Inc(Box<DeltaEvaluator<'e, 'a>>),
}

impl Engine<'_, '_> {
    fn place_of(&self, node: usize) -> (i64, i64) {
        match self {
            Engine::Full { places, .. } => places[node],
            Engine::Inc(d) => d.place_of(node),
        }
    }

    fn violations(&self) -> u64 {
        match self {
            Engine::Full { violations, .. } => *violations,
            Engine::Inc(d) => d.storage_violations(),
        }
    }

    fn score(&self, fom: FigureOfMerit) -> f64 {
        match self {
            Engine::Full { ev, report, .. } => ev.score(fom, report),
            Engine::Inc(d) => d.score(fom),
        }
    }

    fn snapshot(&self) -> (ResolvedMapping, CostReport) {
        match self {
            Engine::Full { rm, report, .. } => (rm.clone(), report.clone()),
            Engine::Inc(d) => (d.mapping(), d.report()),
        }
    }

    fn apply(&mut self, node: usize, pe: (i64, i64)) {
        match self {
            Engine::Full {
                ev,
                graph,
                machine,
                places,
                rm,
                report,
                violations,
                stash,
            } => {
                places[node] = pe;
                let new_rm = retime(graph, places, machine);
                let new_report = ev.evaluate(&new_rm);
                let new_viol = full_violations(graph, machine, &new_rm);
                *stash = Some((
                    std::mem::replace(rm, new_rm),
                    std::mem::replace(report, new_report),
                    std::mem::replace(violations, new_viol),
                ));
            }
            Engine::Inc(d) => d.apply_move(node, pe),
        }
    }

    fn revert(&mut self, node: usize, old_pe: (i64, i64)) {
        match self {
            Engine::Full {
                places,
                rm,
                report,
                violations,
                stash,
                ..
            } => {
                places[node] = old_pe;
                let (r, rep, v) = stash.take().expect("revert without a preceding apply");
                *rm = r;
                *report = rep;
                *violations = v;
            }
            // The incremental engine journals each move's overwritten
            // values; replaying the journal restores the prior state
            // without re-running any scheduling.
            Engine::Inc(d) => {
                d.undo();
                debug_assert_eq!(d.place_of(node), old_pe);
            }
        }
    }
}

/// Simulated-annealing placement refiner.
///
/// Starts from `init` placements, proposes single-node moves to random
/// neighboring PEs, re-derives times with [`retime`], and accepts by
/// the Metropolis rule on the figure-of-merit score. A move that would
/// *increase* the storage-violation count is rejected outright, so a
/// legal starting point stays legal. Returns the best mapping found
/// (violations, then score, lexicographically) and its report.
///
/// Candidate directions are drawn from the on-grid neighbor set, so an
/// edge-of-grid node never burns an iteration on an off-grid proposal.
///
/// All randomness flows from the explicit `seed`: the same
/// (inputs, seed) pair always returns the identical mapping and
/// report, so annealed results are reproducible and cacheable (the
/// `fm-autotune` tuning cache relies on this).
///
/// Uses the incremental [`DeltaEvaluator`] engine; see [`anneal_with`]
/// to select a backend explicitly.
pub fn anneal(
    evaluator: &Evaluator<'_>,
    graph: &DataflowGraph,
    machine: &MachineConfig,
    init: &ResolvedMapping,
    fom: FigureOfMerit,
    iters: u32,
    seed: u64,
) -> (ResolvedMapping, CostReport) {
    anneal_with(
        evaluator,
        graph,
        machine,
        init,
        fom,
        iters,
        seed,
        AnnealBackend::Incremental,
    )
}

/// [`anneal`] with an explicit evaluation backend. Both backends follow
/// the identical proposal/accept trajectory (same RNG stream, same
/// decisions) and return the identical (mapping, report).
#[allow(clippy::too_many_arguments)] // anneal's signature + the backend selector
pub fn anneal_with(
    evaluator: &Evaluator<'_>,
    graph: &DataflowGraph,
    machine: &MachineConfig,
    init: &ResolvedMapping,
    fom: FigureOfMerit,
    iters: u32,
    seed: u64,
    backend: AnnealBackend,
) -> (ResolvedMapping, CostReport) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut engine = match backend {
        AnnealBackend::Full => {
            let rm = retime(graph, &init.place, machine);
            let report = evaluator.evaluate(&rm);
            let violations = full_violations(graph, machine, &rm);
            Engine::Full {
                ev: evaluator,
                graph,
                machine,
                places: init.place.clone(),
                rm,
                report,
                violations,
                stash: None,
            }
        }
        AnnealBackend::Incremental => {
            Engine::Inc(Box::new(DeltaEvaluator::new(evaluator, &init.place)))
        }
    };

    let mut current_score = engine.score(fom);
    let (mut best, mut best_report) = engine.snapshot();
    let mut best_score = current_score;
    let mut best_viol = engine.violations();

    // A 1-PE machine has no neighbor moves; nothing to refine.
    if graph.is_empty() || machine.pe_count() == 1 || iters == 0 {
        return (best, best_report);
    }

    const DIRS: [(i64, i64); 4] = [(1, 0), (-1, 0), (0, 1), (0, -1)];
    let t0 = current_score.abs().max(1.0) * 0.05;
    for it in 0..iters {
        let temp = t0 * (1.0 - f64::from(it) / f64::from(iters.max(1))).max(1e-3);
        let node = rng.random_range(0..graph.len());
        let old = engine.place_of(node);
        // Draw from the on-grid neighbor set (never empty on a >1-PE
        // grid), so edge nodes don't waste iterations on off-grid
        // proposals.
        let mut valid = [(0i64, 0i64); 4];
        let mut nvalid = 0;
        for (dx, dy) in DIRS {
            let c = (old.0 + dx, old.1 + dy);
            if machine.contains(c.0, c.1) {
                valid[nvalid] = c;
                nvalid += 1;
            }
        }
        let cand = valid[rng.random_range(0..nvalid)];
        let cur_viol = engine.violations();
        engine.apply(node, cand);
        let viol = engine.violations();
        if viol > cur_viol {
            // Never walk deeper into storage-illegal territory. No RNG
            // draw here, so both backends stay stream-identical.
            engine.revert(node, old);
            continue;
        }
        let score = engine.score(fom);
        let accept =
            score <= current_score || rng.random::<f64>() < ((current_score - score) / temp).exp();
        if accept {
            current_score = score;
            if viol < best_viol || (viol == best_viol && score < best_score) {
                let (m, r) = engine.snapshot();
                best = m;
                best_report = r;
                best_score = score;
                best_viol = viol;
            }
        } else {
            engine.revert(node, old);
        }
    }
    (best, best_report)
}

/// Deterministic greedy local refinement on the incremental engine.
///
/// Scans nodes in id order; for each, tries the four neighbor PEs and
/// keeps the first move that strictly improves (violations, score)
/// lexicographically. Repeats whole passes until one finds nothing or
/// `max_rounds` passes have run. No randomness — useful as a cheap
/// polish after [`anneal`] or as a reproducible baseline refiner.
pub fn hill_climb(
    evaluator: &Evaluator<'_>,
    graph: &DataflowGraph,
    machine: &MachineConfig,
    init: &ResolvedMapping,
    fom: FigureOfMerit,
    max_rounds: u32,
) -> (ResolvedMapping, CostReport) {
    let mut engine = DeltaEvaluator::new(evaluator, &init.place);
    if graph.is_empty() || machine.pe_count() == 1 {
        return (engine.mapping(), engine.report());
    }
    let mut cur_score = engine.score(fom);
    let mut cur_viol = engine.storage_violations();
    const DIRS: [(i64, i64); 4] = [(1, 0), (-1, 0), (0, 1), (0, -1)];
    for _ in 0..max_rounds {
        let mut improved = false;
        for node in 0..graph.len() {
            let old = engine.place_of(node);
            for (dx, dy) in DIRS {
                let cand = (old.0 + dx, old.1 + dy);
                if !machine.contains(cand.0, cand.1) {
                    continue;
                }
                engine.apply_move(node, cand);
                let viol = engine.storage_violations();
                let score = engine.score(fom);
                if viol < cur_viol || (viol == cur_viol && score < cur_score) {
                    cur_viol = viol;
                    cur_score = score;
                    improved = true;
                    break; // keep the move; on to the next node
                }
                engine.apply_move(node, old);
            }
        }
        if !improved {
            break;
        }
    }
    (engine.mapping(), engine.report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::IdxExpr;
    use crate::dataflow::CExpr;
    use crate::mapping::{AffineMap, PlaceExpr};
    use crate::value::Value;

    /// Independent elements: i ↦ const, n of them.
    fn wide(n: usize) -> DataflowGraph {
        let mut g = DataflowGraph::new("wide", 32);
        for i in 0..n {
            g.add_node(CExpr::konst(Value::real(i as f64)), vec![], vec![i as i64]);
        }
        g
    }

    /// Serial chain.
    fn chain(n: usize) -> DataflowGraph {
        let mut g = DataflowGraph::new("chain", 32);
        let mut prev: Option<u32> = None;
        for i in 0..n {
            let id = match prev {
                None => g.add_node(CExpr::konst(Value::ZERO), vec![], vec![i as i64]),
                Some(p) => g.add_node(
                    CExpr::dep(0).add(CExpr::konst(Value::real(1.0))),
                    vec![p],
                    vec![i as i64],
                ),
            };
            prev = Some(id);
        }
        g
    }

    #[test]
    fn search_ranks_parallel_over_serial_for_time() {
        let g = wide(16);
        let m = MachineConfig::linear(16);
        let ev = Evaluator::new(&g, &m);
        let cands = vec![
            MappingCandidate::new("serial", Mapping::serial(&g)),
            MappingCandidate::new(
                "parallel",
                Mapping::Affine(AffineMap {
                    place: PlaceExpr::row0(IdxExpr::i()),
                    time: IdxExpr::c(0),
                }),
            ),
        ];
        let out = search(&ev, &g, &m, &cands, FigureOfMerit::Time);
        assert_eq!(out.legal, 2);
        assert_eq!(out.best().unwrap().label, "parallel");
    }

    #[test]
    fn illegal_candidates_rejected_with_counts() {
        let g = chain(4);
        let m = MachineConfig::linear(4);
        let ev = Evaluator::new(&g, &m);
        let cands = vec![MappingCandidate::new(
            "all-at-once",
            Mapping::Affine(AffineMap {
                place: PlaceExpr::row0(IdxExpr::i()),
                time: IdxExpr::c(0), // dependent nodes simultaneous
            }),
        )];
        let out = search(&ev, &g, &m, &cands, FigureOfMerit::Time);
        assert_eq!(out.legal, 0);
        assert_eq!(out.rejected.len(), 1);
        assert!(out.rejected[0].1 >= 3);
        assert!(out.best().is_none());
    }

    #[test]
    fn pareto_front_is_nondominated() {
        let g = wide(8);
        let m = MachineConfig::linear(8);
        let ev = Evaluator::new(&g, &m);
        // Families: serial (slow, cheap movement), spread (fast, same
        // energy here since no deps) — front must be nonempty and
        // monotone.
        let cands = vec![
            MappingCandidate::new("serial", Mapping::serial(&g)),
            MappingCandidate::new(
                "spread",
                Mapping::Affine(AffineMap {
                    place: PlaceExpr::row0(IdxExpr::i()),
                    time: IdxExpr::c(0),
                }),
            ),
        ];
        let out = search(&ev, &g, &m, &cands, FigureOfMerit::Edp);
        assert!(!out.pareto.is_empty());
        // Front sorted by time with strictly decreasing energy.
        let mut last_t = f64::NEG_INFINITY;
        let mut last_e = f64::INFINITY;
        for &i in &out.pareto {
            let r = &out.results[i].report;
            assert!(r.time_ps.raw() >= last_t);
            assert!(r.energy().raw() < last_e);
            last_t = r.time_ps.raw();
            last_e = r.energy().raw();
        }
    }

    #[test]
    fn default_mapper_is_legal_on_random_dag() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let mut g = DataflowGraph::new("random", 32);
        for i in 0..200u32 {
            let ndeps = rng.random_range(0..=2.min(i));
            let mut deps = Vec::new();
            for _ in 0..ndeps {
                deps.push(rng.random_range(0..i));
            }
            deps.sort_unstable();
            deps.dedup();
            let expr = match deps.len() {
                0 => CExpr::konst(Value::real(1.0)),
                1 => CExpr::dep(0),
                _ => CExpr::dep(0).add(CExpr::dep(1)),
            };
            g.add_node(expr, deps, vec![i as i64]);
        }
        let m = MachineConfig::n5(4, 4);
        let rm = default_mapper(&g, &m);
        let rep = check(&g, &rm, &m);
        assert!(
            rep.is_legal(),
            "{:?}",
            &rep.errors[..rep.errors.len().min(3)]
        );
    }

    #[test]
    fn default_mapper_spreads_independent_work() {
        let g = wide(16);
        let m = MachineConfig::n5(4, 4);
        let rm = default_mapper(&g, &m);
        assert!(rm.pes_used() > 8, "used {}", rm.pes_used());
        assert!(rm.makespan() <= 2);
    }

    #[test]
    fn default_mapper_keeps_chain_local() {
        let g = chain(32);
        let m = MachineConfig::n5(4, 4);
        let rm = default_mapper(&g, &m);
        // A chain gains nothing from moving; the mapper should keep it
        // on very few PEs and near the minimum makespan.
        assert!(rm.pes_used() <= 2);
        assert_eq!(rm.makespan(), 32);
    }

    #[test]
    fn retime_respects_occupancy() {
        let g = wide(4);
        let m = MachineConfig::linear(2);
        // All four on one PE → times must be distinct.
        let places = vec![(0i64, 0i64); 4];
        let rm = retime(&g, &places, &m);
        let mut ts = rm.time.clone();
        ts.sort_unstable();
        ts.dedup();
        assert_eq!(ts.len(), 4);
        assert!(check(&g, &rm, &m).is_legal());
    }

    #[test]
    fn anneal_does_not_regress() {
        let g = chain(16);
        let m = MachineConfig::n5(4, 4);
        let ev = Evaluator::new(&g, &m);
        // Start from a deliberately bad placement: alternate corners.
        let places: Vec<(i64, i64)> = (0..16)
            .map(|i| if i % 2 == 0 { (0, 0) } else { (3, 3) })
            .collect();
        let init = retime(&g, &places, &m);
        let init_score = FigureOfMerit::Energy.score(&ev.evaluate(&init));
        let (best_rm, best_rep) = anneal(&ev, &g, &m, &init, FigureOfMerit::Energy, 400, 7);
        assert!(best_rep.energy().raw() <= init_score);
        assert!(check(&g, &best_rm, &m).is_legal());
    }

    #[test]
    fn anneal_is_deterministic_in_its_seed() {
        let g = chain(12);
        let m = MachineConfig::n5(4, 2);
        let ev = Evaluator::new(&g, &m);
        let places: Vec<(i64, i64)> = (0..12)
            .map(|i| if i % 2 == 0 { (0, 0) } else { (3, 1) })
            .collect();
        let init = retime(&g, &places, &m);
        // Same seed: bit-identical mapping and report, run to run.
        let (rm_a, rep_a) = anneal(&ev, &g, &m, &init, FigureOfMerit::Energy, 300, 11);
        let (rm_b, rep_b) = anneal(&ev, &g, &m, &init, FigureOfMerit::Energy, 300, 11);
        assert_eq!(rm_a, rm_b);
        assert_eq!(rep_a.cycles, rep_b.cycles);
        assert_eq!(rep_a.energy().raw(), rep_b.energy().raw());
        // A different seed explores a different trajectory; both stay
        // legal and neither regresses below the shared start point.
        let (rm_c, rep_c) = anneal(&ev, &g, &m, &init, FigureOfMerit::Energy, 300, 12);
        assert!(check(&g, &rm_c, &m).is_legal());
        let init_score = FigureOfMerit::Energy.score(&ev.evaluate(&init));
        assert!(rep_a.energy().raw() <= init_score);
        assert!(rep_c.energy().raw() <= init_score);
    }

    #[test]
    fn anneal_backends_agree_bit_for_bit() {
        let g = chain(14);
        let m = MachineConfig::n5(4, 3);
        let ev = Evaluator::new(&g, &m);
        let places: Vec<(i64, i64)> = (0..14)
            .map(|i| if i % 2 == 0 { (0, 0) } else { (3, 2) })
            .collect();
        let init = retime(&g, &places, &m);
        for fom in [
            FigureOfMerit::Energy,
            FigureOfMerit::Time,
            FigureOfMerit::Edp,
        ] {
            let (rm_f, rep_f) = anneal_with(&ev, &g, &m, &init, fom, 250, 21, AnnealBackend::Full);
            let (rm_i, rep_i) =
                anneal_with(&ev, &g, &m, &init, fom, 250, 21, AnnealBackend::Incremental);
            assert_eq!(rm_f, rm_i, "backends diverged under {fom:?}");
            assert_eq!(rep_f, rep_i, "reports diverged under {fom:?}");
        }
    }

    #[test]
    fn anneal_on_one_pe_machine_returns_init() {
        let g = chain(6);
        let m = MachineConfig::linear(1);
        let ev = Evaluator::new(&g, &m);
        let init = retime(&g, &[(0, 0); 6], &m);
        let (rm, rep) = anneal(&ev, &g, &m, &init, FigureOfMerit::Energy, 100, 3);
        assert_eq!(rm, init);
        assert_eq!(rep, ev.evaluate(&init));
    }

    #[test]
    fn anneal_never_leaves_storage_legality() {
        // Tiny tiles: a legal-but-tight start must stay legal.
        let g = wide(12);
        let mut m = MachineConfig::n5(4, 3);
        m.tile_bits = 2 * 32;
        let ev = Evaluator::new(&g, &m);
        let places: Vec<(i64, i64)> = (0..12).map(|i| (i % 4, i / 4)).collect();
        let init = retime(&g, &places, &m);
        assert!(check(&g, &init, &m).is_legal());
        let (rm, _) = anneal(&ev, &g, &m, &init, FigureOfMerit::Energy, 300, 5);
        assert!(check(&g, &rm, &m).is_legal());
    }

    #[test]
    fn hill_climb_improves_and_is_deterministic() {
        let g = chain(16);
        let m = MachineConfig::n5(4, 4);
        let ev = Evaluator::new(&g, &m);
        let places: Vec<(i64, i64)> = (0..16)
            .map(|i| if i % 2 == 0 { (0, 0) } else { (3, 3) })
            .collect();
        let init = retime(&g, &places, &m);
        let init_score = FigureOfMerit::Energy.score(&ev.evaluate(&init));
        let (rm_a, rep_a) = hill_climb(&ev, &g, &m, &init, FigureOfMerit::Energy, 8);
        let (rm_b, rep_b) = hill_climb(&ev, &g, &m, &init, FigureOfMerit::Energy, 8);
        assert_eq!(rm_a, rm_b);
        assert_eq!(rep_a, rep_b);
        assert!(
            rep_a.energy().raw() < init_score,
            "climb should improve a bad start"
        );
        assert!(check(&g, &rm_a, &m).is_legal());
    }
}
