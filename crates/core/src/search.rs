//! Mapping-space search.
//!
//! "For each function there are many possible mappings that range from
//! completely serial to minimum-depth parallel with many points
//! between. One can systematically search the space of possible
//! mappings to optimize a given figure of merit: execution time, energy
//! per op, memory footprint, or some combination."
//!
//! Three engines:
//!
//! * [`search`] — exhaustive evaluation of an explicit candidate list
//!   (a *mapping family*), keeping every legal result, the best under a
//!   [`FigureOfMerit`], and the time/energy Pareto front;
//! * [`default_mapper`] — the paper's "default mapper" for programmers
//!   who "don't want to bother with mapping": a greedy list scheduler
//!   that places each element where it becomes ready earliest,
//!   producing a legal table mapping for *any* graph;
//! * [`anneal`] — a simulated-annealing refiner over placements (times
//!   re-derived by list scheduling), for irregular graphs where no
//!   affine family applies.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;

use crate::cost::{CostReport, Evaluator};
use crate::dataflow::DataflowGraph;
use crate::legality::check;
use crate::machine::MachineConfig;
use crate::mapping::{Mapping, ResolvedMapping};

/// What to optimize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FigureOfMerit {
    /// Execution time (ps).
    Time,
    /// Total energy (fJ).
    Energy,
    /// Energy-delay product.
    Edp,
    /// Peak tile footprint (bits).
    Footprint,
}

impl FigureOfMerit {
    /// Scalar score (lower is better).
    pub fn score(self, r: &CostReport) -> f64 {
        match self {
            FigureOfMerit::Time => r.time_ps.raw(),
            FigureOfMerit::Energy => r.energy().raw(),
            FigureOfMerit::Edp => r.edp(),
            FigureOfMerit::Footprint => r.peak_tile_bits as f64,
        }
    }
}

/// A named candidate mapping.
#[derive(Debug, Clone)]
pub struct MappingCandidate {
    /// Label for reports (e.g. `"P=8 skewed"`).
    pub label: String,
    /// The mapping.
    pub mapping: Mapping,
}

impl MappingCandidate {
    /// Construct.
    pub fn new(label: impl Into<String>, mapping: Mapping) -> Self {
        MappingCandidate {
            label: label.into(),
            mapping,
        }
    }
}

/// A family of candidate mappings. Kernel crates implement this for
/// their recurrences (e.g. "anti-diagonal with P ∈ {1,2,4,…}, skew ∈
/// {paper, corrected}").
pub trait MappingFamily {
    /// Enumerate the family.
    fn candidates(&self, machine: &MachineConfig) -> Vec<MappingCandidate>;
}

/// One evaluated legal mapping.
#[derive(Debug, Clone, Serialize)]
pub struct SearchResult {
    /// Candidate label.
    pub label: String,
    /// Cost report.
    pub report: CostReport,
    /// Score under the search's figure of merit (lower is better).
    pub score: f64,
}

/// The outcome of a search.
#[derive(Debug, Clone, Serialize)]
pub struct SearchOutcome {
    /// Candidates evaluated.
    pub evaluated: usize,
    /// Candidates that were legal.
    pub legal: usize,
    /// Labels of illegal candidates (with violation counts).
    pub rejected: Vec<(String, u64)>,
    /// Legal results sorted by ascending score.
    pub results: Vec<SearchResult>,
    /// Indices into `results` forming the time/energy Pareto front,
    /// sorted by ascending time.
    pub pareto: Vec<usize>,
}

impl SearchOutcome {
    /// The best legal result, if any.
    pub fn best(&self) -> Option<&SearchResult> {
        self.results.first()
    }
}

/// The outcome of evaluating one candidate in isolation: the pure
/// resolve → legality-check → cost step that [`search`] runs per
/// candidate, exposed so callers (e.g. the `fm-autotune` tuner) can fan
/// candidates across threads and still assemble a [`SearchOutcome`]
/// identical to the serial one via [`assemble_outcome`].
#[derive(Debug, Clone)]
pub enum CandidateEval {
    /// Legal: the resolved mapping, its cost report, and its score.
    Legal {
        /// The fully resolved (table) mapping.
        resolved: ResolvedMapping,
        /// The evaluator's cost report.
        report: CostReport,
        /// Score under the figure of merit (lower is better).
        score: f64,
    },
    /// The mapping failed to resolve on this machine.
    Unresolvable,
    /// The mapping resolved but violated legality (violation count).
    Illegal(u64),
}

/// Evaluate a single candidate: resolve, legality-check, cost.
///
/// Pure in the sense that it reads only its arguments, so calls for
/// distinct candidates may run concurrently.
pub fn evaluate_candidate(
    evaluator: &Evaluator<'_>,
    graph: &DataflowGraph,
    machine: &MachineConfig,
    candidate: &MappingCandidate,
    fom: FigureOfMerit,
) -> CandidateEval {
    let rm = match candidate.mapping.resolve(graph, machine) {
        Ok(rm) => rm,
        Err(_) => return CandidateEval::Unresolvable,
    };
    let rep = check(graph, &rm, machine);
    if !rep.is_legal() {
        return CandidateEval::Illegal(rep.total_violations);
    }
    let report = evaluator.evaluate(&rm);
    let score = fom.score(&report);
    CandidateEval::Legal {
        resolved: rm,
        report,
        score,
    }
}

/// Assemble per-candidate evaluations (in candidate order) into a
/// [`SearchOutcome`]. The sort is stable, so ties on score resolve
/// toward the earlier candidate — the winner does not depend on how the
/// evaluations were computed, only on their order here.
pub fn assemble_outcome(
    candidates: &[MappingCandidate],
    evals: impl IntoIterator<Item = CandidateEval>,
) -> SearchOutcome {
    let mut results = Vec::new();
    let mut rejected = Vec::new();
    for (cand, eval) in candidates.iter().zip(evals) {
        match eval {
            CandidateEval::Legal { report, score, .. } => results.push(SearchResult {
                label: cand.label.clone(),
                report,
                score,
            }),
            CandidateEval::Unresolvable => rejected.push((cand.label.clone(), u64::MAX)),
            CandidateEval::Illegal(violations) => {
                rejected.push((cand.label.clone(), violations));
            }
        }
    }
    results.sort_by(|a, b| a.score.total_cmp(&b.score));
    let pareto = pareto_front(&results);
    SearchOutcome {
        evaluated: candidates.len(),
        legal: results.len(),
        rejected,
        results,
        pareto,
    }
}

/// Exhaustively evaluate a candidate list.
pub fn search(
    evaluator: &Evaluator<'_>,
    graph: &DataflowGraph,
    machine: &MachineConfig,
    candidates: &[MappingCandidate],
    fom: FigureOfMerit,
) -> SearchOutcome {
    assemble_outcome(
        candidates,
        candidates
            .iter()
            .map(|c| evaluate_candidate(evaluator, graph, machine, c, fom)),
    )
}

/// Indices of the time/energy Pareto-optimal results, ascending in time.
fn pareto_front(results: &[SearchResult]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..results.len()).collect();
    idx.sort_by(|&a, &b| {
        results[a]
            .report
            .time_ps
            .raw()
            .total_cmp(&results[b].report.time_ps.raw())
    });
    let mut front = Vec::new();
    let mut best_energy = f64::INFINITY;
    for i in idx {
        let e = results[i].report.energy().raw();
        if e < best_energy {
            best_energy = e;
            front.push(i);
        }
    }
    front
}

/// The default mapper: greedy list scheduling over the grid.
///
/// Visits nodes in topological (id) order; each node is placed on the
/// PE where it can start earliest, considering operand arrival
/// (causality gap from each producer) and PE occupancy; ties break
/// toward the PE with the least operand-movement energy. The result is
/// legal by construction for causality and single-issue occupancy.
pub fn default_mapper(graph: &DataflowGraph, machine: &MachineConfig) -> ResolvedMapping {
    let pes: Vec<(u32, u32)> = (0..machine.rows)
        .flat_map(|y| (0..machine.cols).map(move |x| (x, y)))
        .collect();
    // Next free cycle per PE (single-issue model).
    let mut next_free: Vec<i64> = vec![0; pes.len()];
    let pe_index = |p: (u32, u32)| (p.1 * machine.cols + p.0) as usize;

    let mut place: Vec<(i64, i64)> = Vec::with_capacity(graph.len());
    let mut time: Vec<i64> = Vec::with_capacity(graph.len());

    for (id, n) in graph.nodes.iter().enumerate() {
        // Candidate PEs: producers' PEs, their 4-neighborhoods, and the
        // globally least-loaded PE. Sources consider only the least
        // loaded (spreading independent work).
        let mut cands: Vec<(u32, u32)> = Vec::new();
        for &d in &n.deps {
            let (px, py) = place[d as usize];
            let p = (px as u32, py as u32);
            cands.push(p);
            for (dx, dy) in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)] {
                let (nx, ny) = (px + dx, py + dy);
                if machine.contains(nx, ny) {
                    cands.push((nx as u32, ny as u32));
                }
            }
        }
        let least = (0..pes.len()).min_by_key(|&i| next_free[i]).unwrap();
        cands.push(pes[least]);
        cands.sort_unstable();
        cands.dedup();

        let mut best: Option<((u32, u32), i64, f64)> = None;
        for &pe in &cands {
            let mut ready: i64 = 0;
            let mut move_mm = 0.0;
            for &d in &n.deps {
                let (px, py) = place[d as usize];
                let prod = (px as u32, py as u32);
                let arrive = time[d as usize] + machine.required_gap(prod, pe);
                ready = ready.max(arrive);
                move_mm += machine.distance_mm(prod, pe);
            }
            let start = ready.max(next_free[pe_index(pe)]);
            let better = match &best {
                None => true,
                Some((_, bt, bm)) => start < *bt || (start == *bt && move_mm < *bm),
            };
            if better {
                best = Some((pe, start, move_mm));
            }
        }
        let (pe, start, _) = best.expect("at least one candidate PE");
        next_free[pe_index(pe)] = start + 1;
        place.push((i64::from(pe.0), i64::from(pe.1)));
        time.push(start);
        let _ = id;
    }

    ResolvedMapping { place, time }
}

/// List-schedule *times* for fixed placements: each node starts at the
/// earliest cycle satisfying causality and single-issue occupancy of
/// its (given) PE. Used by [`anneal`] to re-derive a legal schedule
/// after moving nodes.
pub fn retime(
    graph: &DataflowGraph,
    places: &[(i64, i64)],
    machine: &MachineConfig,
) -> ResolvedMapping {
    use std::collections::HashMap;
    let mut busy: HashMap<(i64, i64), Vec<i64>> = HashMap::new(); // sorted busy cycles per PE
    let mut time: Vec<i64> = Vec::with_capacity(graph.len());
    for (id, n) in graph.nodes.iter().enumerate() {
        let pe = places[id];
        let pe_u = (pe.0 as u32, pe.1 as u32);
        let mut ready = 0i64;
        for &d in &n.deps {
            let prod = places[d as usize];
            let prod_u = (prod.0 as u32, prod.1 as u32);
            ready = ready.max(time[d as usize] + machine.required_gap(prod_u, pe_u));
        }
        let slots = busy.entry(pe).or_default();
        // Find first cycle ≥ ready not already taken (slots kept sorted).
        let mut t = ready;
        let mut pos = slots.partition_point(|&s| s < ready);
        while pos < slots.len() && slots[pos] == t {
            t += 1;
            pos += 1;
        }
        slots.insert(pos, t);
        time.push(t);
    }
    ResolvedMapping {
        place: places.to_vec(),
        time,
    }
}

/// Simulated-annealing placement refiner.
///
/// Starts from `init` placements, proposes single-node moves to random
/// neighboring PEs, re-derives times with [`retime`], and accepts by
/// the Metropolis rule on the figure-of-merit score. Returns the best
/// mapping found and its report.
///
/// All randomness flows from the explicit `seed`: the same
/// (inputs, seed) pair always returns the identical mapping and
/// report, so annealed results are reproducible and cacheable (the
/// `fm-autotune` tuning cache relies on this).
pub fn anneal(
    evaluator: &Evaluator<'_>,
    graph: &DataflowGraph,
    machine: &MachineConfig,
    init: &ResolvedMapping,
    fom: FigureOfMerit,
    iters: u32,
    seed: u64,
) -> (ResolvedMapping, CostReport) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut places = init.place.clone();
    let mut current = retime(graph, &places, machine);
    let mut current_score = fom.score(&evaluator.evaluate(&current));
    let mut best = current.clone();
    let mut best_score = current_score;

    if graph.is_empty() {
        let report = evaluator.evaluate(&best);
        return (best, report);
    }

    let t0 = current_score.abs().max(1.0) * 0.05;
    for it in 0..iters {
        let temp = t0 * (1.0 - f64::from(it) / f64::from(iters.max(1))).max(1e-3);
        let node = rng.random_range(0..graph.len());
        let old = places[node];
        let (dx, dy) = match rng.random_range(0..4u8) {
            0 => (1i64, 0i64),
            1 => (-1, 0),
            2 => (0, 1),
            _ => (0, -1),
        };
        let cand = (old.0 + dx, old.1 + dy);
        if !machine.contains(cand.0, cand.1) {
            continue;
        }
        places[node] = cand;
        let rm = retime(graph, &places, machine);
        let score = fom.score(&evaluator.evaluate(&rm));
        let accept =
            score <= current_score || rng.random::<f64>() < ((current_score - score) / temp).exp();
        if accept {
            current = rm;
            current_score = score;
            if score < best_score {
                best = current.clone();
                best_score = score;
            }
        } else {
            places[node] = old;
        }
    }
    let report = evaluator.evaluate(&best);
    (best, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::IdxExpr;
    use crate::dataflow::CExpr;
    use crate::mapping::{AffineMap, PlaceExpr};
    use crate::value::Value;

    /// Independent elements: i ↦ const, n of them.
    fn wide(n: usize) -> DataflowGraph {
        let mut g = DataflowGraph::new("wide", 32);
        for i in 0..n {
            g.add_node(CExpr::konst(Value::real(i as f64)), vec![], vec![i as i64]);
        }
        g
    }

    /// Serial chain.
    fn chain(n: usize) -> DataflowGraph {
        let mut g = DataflowGraph::new("chain", 32);
        let mut prev: Option<u32> = None;
        for i in 0..n {
            let id = match prev {
                None => g.add_node(CExpr::konst(Value::ZERO), vec![], vec![i as i64]),
                Some(p) => g.add_node(
                    CExpr::dep(0).add(CExpr::konst(Value::real(1.0))),
                    vec![p],
                    vec![i as i64],
                ),
            };
            prev = Some(id);
        }
        g
    }

    #[test]
    fn search_ranks_parallel_over_serial_for_time() {
        let g = wide(16);
        let m = MachineConfig::linear(16);
        let ev = Evaluator::new(&g, &m);
        let cands = vec![
            MappingCandidate::new("serial", Mapping::serial(&g)),
            MappingCandidate::new(
                "parallel",
                Mapping::Affine(AffineMap {
                    place: PlaceExpr::row0(IdxExpr::i()),
                    time: IdxExpr::c(0),
                }),
            ),
        ];
        let out = search(&ev, &g, &m, &cands, FigureOfMerit::Time);
        assert_eq!(out.legal, 2);
        assert_eq!(out.best().unwrap().label, "parallel");
    }

    #[test]
    fn illegal_candidates_rejected_with_counts() {
        let g = chain(4);
        let m = MachineConfig::linear(4);
        let ev = Evaluator::new(&g, &m);
        let cands = vec![MappingCandidate::new(
            "all-at-once",
            Mapping::Affine(AffineMap {
                place: PlaceExpr::row0(IdxExpr::i()),
                time: IdxExpr::c(0), // dependent nodes simultaneous
            }),
        )];
        let out = search(&ev, &g, &m, &cands, FigureOfMerit::Time);
        assert_eq!(out.legal, 0);
        assert_eq!(out.rejected.len(), 1);
        assert!(out.rejected[0].1 >= 3);
        assert!(out.best().is_none());
    }

    #[test]
    fn pareto_front_is_nondominated() {
        let g = wide(8);
        let m = MachineConfig::linear(8);
        let ev = Evaluator::new(&g, &m);
        // Families: serial (slow, cheap movement), spread (fast, same
        // energy here since no deps) — front must be nonempty and
        // monotone.
        let cands = vec![
            MappingCandidate::new("serial", Mapping::serial(&g)),
            MappingCandidate::new(
                "spread",
                Mapping::Affine(AffineMap {
                    place: PlaceExpr::row0(IdxExpr::i()),
                    time: IdxExpr::c(0),
                }),
            ),
        ];
        let out = search(&ev, &g, &m, &cands, FigureOfMerit::Edp);
        assert!(!out.pareto.is_empty());
        // Front sorted by time with strictly decreasing energy.
        let mut last_t = f64::NEG_INFINITY;
        let mut last_e = f64::INFINITY;
        for &i in &out.pareto {
            let r = &out.results[i].report;
            assert!(r.time_ps.raw() >= last_t);
            assert!(r.energy().raw() < last_e);
            last_t = r.time_ps.raw();
            last_e = r.energy().raw();
        }
    }

    #[test]
    fn default_mapper_is_legal_on_random_dag() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let mut g = DataflowGraph::new("random", 32);
        for i in 0..200u32 {
            let ndeps = rng.random_range(0..=2.min(i));
            let mut deps = Vec::new();
            for _ in 0..ndeps {
                deps.push(rng.random_range(0..i));
            }
            deps.sort_unstable();
            deps.dedup();
            let expr = match deps.len() {
                0 => CExpr::konst(Value::real(1.0)),
                1 => CExpr::dep(0),
                _ => CExpr::dep(0).add(CExpr::dep(1)),
            };
            g.add_node(expr, deps, vec![i as i64]);
        }
        let m = MachineConfig::n5(4, 4);
        let rm = default_mapper(&g, &m);
        let rep = check(&g, &rm, &m);
        assert!(
            rep.is_legal(),
            "{:?}",
            &rep.errors[..rep.errors.len().min(3)]
        );
    }

    #[test]
    fn default_mapper_spreads_independent_work() {
        let g = wide(16);
        let m = MachineConfig::n5(4, 4);
        let rm = default_mapper(&g, &m);
        assert!(rm.pes_used() > 8, "used {}", rm.pes_used());
        assert!(rm.makespan() <= 2);
    }

    #[test]
    fn default_mapper_keeps_chain_local() {
        let g = chain(32);
        let m = MachineConfig::n5(4, 4);
        let rm = default_mapper(&g, &m);
        // A chain gains nothing from moving; the mapper should keep it
        // on very few PEs and near the minimum makespan.
        assert!(rm.pes_used() <= 2);
        assert_eq!(rm.makespan(), 32);
    }

    #[test]
    fn retime_respects_occupancy() {
        let g = wide(4);
        let m = MachineConfig::linear(2);
        // All four on one PE → times must be distinct.
        let places = vec![(0i64, 0i64); 4];
        let rm = retime(&g, &places, &m);
        let mut ts = rm.time.clone();
        ts.sort_unstable();
        ts.dedup();
        assert_eq!(ts.len(), 4);
        assert!(check(&g, &rm, &m).is_legal());
    }

    #[test]
    fn anneal_does_not_regress() {
        let g = chain(16);
        let m = MachineConfig::n5(4, 4);
        let ev = Evaluator::new(&g, &m);
        // Start from a deliberately bad placement: alternate corners.
        let places: Vec<(i64, i64)> = (0..16)
            .map(|i| if i % 2 == 0 { (0, 0) } else { (3, 3) })
            .collect();
        let init = retime(&g, &places, &m);
        let init_score = FigureOfMerit::Energy.score(&ev.evaluate(&init));
        let (best_rm, best_rep) = anneal(&ev, &g, &m, &init, FigureOfMerit::Energy, 400, 7);
        assert!(best_rep.energy().raw() <= init_score);
        assert!(check(&g, &best_rm, &m).is_legal());
    }

    #[test]
    fn anneal_is_deterministic_in_its_seed() {
        let g = chain(12);
        let m = MachineConfig::n5(4, 2);
        let ev = Evaluator::new(&g, &m);
        let places: Vec<(i64, i64)> = (0..12)
            .map(|i| if i % 2 == 0 { (0, 0) } else { (3, 1) })
            .collect();
        let init = retime(&g, &places, &m);
        // Same seed: bit-identical mapping and report, run to run.
        let (rm_a, rep_a) = anneal(&ev, &g, &m, &init, FigureOfMerit::Energy, 300, 11);
        let (rm_b, rep_b) = anneal(&ev, &g, &m, &init, FigureOfMerit::Energy, 300, 11);
        assert_eq!(rm_a, rm_b);
        assert_eq!(rep_a.cycles, rep_b.cycles);
        assert_eq!(rep_a.energy().raw(), rep_b.energy().raw());
        // A different seed explores a different trajectory; both stay
        // legal and neither regresses below the shared start point.
        let (rm_c, rep_c) = anneal(&ev, &g, &m, &init, FigureOfMerit::Energy, 300, 12);
        assert!(check(&g, &rm_c, &m).is_legal());
        let init_score = FigureOfMerit::Energy.score(&ev.evaluate(&init));
        assert!(rep_a.energy().raw() <= init_score);
        assert!(rep_c.energy().raw() <= init_score);
    }
}
