//! Modular composition of mapped functions.
//!
//! "The F&M model supports modular program composition, but with
//! constraints on mappings of input and output data structures.
//! Functions compose as usual. Mappings, however, must be aligned to
//! compose modules. The output of module A must have the same mapping
//! as the input of module B for the two to be composed in series, or a
//! remapping module must be inserted between the two to shuffle the
//! data."
//!
//! A [`DataLayout`] gives each element of a tensor a home PE. Two
//! layouts are *aligned* when they agree pointwise. [`remap_cost`]
//! prices the shuffle module the paper describes; [`Pipeline`]
//! accumulates a series composition, inserting remaps automatically and
//! keeping the books. The map/reduce idioms ("common idioms such as
//! map, reduce, gather, scatter, and shuffle … realize common
//! communication patterns") are provided as graph + mapping builders.

use serde::Serialize;

use fm_costmodel::{EnergyLedger, Femtojoules, Picoseconds};

use crate::affine::IdxExpr;
use crate::cost::CostReport;
use crate::dataflow::{CExpr, DataflowGraph};
use crate::machine::MachineConfig;
use crate::mapping::{PlaceExpr, ResolvedMapping};
use crate::recurrence::Domain;
use crate::search::retime;

/// Where each element of a tensor lives: a place expression over the
/// tensor's own indices.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DataLayout {
    /// Tensor extents.
    pub dims: Vec<usize>,
    /// Home PE of each element.
    pub home: PlaceExpr,
}

impl DataLayout {
    /// A 1-D layout.
    pub fn d1(n: usize, home: PlaceExpr) -> DataLayout {
        DataLayout {
            dims: vec![n],
            home,
        }
    }

    /// Cyclic 1-D layout over `p` PEs on row 0: element `i` at PE
    /// `i % p`.
    pub fn cyclic(n: usize, p: i64) -> DataLayout {
        DataLayout::d1(n, PlaceExpr::row0(IdxExpr::i() % p))
    }

    /// Block 1-D layout over `p` PEs on row 0: element `i` at PE
    /// `⌊i/⌈n/p⌉⌋`.
    pub fn block(n: usize, p: i64) -> DataLayout {
        let b = ((n as i64 + p - 1) / p).max(1);
        DataLayout::d1(n, PlaceExpr::row0(IdxExpr::i().div(b)))
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the layout is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize every element's home, row-major.
    pub fn homes(&self, machine: &MachineConfig) -> Vec<(i64, i64)> {
        let domain = Domain {
            extents: self.dims.clone(),
        };
        domain
            .iter()
            .map(|idx| self.home.eval(&idx, machine.cols))
            .collect()
    }

    /// Pointwise alignment with another layout.
    pub fn aligned_with(&self, other: &DataLayout, machine: &MachineConfig) -> bool {
        self.dims == other.dims && self.homes(machine) == other.homes(machine)
    }
}

/// The cost of one remapping (shuffle) module.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RemapReport {
    /// Elements that actually moved.
    pub moved: u64,
    /// Elements already in place.
    pub stationary: u64,
    /// Energy and traffic of the movement.
    pub ledger: EnergyLedger,
    /// Cycles the shuffle occupies (elements leave one per cycle per
    /// source PE; transit overlaps).
    pub cycles: i64,
}

impl RemapReport {
    /// Total energy.
    pub fn energy(&self) -> Femtojoules {
        self.ledger.energy.total()
    }
}

/// Price a remap between two explicit home vectors (same length).
pub fn remap_cost_homes(
    from: &[(i64, i64)],
    to: &[(i64, i64)],
    width_bits: u32,
    machine: &MachineConfig,
) -> RemapReport {
    assert_eq!(
        from.len(),
        to.len(),
        "remap endpoints must cover the same elements"
    );
    let mut report = RemapReport::default();
    let width = u64::from(width_bits);
    let mut per_source: std::collections::HashMap<(i64, i64), i64> =
        std::collections::HashMap::new();
    let mut max_hops: i64 = 0;
    for (&a, &b) in from.iter().zip(to) {
        if a == b {
            report.stationary += 1;
            continue;
        }
        report.moved += 1;
        let au = (a.0 as u32, a.1 as u32);
        let bu = (b.0 as u32, b.1 as u32);
        let e = machine.route_energy(width, au, bu);
        report
            .ledger
            .charge_onchip(width, machine.distance_mm(au, bu), e);
        *per_source.entry(a).or_insert(0) += 1;
        max_hops = max_hops.max(i64::from(machine.hops(au, bu)));
    }
    // Each source PE injects one element per cycle; the last element
    // injected still needs its hops.
    let max_inject = per_source.values().copied().max().unwrap_or(0);
    report.cycles = if report.moved == 0 {
        0
    } else {
        max_inject + max_hops
    };
    report
}

/// Price a remap between two layouts.
pub fn remap_cost(
    from: &DataLayout,
    to: &DataLayout,
    width_bits: u32,
    machine: &MachineConfig,
) -> RemapReport {
    assert_eq!(from.dims, to.dims, "remap layouts must have equal shape");
    remap_cost_homes(
        &from.homes(machine),
        &to.homes(machine),
        width_bits,
        machine,
    )
}

/// Price a *gather*: element `i` of the destination reads
/// `src[indices[i]]` — one message per read whose source home differs
/// from the destination home (duplicate indices fan the same element
/// out to several readers and are charged per read, as a multicast
/// would be on a mesh without combining).
pub fn gather_cost(
    src: &DataLayout,
    dst: &DataLayout,
    indices: &[usize],
    width_bits: u32,
    machine: &MachineConfig,
) -> RemapReport {
    assert_eq!(
        indices.len(),
        dst.len(),
        "one source index per destination element"
    );
    let src_homes = src.homes(machine);
    let dst_homes = dst.homes(machine);
    let from: Vec<(i64, i64)> = indices
        .iter()
        .map(|&ix| {
            assert!(ix < src_homes.len(), "gather index {ix} out of range");
            src_homes[ix]
        })
        .collect();
    remap_cost_homes(&from, &dst_homes, width_bits, machine)
}

/// Price a *scatter*: element `i` of the source is written to
/// `dst[indices[i]]`. Duplicate indices model combining writes (both
/// travel; arrival semantics are the consumer's business).
pub fn scatter_cost(
    src: &DataLayout,
    dst: &DataLayout,
    indices: &[usize],
    width_bits: u32,
    machine: &MachineConfig,
) -> RemapReport {
    assert_eq!(
        indices.len(),
        src.len(),
        "one destination index per source element"
    );
    let src_homes = src.homes(machine);
    let dst_homes = dst.homes(machine);
    let to: Vec<(i64, i64)> = indices
        .iter()
        .map(|&ix| {
            assert!(ix < dst_homes.len(), "scatter index {ix} out of range");
            dst_homes[ix]
        })
        .collect();
    remap_cost_homes(&src_homes, &to, width_bits, machine)
}

/// Price a *shuffle*: element `i` of the source becomes element
/// `perm[i]` of the destination layout.
pub fn shuffle_cost(
    from: &DataLayout,
    to: &DataLayout,
    perm: &[usize],
    width_bits: u32,
    machine: &MachineConfig,
) -> RemapReport {
    assert_eq!(perm.len(), from.len(), "permutation must cover the tensor");
    let from_homes = from.homes(machine);
    let to_homes = to.homes(machine);
    let dest: Vec<(i64, i64)> = perm.iter().map(|&p| to_homes[p]).collect();
    remap_cost_homes(&from_homes, &dest, width_bits, machine)
}

/// One stage of a pipeline: a mapped module with declared layouts.
#[derive(Debug, Clone, Serialize)]
pub struct Module {
    /// Name for reports.
    pub name: String,
    /// The stage's cost report (from [`crate::cost::Evaluator`]).
    pub report: CostReport,
    /// Layout the stage expects its (primary) input in.
    pub input_layout: DataLayout,
    /// Layout the stage leaves its output in.
    pub output_layout: DataLayout,
}

/// A series composition with automatic remap insertion.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Pipeline {
    /// Stage names in order (inserted remaps appear as `"remap(B)"`,
    /// where B is the stage whose input layout forced the shuffle).
    pub stages: Vec<String>,
    /// Accumulated energy/traffic.
    pub ledger: EnergyLedger,
    /// Accumulated cycles.
    pub cycles: i64,
    /// Accumulated picoseconds.
    pub time_ps: Picoseconds,
    /// Number of remaps inserted.
    pub remaps_inserted: u32,
    /// Layout of the data as it currently stands.
    #[serde(skip)]
    current_layout: Option<DataLayout>,
}

impl Pipeline {
    /// Empty pipeline.
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// Append a module; inserts a remap first if the current data layout
    /// does not align with the module's input layout.
    pub fn push(&mut self, module: &Module, machine: &MachineConfig, width_bits: u32) {
        if let Some(cur) = &self.current_layout {
            if !cur.aligned_with(&module.input_layout, machine) {
                let r = remap_cost(cur, &module.input_layout, width_bits, machine);
                self.stages.push(format!("remap({})", module.name));
                self.ledger.merge(&r.ledger);
                self.cycles += r.cycles;
                self.time_ps += machine.clock_period() * r.cycles as f64;
                self.remaps_inserted += 1;
            }
        }
        self.stages.push(module.name.clone());
        self.ledger.merge(&module.report.ledger);
        self.cycles += module.report.cycles;
        self.time_ps += module.report.time_ps;
        self.current_layout = Some(module.output_layout.clone());
    }

    /// Total energy.
    pub fn energy(&self) -> Femtojoules {
        self.ledger.energy.total()
    }
}

/// Build the *map* idiom: `Y(i) = X[i] ⊕ X[i]`-style elementwise graphs
/// are kernel business; the idiom here is the canonical structure — `n`
/// independent elements, each reading input element `i` — with a cyclic
/// placement over `p` PEs, `⌈n/p⌉` cycles.
pub fn idiom_map(n: usize, p: i64, width_bits: u32) -> (DataflowGraph, ResolvedMapping) {
    let mut g = DataflowGraph::new("map", width_bits);
    let x = g.add_input("X", vec![n]);
    for i in 0..n {
        let id = g.add_node(
            CExpr::input(x, i as u32).add(CExpr::input(x, i as u32)),
            vec![],
            vec![i as i64],
        );
        g.mark_output(id);
    }
    let place: Vec<(i64, i64)> = (0..n as i64).map(|i| (i.rem_euclid(p), 0)).collect();
    let time: Vec<i64> = (0..n as i64).map(|i| i.div_euclid(p)).collect();
    (g, ResolvedMapping { place, time })
}

/// Build the *reduce* idiom: a binary tree over `n` leaves (a power of
/// two), leaves block-distributed over `p` PEs (also a power of two,
/// `p ≤ n`), internal nodes at their left child's PE, times derived by
/// list scheduling. Local sub-trees reduce in place; only `log₂ p`
/// levels cross PEs.
pub fn idiom_reduce(
    n: usize,
    p: i64,
    width_bits: u32,
    machine: &MachineConfig,
) -> (DataflowGraph, ResolvedMapping) {
    assert!(n.is_power_of_two(), "reduce idiom requires power-of-two n");
    assert!(p > 0 && (p as usize).is_power_of_two() && p as usize <= n);
    let mut g = DataflowGraph::new("reduce", width_bits);
    let x = g.add_input("X", vec![n]);
    let block = n / p as usize;
    let mut level: Vec<(u32, (i64, i64))> = (0..n)
        .map(|i| {
            let id = g.add_node(CExpr::input(x, i as u32), vec![], vec![i as i64]);
            (id, ((i / block) as i64, 0))
        })
        .collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len() / 2);
        for pair in level.chunks(2) {
            let (a, pa) = pair[0];
            let (b, _pb) = pair[1];
            let id = g.add_node(CExpr::dep(0).add(CExpr::dep(1)), vec![a, b], vec![]);
            next.push((id, pa));
        }
        level = next;
    }
    let root = level[0].0;
    g.mark_output(root);

    // Places: leaves by block; internal nodes tracked above.
    let mut places = vec![(0i64, 0i64); g.len()];
    // Recompute by walking again (leaf blocks, internal = left child).
    for (id, node) in g.nodes.iter().enumerate() {
        if node.deps.is_empty() {
            let i = node.index[0] as usize;
            places[id] = ((i / block) as i64, 0);
        } else {
            places[id] = places[node.deps[0] as usize];
        }
    }
    let rm = retime(&g, &places, machine);
    (g, rm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Evaluator;
    use crate::legality::check;
    use crate::mapping::InputPlacement;

    #[test]
    fn block_and_cyclic_layouts_differ() {
        let m = MachineConfig::linear(4);
        let a = DataLayout::cyclic(8, 4);
        let b = DataLayout::block(8, 4);
        assert!(!a.aligned_with(&b, &m));
        assert!(a.aligned_with(&a.clone(), &m));
    }

    #[test]
    fn block_layout_homes() {
        let m = MachineConfig::linear(4);
        let b = DataLayout::block(8, 4);
        let homes = b.homes(&m);
        assert_eq!(
            homes,
            vec![
                (0, 0),
                (0, 0),
                (1, 0),
                (1, 0),
                (2, 0),
                (2, 0),
                (3, 0),
                (3, 0)
            ]
        );
    }

    #[test]
    fn remap_identity_is_free() {
        let m = MachineConfig::linear(4);
        let a = DataLayout::cyclic(8, 4);
        let r = remap_cost(&a, &a, 32, &m);
        assert_eq!(r.moved, 0);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.energy().raw(), 0.0);
    }

    #[test]
    fn remap_block_to_cyclic_moves_most_elements() {
        let m = MachineConfig::linear(4);
        let r = remap_cost(&DataLayout::block(8, 4), &DataLayout::cyclic(8, 4), 32, &m);
        assert!(r.moved >= 4, "moved {}", r.moved);
        assert!(r.energy().raw() > 0.0);
        assert!(r.cycles > 0);
        assert_eq!(r.moved + r.stationary, 8);
    }

    #[test]
    fn shuffle_reversal_cost() {
        let m = MachineConfig::linear(8);
        let lay = DataLayout::cyclic(8, 8); // element i at PE i
        let perm: Vec<usize> = (0..8).rev().collect();
        let r = shuffle_cost(&lay, &lay, &perm, 32, &m);
        assert_eq!(r.moved, 8); // every element crosses
                                // Longest move is 7 hops.
        assert!(r.cycles >= 7);
    }

    #[test]
    fn pipeline_inserts_remap_on_misalignment() {
        let m = MachineConfig::linear(4);
        let (g, rm) = idiom_map(8, 4, 32);
        assert!(check(&g, &rm, &m).is_legal());
        let report = Evaluator::new(&g, &m)
            .with_all_inputs(InputPlacement::AtUse)
            .evaluate(&rm);

        let stage_cyclic = Module {
            name: "map-cyclic".into(),
            report: report.clone(),
            input_layout: DataLayout::cyclic(8, 4),
            output_layout: DataLayout::cyclic(8, 4),
        };
        let stage_block = Module {
            name: "map-block".into(),
            report,
            input_layout: DataLayout::block(8, 4),
            output_layout: DataLayout::block(8, 4),
        };

        let mut aligned = Pipeline::new();
        aligned.push(&stage_cyclic, &m, 32);
        aligned.push(&stage_cyclic, &m, 32);
        assert_eq!(aligned.remaps_inserted, 0);

        let mut misaligned = Pipeline::new();
        misaligned.push(&stage_cyclic, &m, 32);
        misaligned.push(&stage_block, &m, 32);
        assert_eq!(misaligned.remaps_inserted, 1);
        assert!(misaligned.energy().raw() > aligned.energy().raw());
        assert!(misaligned.cycles > aligned.cycles);
    }

    #[test]
    fn idiom_map_legal_and_dense() {
        let m = MachineConfig::linear(4);
        let (g, rm) = idiom_map(16, 4, 32);
        assert!(check(&g, &rm, &m).is_legal());
        assert_eq!(rm.makespan(), 4);
        assert_eq!(rm.pes_used(), 4);
    }

    #[test]
    fn idiom_reduce_correct_and_legal() {
        let m = MachineConfig::linear(4);
        let (g, rm) = idiom_reduce(16, 4, 32, &m);
        assert!(check(&g, &rm, &m).is_legal());
        let x: Vec<crate::value::Value> = (0..16)
            .map(|i| crate::value::Value::real(i as f64))
            .collect();
        let vals = g.eval(&[x]);
        assert_eq!(vals.last().unwrap().re, 120.0); // Σ 0..15
    }

    #[test]
    fn idiom_reduce_log_depth_cross_pe_messages() {
        let m = MachineConfig::linear(8);
        let (g, rm) = idiom_reduce(64, 8, 32, &m);
        let rep = Evaluator::new(&g, &m)
            .with_all_inputs(InputPlacement::AtUse)
            .evaluate(&rm);
        // Only log2(8) = 3 levels cross PEs: 4 + 2 + 1 = 7 messages.
        assert_eq!(rep.ledger.onchip_messages, 7);
    }

    #[test]
    fn gather_identity_equals_remap() {
        let m = MachineConfig::linear(4);
        let a = DataLayout::block(8, 4);
        let b = DataLayout::cyclic(8, 4);
        let identity: Vec<usize> = (0..8).collect();
        let g = gather_cost(&a, &b, &identity, 32, &m);
        let r = remap_cost(&a, &b, 32, &m);
        assert_eq!(g.moved, r.moved);
        assert_eq!(g.energy().raw(), r.energy().raw());
    }

    #[test]
    fn gather_broadcast_charges_per_reader() {
        let m = MachineConfig::linear(8);
        let src = DataLayout::cyclic(8, 8);
        let dst = DataLayout::cyclic(8, 8);
        // Every destination reads source element 0 (home PE 0).
        let idx = vec![0usize; 8];
        let g = gather_cost(&src, &dst, &idx, 32, &m);
        assert_eq!(g.moved, 7); // PE 0's own read is local
        assert_eq!(g.stationary, 1);
        // Injection is serialized at the single source PE.
        assert!(g.cycles >= 7);
    }

    #[test]
    fn scatter_and_gather_are_adjoint_on_permutations() {
        let m = MachineConfig::linear(8);
        let lay = DataLayout::cyclic(16, 8);
        let perm: Vec<usize> = (0..16).map(|i| (i * 5) % 16).collect();
        let sc = scatter_cost(&lay, &lay, &perm, 32, &m);
        // gather with the inverse permutation moves the same pairs.
        let mut inv = vec![0usize; 16];
        for (i, &p) in perm.iter().enumerate() {
            inv[p] = i;
        }
        let ga = gather_cost(&lay, &lay, &inv, 32, &m);
        assert_eq!(sc.moved, ga.moved);
        assert!((sc.ledger.onchip_bit_mm - ga.ledger.onchip_bit_mm).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_index_bounds_checked() {
        let m = MachineConfig::linear(4);
        let lay = DataLayout::cyclic(4, 4);
        gather_cost(&lay, &lay, &[9, 0, 0, 0], 32, &m);
    }

    #[test]
    #[should_panic(expected = "equal shape")]
    fn remap_shape_mismatch_rejected() {
        let m = MachineConfig::linear(4);
        remap_cost(
            &DataLayout::cyclic(8, 4),
            &DataLayout::cyclic(16, 4),
            32,
            &m,
        );
    }
}
