//! Affine tensor recurrences: the `Forall` form of the paper's example.
//!
//! ```text
//! Forall i, j in (0:N-1, 0:N-1)
//!   H(i,j) = min(H(i-1,j-1) + f(R[i],Q[j]), H(i-1,j)+D, H(i,j-1)+I, 0);
//! ```
//!
//! A [`Recurrence`] is a rectangular iteration [`Domain`], one
//! [`ElemExpr`] giving each element in terms of earlier elements and
//! inputs, a [`Boundary`] policy for references that fall outside the
//! domain, and an [`OutputSpec`] saying which elements constitute the
//! result. [`Recurrence::elaborate`] unrolls it into a
//! [`DataflowGraph`] — one node per domain point, node id equal to the
//! point's row-major flat index.

use serde::{Deserialize, Serialize};

use crate::dataflow::{CExpr, DataflowGraph, InputSpec, Leaf, NodeId};
use crate::expr::ElemExpr;
use crate::value::Value;

/// A rectangular iteration domain `(0:extents[0]-1, 0:extents[1]-1, …)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Domain {
    /// Extent along each dimension.
    pub extents: Vec<usize>,
}

impl Domain {
    /// A 1-D domain of `n` points.
    pub fn d1(n: usize) -> Domain {
        Domain { extents: vec![n] }
    }

    /// A 2-D domain of `n × m` points.
    pub fn d2(n: usize, m: usize) -> Domain {
        Domain {
            extents: vec![n, m],
        }
    }

    /// A 3-D domain.
    pub fn d3(n: usize, m: usize, k: usize) -> Domain {
        Domain {
            extents: vec![n, m, k],
        }
    }

    /// Total number of points.
    pub fn len(&self) -> usize {
        self.extents.iter().product()
    }

    /// Whether the domain has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.extents.len()
    }

    /// Row-major flat index of a point, or `None` if outside.
    pub fn flatten(&self, idx: &[i64]) -> Option<usize> {
        if idx.len() != self.extents.len() {
            return None;
        }
        let mut flat = 0usize;
        for (&i, &d) in idx.iter().zip(&self.extents) {
            if i < 0 || i as usize >= d {
                return None;
            }
            flat = flat * d + i as usize;
        }
        Some(flat)
    }

    /// Iterate all points in row-major (lexicographic) order.
    pub fn iter(&self) -> DomainIter<'_> {
        DomainIter {
            domain: self,
            next: if self.is_empty() {
                None
            } else {
                Some(vec![0; self.extents.len()])
            },
        }
    }
}

/// Iterator over domain points in lexicographic order.
pub struct DomainIter<'a> {
    domain: &'a Domain,
    next: Option<Vec<i64>>,
}

impl Iterator for DomainIter<'_> {
    type Item = Vec<i64>;

    fn next(&mut self) -> Option<Vec<i64>> {
        let cur = self.next.clone()?;
        // Advance like an odometer, last dimension fastest.
        let mut idx = cur.clone();
        let mut dim = idx.len();
        loop {
            if dim == 0 {
                self.next = None;
                break;
            }
            dim -= 1;
            idx[dim] += 1;
            if (idx[dim] as usize) < self.domain.extents[dim] {
                self.next = Some(idx);
                break;
            }
            idx[dim] = 0;
        }
        Some(cur)
    }
}

/// What value an out-of-domain self-reference takes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Boundary {
    /// Out-of-domain references read 0 (the Smith-Waterman-style floor).
    Zero,
    /// Out-of-domain references read a constant.
    Const(f64),
    /// `base + scale·(i₀+1)` style linear boundary along the axis that
    /// went negative — the classic global-edit-distance frame where
    /// `H(-1, j) = (j+1)·gap` and `H(i, -1) = (i+1)·gap`.
    LinearGap {
        /// Per-step gap penalty.
        gap: f64,
    },
}

impl Boundary {
    /// The boundary value for an out-of-domain point `idx`.
    pub fn value_at(&self, idx: &[i64]) -> Value {
        match self {
            Boundary::Zero => Value::ZERO,
            Boundary::Const(c) => Value::real(*c),
            Boundary::LinearGap { gap } => {
                // Distance of the point from the domain corner along the
                // out-of-range axes: H(-1, j) = (j+1)·gap, H(i, -1) =
                // (i+1)·gap, H(-1,-1) = 0.
                let negs = idx.iter().filter(|&&i| i < 0).count();
                if negs == idx.len() {
                    return Value::ZERO;
                }
                let pos_sum: i64 = idx.iter().filter(|&&i| i >= 0).map(|&i| i + 1).sum();
                Value::real(*gap * pos_sum as f64)
            }
        }
    }
}

/// Which elements of the recurrence constitute its output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutputSpec {
    /// Every element is an output (e.g. a scan or a stencil sweep).
    All,
    /// Only the lexicographically last element (e.g. `H(N-1, M-1)`).
    LastElement,
    /// The last hyperplane along dimension 0 (e.g. the last row).
    LastAlongDim0,
}

/// Errors elaboration can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecurrenceError {
    /// A self-reference offset does not point lexicographically earlier,
    /// so the recurrence is not well founded under any schedule.
    NotWellFounded {
        /// The offending offset vector.
        offset: Vec<i64>,
    },
    /// A self-reference has the wrong rank.
    RankMismatch {
        /// The offending offset vector.
        offset: Vec<i64>,
        /// Domain rank.
        rank: usize,
    },
    /// An input reference resolved outside its tensor at some point.
    InputOutOfRange {
        /// Input id.
        input: usize,
        /// The domain point where the read failed.
        at: Vec<i64>,
        /// The resolved (out-of-range) input index.
        index: Vec<i64>,
    },
    /// The expression references an undeclared input.
    UnknownInput {
        /// Input id.
        input: usize,
    },
}

impl std::fmt::Display for RecurrenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecurrenceError::NotWellFounded { offset } => {
                write!(
                    f,
                    "self-reference offset {offset:?} is not lexicographically negative"
                )
            }
            RecurrenceError::RankMismatch { offset, rank } => {
                write!(
                    f,
                    "self-reference offset {offset:?} does not match domain rank {rank}"
                )
            }
            RecurrenceError::InputOutOfRange { input, at, index } => {
                write!(
                    f,
                    "input {input} read at {index:?} (from domain point {at:?}) is out of range"
                )
            }
            RecurrenceError::UnknownInput { input } => write!(f, "unknown input {input}"),
        }
    }
}

impl std::error::Error for RecurrenceError {}

/// An affine tensor recurrence.
///
/// ```
/// use fm_core::affine::IdxExpr;
/// use fm_core::dataflow::InputSpec;
/// use fm_core::expr::{ElemExpr, InputRef};
/// use fm_core::recurrence::{Boundary, Domain, OutputSpec, Recurrence};
/// use fm_core::value::Value;
///
/// // S(i) = S(i-1) + X[i]  — a running sum.
/// let rec = Recurrence {
///     name: "scan".into(),
///     domain: Domain::d1(4),
///     expr: ElemExpr::SelfRef(vec![-1]).add(ElemExpr::Input(InputRef {
///         input: 0,
///         index: vec![IdxExpr::i()],
///     })),
///     inputs: vec![InputSpec { name: "X".into(), dims: vec![4] }],
///     width_bits: 32,
///     boundary: Boundary::Zero,
///     output: OutputSpec::All,
/// };
/// let graph = rec.elaborate().unwrap();
/// let x: Vec<Value> = (1..=4).map(|v| Value::real(v as f64)).collect();
/// let vals = graph.eval(&[x]);
/// assert_eq!(vals.last().unwrap().re, 10.0); // 1+2+3+4
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recurrence {
    /// Name for reports.
    pub name: String,
    /// Iteration domain.
    pub domain: Domain,
    /// Element expression.
    pub expr: ElemExpr,
    /// Input tensor declarations.
    pub inputs: Vec<InputSpec>,
    /// Datapath width in bits.
    pub width_bits: u32,
    /// Boundary policy for out-of-domain self references.
    pub boundary: Boundary,
    /// Output selection.
    pub output: OutputSpec,
}

impl Recurrence {
    /// Validate that every self-reference offset is lexicographically
    /// negative (references strictly earlier elements) and every input id
    /// is declared.
    pub fn validate(&self) -> Result<(), RecurrenceError> {
        for off in self.expr.self_refs() {
            if off.len() != self.domain.rank() {
                return Err(RecurrenceError::RankMismatch {
                    offset: off.to_vec(),
                    rank: self.domain.rank(),
                });
            }
            let lex_neg = off.iter().copied().find(|&o| o != 0).is_some_and(|o| o < 0);
            if !lex_neg {
                return Err(RecurrenceError::NotWellFounded {
                    offset: off.to_vec(),
                });
            }
        }
        for r in self.expr.input_refs() {
            if r.input >= self.inputs.len() {
                return Err(RecurrenceError::UnknownInput { input: r.input });
            }
        }
        Ok(())
    }

    /// Unroll into an element-level dataflow graph. Node ids equal
    /// row-major flat domain indices.
    pub fn elaborate(&self) -> Result<DataflowGraph, RecurrenceError> {
        self.validate()?;
        let mut g = DataflowGraph::new(self.name.clone(), self.width_bits);
        for spec in &self.inputs {
            g.add_input(spec.name.clone(), spec.dims.clone());
        }

        let rank = self.domain.rank();
        let mut point_buf = vec![0i64; rank];
        for idx in self.domain.iter() {
            let mut deps: Vec<NodeId> = Vec::new();
            let expr = self.compile(&idx, &mut deps, &mut point_buf)?;
            let id = g.add_node(expr, deps, idx.clone());
            debug_assert_eq!(id as usize, self.domain.flatten(&idx).unwrap());
        }

        match self.output {
            OutputSpec::All => {
                for id in 0..g.len() {
                    g.mark_output(id as NodeId);
                }
            }
            OutputSpec::LastElement => {
                if !g.is_empty() {
                    g.mark_output((g.len() - 1) as NodeId);
                }
            }
            OutputSpec::LastAlongDim0 => {
                let last = self.domain.extents[0] as i64 - 1;
                let n = g.len();
                for (id, node) in g.nodes.iter().enumerate().take(n) {
                    if node.index[0] == last {
                        // Collect first; mark after to appease the borrow
                        // checker would require a second pass — instead
                        // mark via index math below.
                        let _ = id;
                    }
                }
                let ids: Vec<NodeId> = g
                    .nodes
                    .iter()
                    .enumerate()
                    .filter(|(_, node)| node.index[0] == last)
                    .map(|(id, _)| id as NodeId)
                    .collect();
                for id in ids {
                    g.mark_output(id);
                }
            }
        }
        Ok(g)
    }

    /// Compile the surface expression at one domain point into a
    /// [`CExpr`], appending producer node ids to `deps` in slot order.
    fn compile(
        &self,
        idx: &[i64],
        deps: &mut Vec<NodeId>,
        point_buf: &mut [i64],
    ) -> Result<CExpr, RecurrenceError> {
        self.compile_inner(&self.expr.clone(), idx, deps, point_buf)
    }

    fn compile_inner(
        &self,
        e: &ElemExpr,
        idx: &[i64],
        deps: &mut Vec<NodeId>,
        point_buf: &mut [i64],
    ) -> Result<CExpr, RecurrenceError> {
        Ok(match e {
            ElemExpr::Const(v) => CExpr::Leaf(Leaf::Const(*v)),
            ElemExpr::SelfRef(off) => {
                for (k, (&i, &o)) in idx.iter().zip(off.iter()).enumerate() {
                    point_buf[k] = i + o;
                }
                match self.domain.flatten(point_buf) {
                    Some(flat) => {
                        let slot = deps.len() as u32;
                        deps.push(flat as NodeId);
                        CExpr::dep(slot)
                    }
                    None => CExpr::Leaf(Leaf::Const(self.boundary.value_at(point_buf))),
                }
            }
            ElemExpr::Input(r) => {
                let resolved: Vec<i64> = r.index.iter().map(|ix| ix.eval(idx)).collect();
                let spec = &self.inputs[r.input];
                let flat =
                    spec.flatten(&resolved)
                        .ok_or_else(|| RecurrenceError::InputOutOfRange {
                            input: r.input,
                            at: idx.to_vec(),
                            index: resolved.clone(),
                        })?;
                CExpr::input(r.input as u32, flat as u32)
            }
            ElemExpr::Neg(a) => CExpr::Neg(Box::new(self.compile_inner(a, idx, deps, point_buf)?)),
            ElemExpr::Bin(op, a, b) => {
                let ca = self.compile_inner(a, idx, deps, point_buf)?;
                let cb = self.compile_inner(b, idx, deps, point_buf)?;
                CExpr::Bin(*op, Box::new(ca), Box::new(cb))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::IdxExpr;
    use crate::expr::{BinOp, InputRef};

    fn prefix_sum(n: usize) -> Recurrence {
        // S(i) = S(i-1) + X[i]
        Recurrence {
            name: "scan".into(),
            domain: Domain::d1(n),
            expr: ElemExpr::SelfRef(vec![-1]).add(ElemExpr::Input(InputRef {
                input: 0,
                index: vec![IdxExpr::i()],
            })),
            inputs: vec![InputSpec {
                name: "X".into(),
                dims: vec![n],
            }],
            width_bits: 32,
            boundary: Boundary::Zero,
            output: OutputSpec::All,
        }
    }

    #[test]
    fn domain_iteration_lexicographic() {
        let d = Domain::d2(2, 3);
        let pts: Vec<Vec<i64>> = d.iter().collect();
        assert_eq!(
            pts,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 0],
                vec![1, 1],
                vec![1, 2]
            ]
        );
        assert_eq!(d.len(), 6);
    }

    #[test]
    fn empty_domain_iterates_nothing() {
        let d = Domain::d2(0, 5);
        assert!(d.is_empty());
        assert_eq!(d.iter().count(), 0);
    }

    #[test]
    fn elaborate_prefix_sum_and_eval() {
        let r = prefix_sum(5);
        let g = r.elaborate().unwrap();
        assert_eq!(g.len(), 5);
        let x: Vec<Value> = (1..=5).map(|v| Value::real(v as f64)).collect();
        let vals = g.eval(&[x]);
        let sums: Vec<f64> = vals.iter().map(|v| v.re).collect();
        assert_eq!(sums, vec![1.0, 3.0, 6.0, 10.0, 15.0]);
    }

    #[test]
    fn prefix_sum_depth_is_n() {
        // The serial scan recurrence has an inherent chain of length n.
        let g = prefix_sum(8).elaborate().unwrap();
        assert_eq!(g.depth(), 8);
    }

    #[test]
    fn boundary_zero_used_off_domain() {
        let g = prefix_sum(3).elaborate().unwrap();
        // First node has no deps: its self-ref resolved to boundary 0.
        assert!(g.nodes[0].deps.is_empty());
        assert_eq!(g.nodes[1].deps, vec![0]);
    }

    #[test]
    fn boundary_linear_gap() {
        let b = Boundary::LinearGap { gap: 2.0 };
        assert_eq!(b.value_at(&[-1, 4]).re, 10.0); // (4+1)·2
        assert_eq!(b.value_at(&[3, -1]).re, 8.0); // (3+1)·2
        assert_eq!(b.value_at(&[-1, -1]).re, 0.0);
    }

    #[test]
    fn not_well_founded_rejected() {
        let mut r = prefix_sum(4);
        r.expr = ElemExpr::SelfRef(vec![1]); // forward reference
        assert!(matches!(
            r.validate(),
            Err(RecurrenceError::NotWellFounded { .. })
        ));
    }

    #[test]
    fn self_reference_zero_offset_rejected() {
        let mut r = prefix_sum(4);
        r.expr = ElemExpr::SelfRef(vec![0]);
        assert!(matches!(
            r.validate(),
            Err(RecurrenceError::NotWellFounded { .. })
        ));
    }

    #[test]
    fn rank_mismatch_rejected() {
        let mut r = prefix_sum(4);
        r.expr = ElemExpr::SelfRef(vec![-1, 0]);
        assert!(matches!(
            r.validate(),
            Err(RecurrenceError::RankMismatch { .. })
        ));
    }

    #[test]
    fn unknown_input_rejected() {
        let mut r = prefix_sum(4);
        r.expr = ElemExpr::Input(InputRef {
            input: 3,
            index: vec![IdxExpr::i()],
        });
        assert!(matches!(
            r.validate(),
            Err(RecurrenceError::UnknownInput { input: 3 })
        ));
    }

    #[test]
    fn input_out_of_range_reported() {
        let mut r = prefix_sum(4);
        // X[i+10] runs off the end.
        r.expr = ElemExpr::Input(InputRef {
            input: 0,
            index: vec![IdxExpr::i() + IdxExpr::c(10)],
        });
        assert!(matches!(
            r.elaborate(),
            Err(RecurrenceError::InputOutOfRange { input: 0, .. })
        ));
    }

    #[test]
    fn lex_negative_mixed_offset_allowed() {
        // (-1, +5) is lexicographically negative: allowed even though
        // the second component is positive.
        let r = Recurrence {
            name: "skew".into(),
            domain: Domain::d2(4, 8),
            expr: ElemExpr::SelfRef(vec![-1, 5]).add(ElemExpr::lit(1.0)),
            inputs: vec![],
            width_bits: 32,
            boundary: Boundary::Zero,
            output: OutputSpec::All,
        };
        let g = r.elaborate().unwrap();
        // Node (1,0) depends on (0,5).
        let id = Domain::d2(4, 8).flatten(&[1, 0]).unwrap();
        assert_eq!(g.nodes[id].deps, vec![5]);
    }

    #[test]
    fn output_specs() {
        let mut r = prefix_sum(4);
        r.output = OutputSpec::LastElement;
        let g = r.elaborate().unwrap();
        assert_eq!(g.outputs(), vec![3]);

        let r2 = Recurrence {
            name: "grid".into(),
            domain: Domain::d2(3, 2),
            expr: ElemExpr::SelfRef(vec![-1, 0]).add(ElemExpr::lit(1.0)),
            inputs: vec![],
            width_bits: 32,
            boundary: Boundary::Zero,
            output: OutputSpec::LastAlongDim0,
        };
        let g2 = r2.elaborate().unwrap();
        assert_eq!(g2.outputs(), vec![4, 5]);
    }

    #[test]
    fn edit_distance_values_match_reference() {
        // Global edit distance (Levenshtein) via LinearGap boundary.
        let r_str = b"kitten";
        let q_str = b"sitting";
        let n = r_str.len();
        let m = q_str.len();
        let f = ElemExpr::Bin(
            BinOp::Match { eq: 0.0, ne: 1.0 },
            Box::new(ElemExpr::Input(InputRef {
                input: 0,
                index: vec![IdxExpr::i()],
            })),
            Box::new(ElemExpr::Input(InputRef {
                input: 1,
                index: vec![IdxExpr::j()],
            })),
        );
        let rec = Recurrence {
            name: "edit".into(),
            domain: Domain::d2(n, m),
            expr: ElemExpr::min_of(vec![
                ElemExpr::SelfRef(vec![-1, -1]).add(f),
                ElemExpr::SelfRef(vec![-1, 0]).add(ElemExpr::lit(1.0)),
                ElemExpr::SelfRef(vec![0, -1]).add(ElemExpr::lit(1.0)),
            ]),
            inputs: vec![
                InputSpec {
                    name: "R".into(),
                    dims: vec![n],
                },
                InputSpec {
                    name: "Q".into(),
                    dims: vec![m],
                },
            ],
            width_bits: 32,
            boundary: Boundary::LinearGap { gap: 1.0 },
            output: OutputSpec::LastElement,
        };
        let g = rec.elaborate().unwrap();
        let rv: Vec<Value> = r_str.iter().map(|&c| Value::real(c as f64)).collect();
        let qv: Vec<Value> = q_str.iter().map(|&c| Value::real(c as f64)).collect();
        let vals = g.eval(&[rv, qv]);
        // Levenshtein("kitten", "sitting") = 3.
        assert_eq!(vals.last().unwrap().re, 3.0);
    }
}
