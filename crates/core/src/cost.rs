//! Analytic cost evaluation of a mapped function.
//!
//! "This model makes it possible to write algorithms (function +
//! mapping) with predictable execution time and energy because
//! communication — the major source of delay and energy consumption —
//! is made explicit."
//!
//! The [`Evaluator`] walks a dataflow graph under a resolved mapping and
//! charges, against an [`EnergyLedger`]:
//!
//! * **compute** — each expression op at the technology's op energy,
//!   plus one tile write for the produced value;
//! * **on-chip communication** — one message per distinct
//!   (producer, remote consumer PE) pair, at `bits × Manhattan-mm ×
//!   wire energy`; every operand read (local or delivered) is a tile
//!   access. A value consumed twice on one remote PE moves once — the
//!   mapping's job is to place consumers so values need not move at
//!   all;
//! * **input movement** — per [`InputPlacement`]: DRAM fetches (each
//!   distinct element once), on-chip distribution from a home PE, or
//!   nothing for the idealized `AtUse`;
//! * **output writeback** — optionally, one off-chip transfer per output
//!   element.
//!
//! Execution time is simply the mapping's makespan times the clock
//! period — legal mappings have already accounted for transit. The grid
//! simulator (`fm-grid`) executes the same program and must agree with
//! this evaluator on energy exactly and on time up to NoC contention;
//! integration tests assert both.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use fm_costmodel::{
    CostBackend, CostModelKind, EnergyLedger, Femtojoules, MachineCeilings, MappingTotals, OpKind,
    Picoseconds, RooflinePoint,
};

use crate::dataflow::{DataflowGraph, InputSpec, NodeId};
use crate::legality::tile_peaks;
use crate::machine::MachineConfig;
use crate::mapping::{InputPlacement, ResolvedMapping};
use crate::search::FigureOfMerit;

/// One node's contribution to the energy ledger: everything the
/// evaluator charges that is attributable to a single node — its
/// compute ops, its result tile write, its operand/input reads, and the
/// def→use messages it *produces*. Placement-dependent but
/// time-independent, which is what makes incremental re-costing after a
/// placement move possible (see [`crate::delta::DeltaEvaluator`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NodeCost {
    /// Compute (ALU + local SRAM) femtojoules.
    pub compute_fj: f64,
    /// Compute ops charged.
    pub compute_ops: u64,
    /// On-chip communication femtojoules.
    pub onchip_fj: f64,
    /// On-chip messages charged.
    pub onchip_messages: u64,
    /// On-chip bits moved.
    pub onchip_bits: u64,
    /// On-chip bit-millimeters moved.
    pub onchip_bit_mm: f64,
}

/// A fixed-shape pairwise-reduction tree over per-node costs, stored
/// as a structure of arrays.
///
/// Floating-point addition is not associative, so the *shape* of the
/// summation decides the bits of the total. Both the full evaluator and
/// the incremental one sum leaves through this tree (power-of-two
/// padded with zeros; `0.0 + x == x` exactly for the non-negative
/// energies charged here), so a leaf update followed by an `O(log n)`
/// path refresh reproduces the full sum bit-for-bit.
///
/// The six [`NodeCost`] fields combine independently (field-wise adds),
/// so the layout is one array per field rather than an array of
/// structs: a full rebuild ([`CostTree::refresh`]) streams six
/// contiguous arrays instead of striding through 56-byte structs, and
/// the tree can be reset in place with zero allocation once it has
/// grown to a graph's size.
#[derive(Debug, Clone, Default)]
pub struct CostTree {
    cap: usize,
    len: usize,
    compute_fj: Vec<f64>,
    compute_ops: Vec<u64>,
    onchip_fj: Vec<f64>,
    onchip_messages: Vec<u64>,
    onchip_bits: Vec<u64>,
    onchip_bit_mm: Vec<f64>,
}

impl CostTree {
    /// An empty tree (all-zero total); grows on first [`Self::reset`].
    pub fn new() -> CostTree {
        CostTree::default()
    }

    /// Build from leaves (empty input yields an all-zero total).
    pub fn build(leaves: &[NodeCost]) -> CostTree {
        let mut t = CostTree::default();
        t.reset(leaves.len());
        for (i, &v) in leaves.iter().enumerate() {
            t.set_leaf(i, v);
        }
        t.refresh();
        t
    }

    /// Re-shape for `len` leaves, zeroing every slot. Allocates only
    /// when the tree grows past any previous capacity, so a scratch
    /// tree reused across evaluations is allocation-free in steady
    /// state.
    pub fn reset(&mut self, len: usize) {
        let cap = len.next_power_of_two().max(1);
        self.cap = cap;
        self.len = len;
        let n = 2 * cap;
        fn zero<T: Copy>(v: &mut Vec<T>, n: usize, z: T) {
            v.clear();
            v.resize(n, z);
        }
        zero(&mut self.compute_fj, n, 0.0);
        zero(&mut self.compute_ops, n, 0);
        zero(&mut self.onchip_fj, n, 0.0);
        zero(&mut self.onchip_messages, n, 0);
        zero(&mut self.onchip_bits, n, 0);
        zero(&mut self.onchip_bit_mm, n, 0.0);
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no leaves.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Write leaf `i` without refreshing internal nodes (pair with
    /// [`Self::refresh`] after a bulk fill).
    pub fn set_leaf(&mut self, i: usize, v: NodeCost) {
        let j = self.cap + i;
        self.compute_fj[j] = v.compute_fj;
        self.compute_ops[j] = v.compute_ops;
        self.onchip_fj[j] = v.onchip_fj;
        self.onchip_messages[j] = v.onchip_messages;
        self.onchip_bits[j] = v.onchip_bits;
        self.onchip_bit_mm[j] = v.onchip_bit_mm;
    }

    /// Recompute every internal node bottom-up, one contiguous pass per
    /// field. Same combine shape as [`Self::update`]'s path refresh, so
    /// the total is bit-identical either way.
    pub fn refresh(&mut self) {
        fn up_f64(a: &mut [f64], cap: usize) {
            for i in (1..cap).rev() {
                a[i] = a[2 * i] + a[2 * i + 1];
            }
        }
        fn up_u64(a: &mut [u64], cap: usize) {
            for i in (1..cap).rev() {
                a[i] = a[2 * i] + a[2 * i + 1];
            }
        }
        up_f64(&mut self.compute_fj, self.cap);
        up_u64(&mut self.compute_ops, self.cap);
        up_f64(&mut self.onchip_fj, self.cap);
        up_u64(&mut self.onchip_messages, self.cap);
        up_u64(&mut self.onchip_bits, self.cap);
        up_f64(&mut self.onchip_bit_mm, self.cap);
    }

    /// Replace leaf `i` and refresh its root path.
    pub fn update(&mut self, i: usize, v: NodeCost) {
        self.set_leaf(i, v);
        let mut j = self.cap + i;
        while j > 1 {
            j /= 2;
            self.compute_fj[j] = self.compute_fj[2 * j] + self.compute_fj[2 * j + 1];
            self.compute_ops[j] = self.compute_ops[2 * j] + self.compute_ops[2 * j + 1];
            self.onchip_fj[j] = self.onchip_fj[2 * j] + self.onchip_fj[2 * j + 1];
            self.onchip_messages[j] = self.onchip_messages[2 * j] + self.onchip_messages[2 * j + 1];
            self.onchip_bits[j] = self.onchip_bits[2 * j] + self.onchip_bits[2 * j + 1];
            self.onchip_bit_mm[j] = self.onchip_bit_mm[2 * j] + self.onchip_bit_mm[2 * j + 1];
        }
    }

    fn at(&self, j: usize) -> NodeCost {
        NodeCost {
            compute_fj: self.compute_fj[j],
            compute_ops: self.compute_ops[j],
            onchip_fj: self.onchip_fj[j],
            onchip_messages: self.onchip_messages[j],
            onchip_bits: self.onchip_bits[j],
            onchip_bit_mm: self.onchip_bit_mm[j],
        }
    }

    /// Current value of leaf `i`.
    pub fn leaf(&self, i: usize) -> NodeCost {
        self.at(self.cap + i)
    }

    /// The tree-shaped sum of all leaves.
    pub fn total(&self) -> NodeCost {
        self.at(1)
    }
}

/// Placement-independent off-chip totals: DRAM input fetches (each
/// distinct element once) and optional output writeback. A pure
/// function of the graph and the evaluator's input placements, so the
/// incremental evaluator computes them once and reuses them.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OffchipTotals {
    /// Off-chip femtojoules.
    pub fj: f64,
    /// Off-chip transfers.
    pub transfers: u64,
    /// Off-chip bits moved.
    pub bits: u64,
}

/// Unflatten a row-major flat index against a tensor's dims.
pub(crate) fn unflatten(spec: &InputSpec, flat: u32) -> Vec<i64> {
    let mut idx = vec![0i64; spec.dims.len()];
    let mut rem = flat as usize;
    for (k, &d) in spec.dims.iter().enumerate().rev() {
        idx[k] = (rem % d) as i64;
        rem /= d;
    }
    idx
}

/// The outcome of evaluating one mapped function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// Graph name.
    pub name: String,
    /// Makespan in cycles.
    pub cycles: i64,
    /// Makespan in picoseconds (cycles × clock period).
    pub time_ps: Picoseconds,
    /// Energy and traffic, by category.
    pub ledger: EnergyLedger,
    /// Peak live bits in any one tile.
    pub peak_tile_bits: u64,
    /// Distinct PEs used.
    pub pes_used: usize,
    /// Elements per (PE used × cycle): 1.0 is a perfectly dense systolic
    /// schedule.
    pub utilization: f64,
    /// Total element count (the function's work at element granularity).
    pub elements: u64,
}

impl CostReport {
    /// Total energy.
    pub fn energy(&self) -> Femtojoules {
        self.ledger.energy.total()
    }

    /// Energy-delay product in fJ·ps.
    pub fn edp(&self) -> f64 {
        self.energy().raw() * self.time_ps.raw()
    }
}

/// Analytic evaluator for a graph on a machine.
#[derive(Debug, Clone)]
pub struct Evaluator<'a> {
    graph: &'a DataflowGraph,
    machine: &'a MachineConfig,
    input_placements: Vec<InputPlacement>,
    writeback_outputs: bool,
    multicast: bool,
    cost_model: CostModelKind,
}

impl<'a> Evaluator<'a> {
    /// New evaluator. Inputs default to [`InputPlacement::Dram`] (the
    /// honest default: data starts off chip) and outputs are not written
    /// back.
    pub fn new(graph: &'a DataflowGraph, machine: &'a MachineConfig) -> Self {
        Evaluator {
            graph,
            machine,
            input_placements: vec![InputPlacement::Dram; graph.inputs.len()],
            writeback_outputs: false,
            multicast: false,
            cost_model: CostModelKind::default(),
        }
    }

    /// Charge and score under a different cost backend. The default
    /// ([`CostModelKind::Analytic`]) is bit-identical to the historical
    /// hard-coded model.
    pub fn with_cost_model(mut self, kind: CostModelKind) -> Self {
        self.cost_model = kind;
        self
    }

    /// Which cost backend this evaluator charges under.
    pub fn cost_model(&self) -> CostModelKind {
        self.cost_model
    }

    /// The active backend instance.
    pub fn backend(&self) -> &'static dyn CostBackend {
        self.cost_model.backend()
    }

    /// Route def→use traffic as multicast trees (union of X-Y paths,
    /// shared prefixes paid once) instead of per-destination unicasts.
    /// **Analytic what-if only**: the grid simulator models unicast, so
    /// the sim-agreement invariant applies to the default (unicast)
    /// evaluator.
    pub fn with_multicast(mut self, on: bool) -> Self {
        self.multicast = on;
        self
    }

    /// Set the placement of one input.
    pub fn with_input_placement(mut self, input: usize, p: InputPlacement) -> Self {
        self.input_placements[input] = p;
        self
    }

    /// Set every input's placement at once.
    pub fn with_all_inputs(mut self, p: InputPlacement) -> Self {
        for slot in &mut self.input_placements {
            *slot = p.clone();
        }
        self
    }

    /// Charge one off-chip transfer per output element.
    pub fn with_writeback(mut self, on: bool) -> Self {
        self.writeback_outputs = on;
        self
    }

    /// The graph under evaluation.
    pub fn graph(&self) -> &'a DataflowGraph {
        self.graph
    }

    /// The machine evaluated against.
    pub fn machine(&self) -> &'a MachineConfig {
        self.machine
    }

    /// The placement of one input (for the flat engine's precompute).
    pub(crate) fn input_placement(&self, input: usize) -> &InputPlacement {
        &self.input_placements[input]
    }

    /// Whether def→use traffic routes as multicast trees.
    pub(crate) fn multicast_on(&self) -> bool {
        self.multicast
    }

    /// The ledger contribution of node `id` under the given placements:
    /// its ops, result write, operand/input reads, and the def→use
    /// messages it produces to its (remote) consumers. Depends only on
    /// `place[id]`, the places of `id`'s consumers, and the evaluator's
    /// input placements — never on times.
    pub(crate) fn node_cost(
        &self,
        id: usize,
        place: &[(i64, i64)],
        consumers: &[Vec<NodeId>],
    ) -> NodeCost {
        self.node_cost_in(id, place, &consumers[id], &mut Vec::new())
    }

    /// [`Self::node_cost`] with a caller-owned buffer for the distinct
    /// remote consumer PEs, so hot loops (the incremental evaluator's
    /// repair path, the warm-tune flush) re-cost nodes without a heap
    /// allocation per call. `consumers` is node `id`'s consumer list.
    pub(crate) fn node_cost_in(
        &self,
        id: usize,
        place: &[(i64, i64)],
        consumers: &[NodeId],
        pes: &mut Vec<(i64, i64)>,
    ) -> NodeCost {
        let g = self.graph;
        let m = self.machine;
        let be = self.backend();
        let width = u64::from(g.width_bits);
        let n = &g.nodes[id];
        let mut c = NodeCost::default();
        let compute = |e: Femtojoules, c: &mut NodeCost| {
            c.compute_fj += e.raw();
            c.compute_ops += 1;
        };
        let onchip = |mm: f64, e: Femtojoules, c: &mut NodeCost| {
            c.onchip_fj += e.raw();
            c.onchip_messages += 1;
            c.onchip_bits += width;
            c.onchip_bit_mm += width as f64 * mm;
        };

        // Compute: expression ops + one tile write for the result.
        for op in n.expr.op_kinds(g.width_bits) {
            compute(be.op_energy(&m.tech, op), &mut c);
        }
        compute(be.tile_access_energy(&m.tech, width), &mut c);

        let cons = place[id];
        // Operand reads: one tile access per dependency (the value is
        // local by then — produced here or delivered here).
        for _ in &n.deps {
            compute(be.tile_access_energy(&m.tech, width), &mut c);
        }

        // Input reads. DRAM reads are charged in [`Self::offchip_totals`]
        // (once per distinct element, not per read).
        for (input, flat) in n.expr.input_reads() {
            match &self.input_placements[input as usize] {
                InputPlacement::Dram => {}
                InputPlacement::Local(pexpr) => {
                    let spec = &g.inputs[input as usize];
                    let idx = unflatten(spec, flat);
                    let home = pexpr.eval(&idx, m.cols);
                    if home == cons {
                        compute(be.tile_access_energy(&m.tech, width), &mut c);
                    } else {
                        let a = (home.0 as u32, home.1 as u32);
                        let b = (cons.0 as u32, cons.1 as u32);
                        let e = be.wire_energy(&m.tech, width, m.tech.chip.manhattan(a, b));
                        onchip(m.distance_mm(a, b), e, &mut c);
                    }
                }
                InputPlacement::AtUse => {
                    compute(be.tile_access_energy(&m.tech, width), &mut c);
                }
            }
        }

        // Def→use movement this node *produces*: one message per
        // distinct remote consumer PE.
        let prod = place[id];
        pes.clear();
        pes.extend(
            consumers
                .iter()
                .map(|&cn| place[cn as usize])
                .filter(|&p| p != prod),
        );
        pes.sort_unstable();
        pes.dedup();
        let a = (prod.0 as u32, prod.1 as u32);
        if self.multicast {
            if !pes.is_empty() {
                let dests: Vec<(u32, u32)> = pes.iter().map(|p| (p.0 as u32, p.1 as u32)).collect();
                let (mm, _links) = m.multicast_route(a, &dests);
                let e = be.wire_energy(&m.tech, width, fm_costmodel::Millimeters::new(mm));
                onchip(mm, e, &mut c);
            }
        } else {
            for &pe in pes.iter() {
                let b = (pe.0 as u32, pe.1 as u32);
                let e = be.wire_energy(&m.tech, width, m.tech.chip.manhattan(a, b));
                onchip(m.distance_mm(a, b), e, &mut c);
            }
        }
        c
    }

    /// Off-chip totals: DRAM fetches (each distinct element once) plus
    /// optional output writeback. Placement-independent.
    pub(crate) fn offchip_totals(&self) -> OffchipTotals {
        let g = self.graph;
        let m = self.machine;
        let width = u64::from(g.width_bits);
        let mut dram_elements: HashSet<(u32, u32)> = HashSet::new();
        for n in &g.nodes {
            for (input, flat) in n.expr.input_reads() {
                if matches!(self.input_placements[input as usize], InputPlacement::Dram) {
                    dram_elements.insert((input, flat));
                }
            }
        }
        let mut off = OffchipTotals::default();
        let be = self.backend();
        let charge = |off: &mut OffchipTotals| {
            off.fj += be.offchip_energy(&m.tech, width).raw();
            off.transfers += 1;
            off.bits += width;
        };
        for _ in &dram_elements {
            charge(&mut off);
        }
        if self.writeback_outputs {
            for _ in g.outputs() {
                charge(&mut off);
            }
        }
        off
    }

    /// Whether `input` is placed off-chip (DRAM). The incremental
    /// evaluator refcounts distinct DRAM element reads across edits, so
    /// it needs to classify reads the same way
    /// [`Self::offchip_totals`] does.
    pub(crate) fn dram_input(&self, input: u32) -> bool {
        matches!(
            self.input_placements.get(input as usize),
            Some(InputPlacement::Dram)
        )
    }

    /// Whether output writeback is charged.
    pub(crate) fn writeback_on(&self) -> bool {
        self.writeback_outputs
    }

    /// Off-chip totals from a transfer count. Every transfer
    /// [`Self::offchip_totals`] charges is identical (same width), so
    /// its fold is a pure function of the count; replaying the same
    /// fold reproduces the totals bit-for-bit without re-walking the
    /// graph.
    pub(crate) fn offchip_from_count(&self, transfers: u64) -> OffchipTotals {
        let m = self.machine;
        let be = self.backend();
        let width = u64::from(self.graph.width_bits);
        let mut off = OffchipTotals::default();
        for _ in 0..transfers {
            off.fj += be.offchip_energy(&m.tech, width).raw();
            off.transfers += 1;
            off.bits += width;
        }
        off
    }

    /// Assemble a [`CostReport`] from tree-summed node costs, off-chip
    /// totals, and schedule aggregates. Shared verbatim between
    /// [`Self::evaluate`] and the incremental evaluator so both produce
    /// bit-identical reports from identical components.
    pub(crate) fn assemble(
        &self,
        total: NodeCost,
        off: &OffchipTotals,
        cycles: i64,
        peak_tile_bits: u64,
        pes_used: usize,
    ) -> CostReport {
        self.assemble_with_name(
            self.graph.name.clone(),
            total,
            off,
            cycles,
            peak_tile_bits,
            pes_used,
        )
    }

    /// [`Self::assemble`] with a caller-supplied name. The flat
    /// engine's scoring path passes an empty string so assembling a
    /// report allocates nothing; every numeric field is computed by the
    /// exact same arithmetic either way.
    pub(crate) fn assemble_with_name(
        &self,
        name: String,
        total: NodeCost,
        off: &OffchipTotals,
        cycles: i64,
        peak_tile_bits: u64,
        pes_used: usize,
    ) -> CostReport {
        let g = self.graph;
        let mut ledger = EnergyLedger::new();
        ledger.energy.compute = Femtojoules::new(total.compute_fj);
        ledger.energy.onchip_comm = Femtojoules::new(total.onchip_fj);
        ledger.energy.offchip = Femtojoules::new(off.fj);
        ledger.compute_ops = total.compute_ops;
        ledger.onchip_messages = total.onchip_messages;
        ledger.onchip_bits = total.onchip_bits;
        ledger.onchip_bit_mm = total.onchip_bit_mm;
        ledger.offchip_transfers = off.transfers;
        ledger.offchip_bits = off.bits;

        let utilization = if cycles > 0 && pes_used > 0 {
            g.len() as f64 / (pes_used as f64 * cycles as f64)
        } else {
            0.0
        };
        CostReport {
            name,
            cycles,
            time_ps: self.machine.clock_period() * cycles as f64,
            ledger,
            peak_tile_bits,
            pes_used,
            utilization,
            elements: g.len() as u64,
        }
    }

    /// Backend-neutral aggregates of a report, for scoring and
    /// roofline placement.
    pub fn totals(&self, r: &CostReport) -> MappingTotals {
        MappingTotals {
            compute_ops: r.ledger.compute_ops,
            onchip_bits: r.ledger.onchip_bits,
            onchip_bit_mm: r.ledger.onchip_bit_mm,
            offchip_bits: r.ledger.offchip_bits,
            energy_fj: r.energy().raw(),
            time_ps: r.time_ps.raw(),
            cycles: r.cycles,
            pes_used: r.pes_used,
            peak_tile_bits: r.peak_tile_bits,
        }
    }

    /// The target machine's roofline ceilings.
    pub fn ceilings(&self) -> MachineCeilings {
        self.machine.ceilings()
    }

    /// Scalar score of a report under the active backend (lower is
    /// better). For the default backend this is bit-identical to
    /// [`FigureOfMerit::score`]; other backends may substitute their
    /// own time/energy axes (`Edp` composes as `time × energy`, which
    /// matches the historical `energy × time` bit-for-bit).
    pub fn score(&self, fom: FigureOfMerit, r: &CostReport) -> f64 {
        if self.cost_model == CostModelKind::Analytic {
            // Fast path, and the bit-identity anchor: the exact
            // pre-backend arithmetic.
            return fom.score(r);
        }
        let be = self.backend();
        let totals = self.totals(r);
        match fom {
            FigureOfMerit::Time => be.time_score(&totals, &self.ceilings()),
            FigureOfMerit::Energy => be.energy_score(&totals),
            FigureOfMerit::Edp => {
                be.time_score(&totals, &self.ceilings()) * be.energy_score(&totals)
            }
            FigureOfMerit::Footprint => r.peak_tile_bits as f64,
        }
    }

    /// Where this report sits under the machine's roofline.
    pub fn roofline(&self, r: &CostReport) -> RooflinePoint {
        self.backend().roofline(&self.totals(r), &self.ceilings())
    }

    /// Evaluate the mapped function. The mapping is assumed legal; run
    /// [`crate::legality::check`] first.
    ///
    /// This runs the flat engine ([`crate::flat`]): PE coordinates are
    /// interned to dense ids, per-node costs stream into a
    /// structure-of-arrays [`CostTree`], and all working memory comes
    /// from a thread-local scratch arena. Mappings with off-grid places
    /// (possible only for unchecked mappings) fall back to
    /// [`Self::evaluate_ref`]. Debug builds assert the two paths agree
    /// bit-for-bit on every call.
    pub fn evaluate(&self, rm: &ResolvedMapping) -> CostReport {
        let ctx = crate::flat::EvalContext::new(self);
        let flat = crate::flat::with_thread_scratch(|scratch| {
            ctx.evaluate_report(self, &rm.place, &rm.time, scratch)
        });
        match flat {
            Some(report) => {
                debug_assert_eq!(
                    report,
                    self.evaluate_ref(rm),
                    "flat evaluation diverged from the reference path"
                );
                report
            }
            None => self.evaluate_ref(rm),
        }
    }

    /// Reference implementation of [`Self::evaluate`]: the original
    /// per-call path (consumer lists, leaves and off-chip totals all
    /// rebuilt here). Kept as the bit-identity anchor the flat engine
    /// is debug-asserted and benchmarked (E22) against, and as the
    /// fallback for off-grid places.
    #[doc(hidden)]
    pub fn evaluate_ref(&self, rm: &ResolvedMapping) -> CostReport {
        let g = self.graph;
        let consumers = g.consumers();
        let leaves: Vec<NodeCost> = (0..g.len())
            .map(|id| self.node_cost(id, &rm.place, &consumers))
            .collect();
        let total = CostTree::build(&leaves).total();
        let off = self.offchip_totals();
        let cycles = rm.makespan();
        let peak_tile_bits = tile_peaks(g, rm, cycles)
            .values()
            .copied()
            .max()
            .unwrap_or(0);
        self.assemble(total, &off, cycles, peak_tile_bits, rm.pes_used())
    }
}

/// Cost of running the same function on a conventional out-of-order
/// core: every op pays the instruction-overhead factor, every distinct
/// input element is a DRAM access, and execution is serial (one element
/// per add-latency). This is the paper's "10,000× loss of efficiency"
/// comparator for experiments E2 and E5.
pub fn conventional_core_report(graph: &DataflowGraph, machine: &MachineConfig) -> CostReport {
    let width = u64::from(graph.width_bits);
    let mut ledger = EnergyLedger::new();
    let mut dram: HashSet<(u32, u32)> = HashSet::new();
    for n in &graph.nodes {
        for op in n.expr.op_kinds(graph.width_bits) {
            let raw = machine.tech.op_energy(op);
            ledger.charge_compute(raw);
            ledger.charge_overhead(machine.tech.instruction_energy(op) - raw);
        }
        for read in n.expr.input_reads() {
            dram.insert(read);
        }
    }
    for _ in &dram {
        ledger.charge_offchip(width, machine.tech.offchip_energy(width));
    }
    let cycles = graph.len() as i64;
    CostReport {
        name: format!("{} (conventional core)", graph.name),
        cycles,
        time_ps: machine.tech.op_latency(OpKind::add32()) * cycles as f64,
        ledger,
        peak_tile_bits: 0,
        pes_used: 1,
        utilization: 1.0,
        elements: graph.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::IdxExpr;
    use crate::dataflow::CExpr;
    use crate::mapping::{Mapping, PlaceExpr, ResolvedMapping};
    use crate::value::Value;

    fn two_pe_edge() -> (DataflowGraph, ResolvedMapping, MachineConfig) {
        let mut g = DataflowGraph::new("edge", 32);
        let a = g.add_node(CExpr::konst(Value::real(1.0)), vec![], vec![0]);
        let b = g.add_node(
            CExpr::dep(0).add(CExpr::konst(Value::real(1.0))),
            vec![a],
            vec![1],
        );
        g.mark_output(b);
        let m = MachineConfig::linear(4);
        let rm = ResolvedMapping {
            place: vec![(0, 0), (1, 0)],
            time: vec![0, 1],
        };
        (g, rm, m)
    }

    #[test]
    fn cross_pe_edge_charged_as_onchip_message() {
        let (g, rm, m) = two_pe_edge();
        let rep = Evaluator::new(&g, &m).evaluate(&rm);
        assert_eq!(rep.ledger.onchip_messages, 1);
        assert_eq!(rep.ledger.onchip_bits, 32);
        let expected = m.route_energy(32, (0, 0), (1, 0));
        assert!((rep.ledger.energy.onchip_comm.raw() - expected.raw()).abs() < 1e-9);
    }

    #[test]
    fn same_pe_edge_is_not_a_message() {
        let (g, _, m) = two_pe_edge();
        let rm = ResolvedMapping {
            place: vec![(0, 0), (0, 0)],
            time: vec![0, 1],
        };
        let rep = Evaluator::new(&g, &m).evaluate(&rm);
        assert_eq!(rep.ledger.onchip_messages, 0);
        assert_eq!(rep.ledger.energy.onchip_comm.raw(), 0.0);
    }

    #[test]
    fn dram_inputs_charged_once_per_distinct_element() {
        let mut g = DataflowGraph::new("reads", 32);
        let x = g.add_input("X", vec![4]);
        // Two nodes read element 0; one reads element 1.
        g.add_node(CExpr::input(x, 0).add(CExpr::input(x, 1)), vec![], vec![0]);
        g.add_node(CExpr::input(x, 0), vec![], vec![1]);
        let m = MachineConfig::linear(2);
        let rm = ResolvedMapping {
            place: vec![(0, 0), (1, 0)],
            time: vec![0, 1],
        };
        let rep = Evaluator::new(&g, &m).evaluate(&rm);
        assert_eq!(rep.ledger.offchip_transfers, 2); // elements 0 and 1
    }

    #[test]
    fn local_input_home_vs_remote() {
        let mut g = DataflowGraph::new("local", 32);
        let x = g.add_input("X", vec![2]);
        g.add_node(CExpr::input(x, 0), vec![], vec![0]);
        g.add_node(CExpr::input(x, 1), vec![], vec![1]);
        let m = MachineConfig::linear(4);
        let rm = ResolvedMapping {
            place: vec![(0, 0), (1, 0)],
            time: vec![0, 1],
        };
        // Homed by index: element i at PE i → both reads are local.
        let rep = Evaluator::new(&g, &m)
            .with_input_placement(0, InputPlacement::Local(PlaceExpr::row0(IdxExpr::i())))
            .evaluate(&rm);
        assert_eq!(rep.ledger.onchip_messages, 0);
        assert_eq!(rep.ledger.offchip_transfers, 0);

        // Homed all at PE 3 → both reads are remote messages.
        let rep2 = Evaluator::new(&g, &m)
            .with_input_placement(0, InputPlacement::Local(PlaceExpr::row0(IdxExpr::c(3))))
            .evaluate(&rm);
        assert_eq!(rep2.ledger.onchip_messages, 2);
    }

    #[test]
    fn writeback_charges_outputs() {
        let (g, rm, m) = two_pe_edge();
        let rep = Evaluator::new(&g, &m).with_writeback(true).evaluate(&rm);
        assert_eq!(rep.ledger.offchip_transfers, 1);
    }

    #[test]
    fn utilization_and_makespan() {
        let (g, rm, m) = two_pe_edge();
        let rep = Evaluator::new(&g, &m).evaluate(&rm);
        assert_eq!(rep.cycles, 2);
        assert_eq!(rep.pes_used, 2);
        assert!((rep.utilization - 2.0 / 4.0).abs() < 1e-12);
        assert!((rep.time_ps.raw() - 2.0 * m.clock_period().raw()).abs() < 1e-9);
    }

    #[test]
    fn conventional_core_pays_overhead() {
        let (g, _, m) = two_pe_edge();
        let conv = conventional_core_report(&g, &m);
        // One add op in the graph → overhead ≈ (10000-1) × its energy.
        let compute = conv.ledger.energy.compute.raw();
        let overhead = conv.ledger.energy.overhead.raw();
        assert!(overhead > 9000.0 * compute / 2.0);
        assert!(conv.ledger.energy.overhead.raw() > 0.0);
    }

    #[test]
    fn mapped_beats_conventional_on_energy() {
        // The paper's headline: mapped spatial execution is orders of
        // magnitude more energy-efficient than a conventional core.
        // On a dense grid (short hops) the gap is ~70×; on a sparse
        // 4-PE grid one hop spans 7 mm of die and the gap narrows —
        // also the paper's point (distance is what costs).
        let (g, _, _) = two_pe_edge();
        let m = MachineConfig::n5(32, 32);
        let rm = ResolvedMapping {
            place: vec![(0, 0), (1, 0)],
            time: vec![0, 1],
        };
        let mapped = Evaluator::new(&g, &m).evaluate(&rm);
        let conv = conventional_core_report(&g, &m);
        assert!(conv.energy().raw() > 10.0 * mapped.energy().raw());
    }

    #[test]
    fn serial_mapping_of_chain_cost_is_linear() {
        let mut g = DataflowGraph::new("chain", 32);
        let mut prev: Option<u32> = None;
        for i in 0..10 {
            let id = match prev {
                None => g.add_node(CExpr::konst(Value::ZERO), vec![], vec![i]),
                Some(p) => g.add_node(CExpr::dep(0), vec![p], vec![i]),
            };
            prev = Some(id);
        }
        let m = MachineConfig::linear(1);
        let rm = Mapping::serial(&g).resolve(&g, &m).unwrap();
        let rep = Evaluator::new(&g, &m).evaluate(&rm);
        assert_eq!(rep.cycles, 10);
        assert_eq!(rep.ledger.onchip_messages, 0);
    }

    #[test]
    fn multicast_never_costs_more_than_unicast() {
        // A producer with consumers strung down a line: multicast pays
        // the longest path once, unicast pays every prefix again.
        let mut g = DataflowGraph::new("bcast", 32);
        let src = g.add_node(CExpr::konst(Value::real(1.0)), vec![], vec![0]);
        for i in 1..=5i64 {
            g.add_node(CExpr::dep(0), vec![src], vec![i]);
        }
        let m = MachineConfig::linear(8);
        let rm = ResolvedMapping {
            place: (0..6).map(|i| (i, 0)).collect(),
            time: (0..6).map(|i| i.max(1)).collect(),
        };
        let uni = Evaluator::new(&g, &m).evaluate(&rm);
        let multi = Evaluator::new(&g, &m).with_multicast(true).evaluate(&rm);
        assert!(multi.ledger.energy.onchip_comm.raw() < uni.ledger.energy.onchip_comm.raw());
        // The line multicast costs exactly the longest unicast.
        let longest = m.route_energy(32, (0, 0), (5, 0)).raw();
        assert!((multi.ledger.energy.onchip_comm.raw() - longest).abs() < 1e-9);
        // Events: one multicast vs five unicasts.
        assert_eq!(multi.ledger.onchip_messages, 1);
        assert_eq!(uni.ledger.onchip_messages, 5);
    }

    #[test]
    fn unflatten_row_major() {
        let spec = InputSpec {
            name: "A".into(),
            dims: vec![3, 4],
        };
        assert_eq!(unflatten(&spec, 0), vec![0, 0]);
        assert_eq!(unflatten(&spec, 6), vec![1, 2]);
        assert_eq!(unflatten(&spec, 11), vec![2, 3]);
    }

    #[test]
    fn edp_positive() {
        let (g, rm, m) = two_pe_edge();
        let rep = Evaluator::new(&g, &m).evaluate(&rm);
        assert!(rep.edp() > 0.0);
    }
}
