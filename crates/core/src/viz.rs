//! ASCII space-time diagrams for small mapped graphs.
//!
//! "Each operation must be assigned a time and location" — for a small
//! graph, that assignment *is* a picture: PEs down the side, cycles
//! across the top, node ids in the cells. [`render_schedule`] draws it,
//! which is how the examples and docs show what a mapping means without
//! waving hands.
//!
//! ```text
//! pe \ t |   0   1   2   3
//! -------+----------------
//! (0,0)  |   0   1   2   3
//! (1,0)  |   .   4   5   6
//! ```

use std::collections::HashMap;

use crate::dataflow::DataflowGraph;
use crate::mapping::ResolvedMapping;

/// Maximum cells before the renderer truncates (keeps accidental huge
/// dumps out of terminals).
const MAX_CELLS: usize = 4096;

/// Render the space-time diagram of a mapped graph. Cells show node
/// ids; `.` marks an idle (PE, cycle); multiple nodes in one cell
/// (issue width > 1) are joined with `+`.
pub fn render_schedule(graph: &DataflowGraph, rm: &ResolvedMapping) -> String {
    let makespan = rm.makespan().max(0) as usize;
    let mut pes: Vec<(i64, i64)> = rm.place.clone();
    pes.sort_unstable();
    pes.dedup();

    if pes.len() * makespan > MAX_CELLS {
        return format!(
            "[schedule too large to draw: {} PEs × {} cycles]",
            pes.len(),
            makespan
        );
    }

    let mut cells: HashMap<((i64, i64), i64), Vec<u32>> = HashMap::new();
    for id in 0..graph.len() {
        cells
            .entry((rm.place[id], rm.time[id]))
            .or_default()
            .push(id as u32);
    }

    // Column width: widest cell content.
    let fmt_cell = |ids: Option<&Vec<u32>>| -> String {
        match ids {
            None => ".".to_string(),
            Some(v) => v
                .iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join("+"),
        }
    };
    let mut width = 1;
    for t in 0..makespan {
        for pe in &pes {
            width = width.max(fmt_cell(cells.get(&(*pe, t as i64))).len());
        }
        width = width.max(t.to_string().len());
    }

    let mut out = String::new();
    let row_head_w = pes
        .iter()
        .map(|p| format!("({},{})", p.0, p.1).len())
        .max()
        .unwrap_or(5);
    out.push_str(&format!("{:<row_head_w$} |", "pe \\ t"));
    for t in 0..makespan {
        out.push_str(&format!(" {t:>width$}"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(row_head_w + 1));
    out.push('+');
    out.push_str(&"-".repeat(makespan * (width + 1)));
    out.push('\n');
    for pe in &pes {
        out.push_str(&format!(
            "{:<row_head_w$} |",
            format!("({},{})", pe.0, pe.1)
        ));
        for t in 0..makespan {
            out.push_str(&format!(
                " {:>width$}",
                fmt_cell(cells.get(&(*pe, t as i64)))
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::CExpr;
    use crate::value::Value;

    fn chain(n: usize) -> DataflowGraph {
        let mut g = DataflowGraph::new("c", 32);
        let mut prev: Option<u32> = None;
        for i in 0..n {
            let id = match prev {
                None => g.add_node(CExpr::konst(Value::ZERO), vec![], vec![i as i64]),
                Some(p) => g.add_node(CExpr::dep(0), vec![p], vec![i as i64]),
            };
            prev = Some(id);
        }
        g
    }

    #[test]
    fn renders_systolic_wavefront() {
        let g = chain(6);
        let rm = ResolvedMapping {
            place: (0..6).map(|i| (i / 3, 0)).collect(),
            time: (0..6).collect(),
        };
        let s = render_schedule(&g, &rm);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, 2 PE rows
        assert!(lines[2].starts_with("(0,0)"));
        assert!(lines[2].contains('0') && lines[2].contains('2'));
        assert!(lines[3].contains('.')); // PE 1 idle early
        assert!(lines[3].contains('5'));
    }

    #[test]
    fn multi_issue_cells_joined() {
        let mut g = DataflowGraph::new("wide", 32);
        g.add_node(CExpr::konst(Value::ZERO), vec![], vec![0]);
        g.add_node(CExpr::konst(Value::ZERO), vec![], vec![1]);
        let rm = ResolvedMapping {
            place: vec![(0, 0), (0, 0)],
            time: vec![0, 0],
        };
        let s = render_schedule(&g, &rm);
        assert!(s.contains("0+1"));
    }

    #[test]
    fn huge_schedules_truncate() {
        let g = chain(1);
        let rm = ResolvedMapping {
            place: vec![(0, 0)],
            time: vec![100_000],
        };
        let s = render_schedule(&g, &rm);
        assert!(s.contains("too large"));
    }
}
