//! The scalar value domain for F&M functions.
//!
//! A single value type keeps the element-level dataflow graph monomorphic
//! (no generics bubbling through mappings and simulators). We use a
//! complex double: real kernels (edit distance, scan, matmul, BFS)
//! operate on the real part with `im == 0`, and the FFT kernels get
//! native complex arithmetic. Comparisons (`min`/`max`) order by the
//! real part, which is exactly what the real kernels need and meaningless
//!-but-harmless for complex ones.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A complex double value flowing along dataflow edges.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Value {
    /// Real part.
    pub re: f64,
    /// Imaginary part (zero for real kernels).
    pub im: f64,
}

impl Value {
    /// Zero.
    pub const ZERO: Value = Value { re: 0.0, im: 0.0 };

    /// A purely real value.
    #[inline]
    pub const fn real(re: f64) -> Value {
        Value { re, im: 0.0 }
    }

    /// A complex value.
    #[inline]
    pub const fn complex(re: f64, im: f64) -> Value {
        Value { re, im }
    }

    /// `e^{iθ}` — the FFT twiddle factor.
    pub fn cis(theta: f64) -> Value {
        Value {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Minimum by real part.
    #[inline]
    pub fn min(self, other: Value) -> Value {
        if self.re <= other.re {
            self
        } else {
            other
        }
    }

    /// Maximum by real part.
    #[inline]
    pub fn max(self, other: Value) -> Value {
        if self.re >= other.re {
            self
        } else {
            other
        }
    }

    /// Magnitude (L2 norm).
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Approximate equality with absolute tolerance on both parts.
    pub fn approx_eq(self, other: Value, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl From<f64> for Value {
    fn from(re: f64) -> Value {
        Value::real(re)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::real(v as f64)
    }
}

impl Add for Value {
    type Output = Value;
    #[inline]
    fn add(self, rhs: Value) -> Value {
        Value {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Value {
    type Output = Value;
    #[inline]
    fn sub(self, rhs: Value) -> Value {
        Value {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Value {
    type Output = Value;
    #[inline]
    fn mul(self, rhs: Value) -> Value {
        Value {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Neg for Value {
    type Output = Value;
    #[inline]
    fn neg(self) -> Value {
        Value {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im == 0.0 {
            write!(f, "{}", self.re)
        } else {
            write!(
                f,
                "{}{}{}i",
                self.re,
                if self.im < 0.0 { "" } else { "+" },
                self.im
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_arithmetic() {
        let a = Value::real(3.0);
        let b = Value::real(4.0);
        assert_eq!((a + b).re, 7.0);
        assert_eq!((a - b).re, -1.0);
        assert_eq!((a * b).re, 12.0);
        assert_eq!((a * b).im, 0.0);
    }

    #[test]
    fn complex_multiplication() {
        // (1+2i)(3+4i) = 3+4i+6i+8i² = -5+10i
        let a = Value::complex(1.0, 2.0);
        let b = Value::complex(3.0, 4.0);
        let c = a * b;
        assert_eq!(c, Value::complex(-5.0, 10.0));
    }

    #[test]
    fn cis_unit_magnitude() {
        for k in 0..8 {
            let v = Value::cis(std::f64::consts::TAU * k as f64 / 8.0);
            assert!((v.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn min_max_by_real_part() {
        let a = Value::real(-2.0);
        let b = Value::real(5.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn min_is_total_on_ties() {
        let a = Value::complex(1.0, 9.0);
        let b = Value::complex(1.0, -9.0);
        // Ties keep the left argument: min and max agree on the real part.
        assert_eq!(a.min(b).re, 1.0);
        assert_eq!(a.max(b).re, 1.0);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Value::complex(1.0, 1.0);
        let b = Value::complex(1.0 + 1e-12, 1.0 - 1e-12);
        assert!(a.approx_eq(b, 1e-9));
        assert!(!a.approx_eq(Value::complex(1.1, 1.0), 1e-9));
    }

    #[test]
    fn neg_and_display() {
        let v = -Value::complex(1.0, -2.0);
        assert_eq!(v, Value::complex(-1.0, 2.0));
        assert_eq!(format!("{}", Value::real(3.0)), "3");
        assert_eq!(format!("{}", Value::complex(1.0, 2.0)), "1+2i");
        assert_eq!(format!("{}", Value::complex(1.0, -2.0)), "1-2i");
    }
}
