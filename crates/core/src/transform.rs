//! Mapping transforms: recompute instead of communicate.
//!
//! "A mapping may compute the same element at multiple points in time
//! and/or space — rather than storing it or communicating it between
//! those points." (§3)
//!
//! [`recompute_at_consumers`] rewrites a mapped graph so that selected
//! nodes are *duplicated onto each distinct remote consumer PE*: the
//! consumers there read a local copy, and the producer's messages to
//! those PEs disappear. The copy executes the same expression, reading
//! the same dependencies and inputs — so the trade is explicit:
//!
//! * **save**: one NoC message per (node, remote PE);
//! * **pay**: one extra evaluation of the node's expression per remote
//!   PE, plus whatever movement the *node's own operands* now need to
//!   reach the replica.
//!
//! Recompute wins when the expression is cheap and its operands are
//! already available everywhere (input reads under `AtUse`/local
//! placement); it loses when the expression is expensive or its
//! operands would themselves have to travel. The ablation experiment
//! (`fm-bench`, E13) sweeps exactly that crossover.

use std::collections::HashMap;

use crate::dataflow::{DataflowGraph, NodeId};
use crate::mapping::ResolvedMapping;

/// Duplicate each node in `targets` onto every distinct remote consumer
/// PE, rewiring those consumers to their local replica. Replicas are
/// scheduled at the original node's cycle on the consumer's PE.
///
/// The result's legality is the caller's to re-check (replicas import
/// the original's dependencies, which may now cross different
/// distances; targets whose dependencies are input-only are always
/// safe). Targets must not include output nodes' sole instance
/// semantics — outputs stay on the original.
///
/// Returns the transformed graph and mapping. Node ids change; the
/// returned map gives `old id → new id` for the original nodes.
pub fn recompute_at_consumers(
    graph: &DataflowGraph,
    rm: &ResolvedMapping,
    targets: &[NodeId],
) -> (DataflowGraph, ResolvedMapping, Vec<NodeId>) {
    let is_target: std::collections::HashSet<NodeId> = targets.iter().copied().collect();
    let consumers = graph.consumers();

    let mut out = DataflowGraph::new(graph.name.clone(), graph.width_bits);
    for spec in &graph.inputs {
        out.add_input(spec.name.clone(), spec.dims.clone());
    }

    let mut place: Vec<(i64, i64)> = Vec::new();
    let mut time: Vec<i64> = Vec::new();
    // old id → new id of the original copy.
    let mut remap: Vec<NodeId> = vec![0; graph.len()];
    // (old target id, consumer PE) → replica new id.
    let mut replicas: HashMap<(NodeId, (i64, i64)), NodeId> = HashMap::new();

    for (old_id, node) in graph.nodes.iter().enumerate() {
        let old_id = old_id as NodeId;
        let my_pe = rm.place[old_id as usize];
        // Rewire deps: prefer a replica on *my* PE when one exists.
        let deps: Vec<NodeId> = node
            .deps
            .iter()
            .map(|&d| {
                replicas
                    .get(&(d, my_pe))
                    .copied()
                    .unwrap_or(remap[d as usize])
            })
            .collect();
        let new_id = out.add_node(node.expr.clone(), deps.clone(), node.index.clone());
        if node.output {
            out.mark_output(new_id);
        }
        remap[old_id as usize] = new_id;
        place.push(my_pe);
        time.push(rm.time[old_id as usize]);

        if is_target.contains(&old_id) {
            // One replica per distinct remote consumer PE.
            let mut pes: Vec<(i64, i64)> = consumers[old_id as usize]
                .iter()
                .map(|&c| rm.place[c as usize])
                .filter(|&p| p != my_pe)
                .collect();
            pes.sort_unstable();
            pes.dedup();
            for pe in pes {
                let rep_id = out.add_node(node.expr.clone(), deps.clone(), node.index.clone());
                replicas.insert((old_id, pe), rep_id);
                place.push(pe);
                time.push(rm.time[old_id as usize]);
            }
        }
    }

    (out, ResolvedMapping { place, time }, remap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Evaluator;
    use crate::dataflow::CExpr;
    use crate::legality::check;
    use crate::machine::MachineConfig;
    use crate::mapping::InputPlacement;
    use crate::value::Value;

    /// A broadcast: one node (reading input 0) consumed by `k` nodes on
    /// distinct PEs.
    fn broadcast(k: usize, expr_ops: usize) -> (DataflowGraph, ResolvedMapping) {
        let mut g = DataflowGraph::new("broadcast", 32);
        let x = g.add_input("X", vec![1]);
        // Source expression with a tunable number of ops.
        let mut e = CExpr::input(x, 0);
        for _ in 0..expr_ops {
            e = e.add(CExpr::konst(Value::real(1.0)));
        }
        let src = g.add_node(e, vec![], vec![0]);
        let mut place = vec![(0i64, 0i64)];
        let mut time = vec![0i64];
        for i in 0..k {
            let id = g.add_node(
                CExpr::dep(0).mul(CExpr::konst(Value::real(2.0))),
                vec![src],
                vec![i as i64 + 1],
            );
            g.mark_output(id);
            place.push((i as i64 + 1, 0));
            time.push(1 + i as i64 + 1); // cover hops
        }
        (g, ResolvedMapping { place, time })
    }

    #[test]
    fn replication_eliminates_messages() {
        let (g, rm) = broadcast(4, 1);
        let m = MachineConfig::linear(8);
        assert!(check(&g, &rm, &m).is_legal());
        let before = Evaluator::new(&g, &m)
            .with_all_inputs(InputPlacement::AtUse)
            .evaluate(&rm);
        assert_eq!(before.ledger.onchip_messages, 4);

        let (g2, rm2, _) = recompute_at_consumers(&g, &rm, &[0]);
        assert!(check(&g2, &rm2, &m).is_legal());
        let after = Evaluator::new(&g2, &m)
            .with_all_inputs(InputPlacement::AtUse)
            .evaluate(&rm2);
        assert_eq!(after.ledger.onchip_messages, 0);
        assert_eq!(g2.len(), g.len() + 4); // one replica per consumer PE
    }

    #[test]
    fn replication_preserves_values() {
        let (g, rm) = broadcast(3, 2);
        let (g2, rm2, remap) = recompute_at_consumers(&g, &rm, &[0]);
        let _ = rm2;
        let x = vec![vec![Value::real(5.0)]];
        let v1 = g.eval(&x);
        let v2 = g2.eval(&x);
        // Outputs (consumers) must be unchanged.
        for (old, node) in g.nodes.iter().enumerate() {
            if node.output {
                let new = remap[old];
                assert!(v1[old].approx_eq(v2[new as usize], 1e-12));
            }
        }
    }

    #[test]
    fn recompute_wins_for_cheap_exprs_loses_for_expensive() {
        let m = MachineConfig::linear(8);
        let energy = |expr_ops: usize, replicate: bool| -> f64 {
            let (g, rm) = broadcast(6, expr_ops);
            if replicate {
                let (g2, rm2, _) = recompute_at_consumers(&g, &rm, &[0]);
                Evaluator::new(&g2, &m)
                    .with_all_inputs(InputPlacement::AtUse)
                    .evaluate(&rm2)
                    .energy()
                    .raw()
            } else {
                Evaluator::new(&g, &m)
                    .with_all_inputs(InputPlacement::AtUse)
                    .evaluate(&rm)
                    .energy()
                    .raw()
            }
        };
        // Cheap source: recompute wins (messages dominate).
        assert!(energy(1, true) < energy(1, false));
        // Very expensive source: communicating one result beats
        // recomputing a 100,000-op expression six times... at 5 nm wire
        // costs even that takes a while to flip — use a huge expression.
        let cheap_gain = energy(1, false) - energy(1, true);
        let costly_gain = energy(2000, false) - energy(2000, true);
        assert!(costly_gain < cheap_gain, "{costly_gain} !< {cheap_gain}");
    }

    #[test]
    fn untargeted_nodes_untouched() {
        let (g, rm) = broadcast(2, 1);
        let (g2, rm2, remap) = recompute_at_consumers(&g, &rm, &[]);
        assert_eq!(g2.len(), g.len());
        assert_eq!(rm2.place, rm.place);
        assert_eq!(remap, (0..g.len() as NodeId).collect::<Vec<_>>());
    }

    #[test]
    fn chained_consumers_use_local_replica() {
        // src → a (PE 1) → b (PE 1): after replicating src, `a` reads
        // the PE-1 replica; `b` reads `a` locally — zero messages.
        let mut g = DataflowGraph::new("chain", 32);
        let x = g.add_input("X", vec![1]);
        let src = g.add_node(CExpr::input(x, 0), vec![], vec![0]);
        let a = g.add_node(CExpr::dep(0), vec![src], vec![1]);
        let b = g.add_node(CExpr::dep(0), vec![a], vec![2]);
        g.mark_output(b);
        let rm = ResolvedMapping {
            place: vec![(0, 0), (1, 0), (1, 0)],
            time: vec![0, 1, 2],
        };
        let m = MachineConfig::linear(4);
        let (g2, rm2, _) = recompute_at_consumers(&g, &rm, &[src]);
        assert!(check(&g2, &rm2, &m).is_legal());
        let rep = Evaluator::new(&g2, &m)
            .with_all_inputs(InputPlacement::AtUse)
            .evaluate(&rm2);
        assert_eq!(rep.ledger.onchip_messages, 0);
    }
}
