#![warn(missing_docs)]

//! # fm-core — the Function & Mapping (F&M) model
//!
//! This crate implements the model Bill Dally proposes in §3 of the
//! SPAA'21 panel paper: separate the **function** of a computation (a
//! purely data-dependence-constrained specification that "by its nature
//! exposes all available parallelism") from its **mapping** (an
//! assignment of every operation to a *time* — a discrete cycle — and a
//! *location* — a point on a processor grid — together with a path for
//! every value from its definition to each use).
//!
//! The pieces, in dependency order:
//!
//! * [`value`] — the scalar value domain (complex doubles; real kernels
//!   use the real part).
//! * [`expr`] — element expressions: the right-hand side of a recurrence
//!   such as the paper's `H(i,j) = min(H(i-1,j-1)+f(R[i],Q[j]), …, 0)`.
//! * [`recurrence`] — affine tensor recurrences over rectangular
//!   iteration domains (`Forall i, j in (0:N-1, 0:N-1)`), with boundary
//!   policies.
//! * [`dataflow`] — the elaborated element-level DAG: one node per
//!   tensor point, edges carrying value widths. Irregular computations
//!   (FFT butterflies, BFS) construct these directly.
//! * [`affine`] — integer affine index expressions with floor-division
//!   and modulo, sufficient to express the paper's mapping
//!   `place H(i,j) at i % P, time floor(i/P)·N + j`.
//! * [`mapping`] — space-time mappings: affine families for recurrences
//!   and explicit tables for irregular DAGs; input placements (local
//!   pre-distribution vs. DRAM).
//! * [`machine`] — the abstract machine configuration a mapping targets:
//!   technology, grid extent, clock, per-PE issue width, tile capacity,
//!   link width.
//! * [`mutate`] — live structural edits of a (function, machine) pair
//!   (add/remove node, retarget edge, resize tile), with receipts that
//!   drive incremental cost repair in [`delta`].
//! * [`legality`] — the static checker: causality with wire delay,
//!   issue-width bounds, tile-storage bounds. ("A legal mapping is one
//!   that preserves causality …")
//! * [`cost`] — the analytic cost evaluator: cycles, picoseconds,
//!   femtojoules (as an [`fm_costmodel::EnergyLedger`]), footprint,
//!   utilization. This is the model's core promise: *predictable* cost.
//! * [`flat`] — the flat evaluation engine: interned PE ids, SoA cost
//!   folds, and a reusable scratch arena for zero-allocation candidate
//!   batching (bit-identical to [`cost`], just laid out for the
//!   machine).
//! * [`pramcost`] — the unit-cost (PRAM-style) evaluator of the same
//!   DAG, used to demonstrate ranking inversions (experiment E5).
//! * [`search`] — systematic mapping search: enumerate an affine
//!   mapping family, evaluate, optimize a figure of merit.
//! * [`compose`] — modular composition with layout alignment and
//!   automatic remap (shuffle) insertion; the map/reduce/gather/scatter/
//!   shuffle idioms.
//! * [`lower`] — mechanical lowering of (function, mapping) to an
//!   architecture description, serializable and renderable as an RTL
//!   sketch.
//! * [`transform`] — mapping transforms: recompute-at-consumers ("a
//!   mapping may compute the same element at multiple points … rather
//!   than communicating it").
//! * [`forall`] — a fluent builder that reads like the paper's
//!   `Forall` fragment.
//! * [`parse`] — a parser for the paper's *surface syntax*: the
//!   `Forall … Map … at … time …` fragment runs as written.
//! * [`viz`] — ASCII space-time diagrams of small mapped graphs.

pub mod affine;
pub mod compose;
pub mod cost;
pub mod dataflow;
pub mod delta;
pub mod expr;
pub mod flat;
pub mod forall;
pub mod legality;
pub mod lower;
pub mod machine;
pub mod mapping;
pub mod mutate;
pub mod parse;
pub mod pramcost;
pub mod recurrence;
pub mod search;
pub mod transform;
pub mod value;
pub mod viz;

pub use affine::IdxExpr;
pub use cost::{CostReport, Evaluator};
pub use dataflow::{DataflowGraph, NodeId};
pub use expr::{ElemExpr, InputRef};
pub use flat::{with_thread_scratch, BatchEvaluator, EvalContext, EvalScratch, RawEval};
pub use legality::{LegalityError, LegalityReport};
pub use machine::MachineConfig;
pub use mapping::{InputPlacement, Mapping, Place, ResolvedMapping};
pub use mutate::{apply_edit, AppliedEdit, GraphEdit};
pub use recurrence::{Boundary, Domain, Recurrence};
pub use search::{FigureOfMerit, MappingFamily, SearchOutcome};
pub use value::Value;
