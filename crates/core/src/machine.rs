//! The abstract machine a mapping targets.
//!
//! The paper's programmable target: "a programmable processor at each
//! grid point … surrounded by many 'tiles' of memory. … The amount of
//! memory per processor is also a parameter." A [`MachineConfig`] fixes
//! the technology, the grid extent actually used, the per-PE issue
//! width, the per-PE tile capacity, and the NoC link width.
//!
//! ## Timing discipline
//!
//! Time is discretized into cycles ("the time axis can be discretized
//! into cycles"). One cycle is long enough for a PE to evaluate one
//! element *and* forward the result one hop — the classic systolic
//! regime — so the clock period is `op latency + one-hop wire delay`.
//! A value produced at cycle `t` is usable by a consumer `h` hops away
//! at cycle `t + max(1, h)`: the first hop overlaps the producing cycle,
//! and each further hop costs one more cycle.

use serde::{Deserialize, Serialize};

use fm_costmodel::{ChipGeometry, Femtojoules, OpKind, Picoseconds, Technology};

/// Machine configuration: technology + grid + microarchitectural knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Technology constants. Its `chip` geometry is rebuilt by
    /// [`MachineConfig::new`] so pitches reflect this machine's grid.
    pub tech: Technology,
    /// PE columns in use.
    pub cols: u32,
    /// PE rows in use.
    pub rows: u32,
    /// Elements a PE may evaluate per cycle.
    pub issue_width: u32,
    /// Per-PE memory tile capacity in bits.
    pub tile_bits: u64,
    /// NoC link width in bits (one flit per link per cycle).
    pub link_width_bits: u32,
}

impl MachineConfig {
    /// A machine using a `cols × rows` grid of the given technology's
    /// die. Defaults: single-issue PEs, 128 Kbit tiles, 64-bit links.
    pub fn new(tech: Technology, cols: u32, rows: u32) -> Self {
        let mut tech = tech;
        tech.chip = ChipGeometry::with_grid(tech.chip.area_mm2, cols, rows);
        MachineConfig {
            tech,
            cols,
            rows,
            issue_width: 1,
            tile_bits: 128 * 1024,
            link_width_bits: 64,
        }
    }

    /// The paper's 5 nm technology on a `cols × rows` grid.
    pub fn n5(cols: u32, rows: u32) -> Self {
        Self::new(Technology::n5(), cols, rows)
    }

    /// A linear array of `p` PEs (the paper's edit-distance example
    /// maps onto "an array of P processors").
    pub fn linear(p: u32) -> Self {
        Self::n5(p, 1)
    }

    /// Total PEs.
    pub fn pe_count(&self) -> u32 {
        self.cols * self.rows
    }

    /// Whether a (possibly unresolved) coordinate pair is on the grid.
    pub fn contains(&self, x: i64, y: i64) -> bool {
        x >= 0 && y >= 0 && (x as u32) < self.cols && (y as u32) < self.rows
    }

    /// One-hop wire delay: the larger pitch among dimensions that can
    /// actually be traversed (a 1-row linear array never hops
    /// vertically, so its row pitch — the full die — must not set the
    /// clock).
    pub fn hop_delay(&self) -> Picoseconds {
        let mut pitch: f64 = 0.0;
        if self.cols > 1 {
            pitch = pitch.max(self.tech.chip.col_pitch().raw());
        }
        if self.rows > 1 {
            pitch = pitch.max(self.tech.chip.row_pitch().raw());
        }
        if pitch == 0.0 {
            pitch = self.tech.chip.col_pitch().raw();
        }
        self.tech.wire_delay(fm_costmodel::Millimeters::new(pitch))
    }

    /// The clock period: one element evaluation plus one hop.
    pub fn clock_period(&self) -> Picoseconds {
        self.tech.op_latency(OpKind::add32()) + self.hop_delay()
    }

    /// Hops between two PEs under X-Y routing.
    pub fn hops(&self, a: (u32, u32), b: (u32, u32)) -> u32 {
        self.tech.chip.hops(a, b)
    }

    /// The minimum cycle gap between producing at `a` and consuming at
    /// `b`: `max(1, hops)` (the first hop overlaps the producing cycle).
    pub fn required_gap(&self, a: (u32, u32), b: (u32, u32)) -> i64 {
        i64::from(self.hops(a, b).max(1))
    }

    /// Energy to move `bits` from PE `a` to PE `b` on the NoC
    /// (Manhattan distance × wire cost); zero distance means a local
    /// tile access, charged separately.
    pub fn route_energy(&self, bits: u64, a: (u32, u32), b: (u32, u32)) -> Femtojoules {
        self.tech.wire_energy(bits, self.tech.chip.manhattan(a, b))
    }

    /// Manhattan distance in mm between two PEs.
    pub fn distance_mm(&self, a: (u32, u32), b: (u32, u32)) -> f64 {
        self.tech.chip.manhattan(a, b).raw()
    }

    /// Energy of a local tile (SRAM) access of `bits`.
    pub fn tile_access_energy(&self, bits: u64) -> Femtojoules {
        self.tech.op_energy(OpKind::sram(bits as u32))
    }

    /// The machine's roofline ceilings, in per-picosecond rates:
    ///
    /// * **compute** — every PE can evaluate `issue_width` elements per
    ///   cycle;
    /// * **on-chip bandwidth** — every directed NoC link (mesh: two per
    ///   adjacent PE pair) carries one `link_width_bits` flit per cycle;
    /// * **off-chip bandwidth** — one memory port of link width per
    ///   cycle.
    pub fn ceilings(&self) -> fm_costmodel::MachineCeilings {
        let clk = self.clock_period().raw();
        let horizontal = (self.cols.saturating_sub(1)) as u64 * self.rows as u64;
        let vertical = self.cols as u64 * (self.rows.saturating_sub(1)) as u64;
        let directed_links = 2 * (horizontal + vertical);
        fm_costmodel::MachineCeilings {
            compute_ops_per_ps: (self.pe_count() as f64 * self.issue_width as f64) / clk,
            onchip_bits_per_ps: directed_links as f64 * self.link_width_bits as f64 / clk,
            offchip_bits_per_ps: self.link_width_bits as f64 / clk,
        }
    }

    /// Total wire length in mm of a **multicast tree** from `from` to
    /// every PE in `dests`: the union of the X-Y unicast paths (a
    /// cheap, deterministic Steiner approximation — shared prefixes are
    /// paid once). Returns `(total_mm, links)`.
    pub fn multicast_route(&self, from: (u32, u32), dests: &[(u32, u32)]) -> (f64, usize) {
        let mut links: std::collections::HashSet<((u32, u32), (u32, u32))> =
            std::collections::HashSet::new();
        for &d in dests {
            // Walk the X-Y path, collecting directed links.
            let mut cur = from;
            while cur.0 != d.0 {
                let next = if cur.0 < d.0 {
                    (cur.0 + 1, cur.1)
                } else {
                    (cur.0 - 1, cur.1)
                };
                links.insert((cur, next));
                cur = next;
            }
            while cur.1 != d.1 {
                let next = if cur.1 < d.1 {
                    (cur.0, cur.1 + 1)
                } else {
                    (cur.0, cur.1 - 1)
                };
                links.insert((cur, next));
                cur = next;
            }
        }
        // Sum in sorted link order: HashSet iteration order varies per
        // call, and float addition is order-dependent, so an unsorted
        // sum would make repeated evaluations of the same mapping
        // disagree in the last bits.
        let mut links: Vec<((u32, u32), (u32, u32))> = links.into_iter().collect();
        links.sort_unstable();
        let total_mm: f64 = links
            .iter()
            .map(|&(a, b)| self.tech.chip.manhattan(a, b).raw())
            .sum();
        (total_mm, links.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_rebuilt_to_match() {
        let m = MachineConfig::n5(8, 4);
        assert_eq!(m.tech.chip.cols, 8);
        assert_eq!(m.tech.chip.rows, 4);
        assert_eq!(m.pe_count(), 32);
    }

    #[test]
    fn linear_machine_is_one_row() {
        let m = MachineConfig::linear(16);
        assert_eq!(m.cols, 16);
        assert_eq!(m.rows, 1);
    }

    #[test]
    fn contains_bounds() {
        let m = MachineConfig::n5(4, 4);
        assert!(m.contains(0, 0));
        assert!(m.contains(3, 3));
        assert!(!m.contains(4, 0));
        assert!(!m.contains(-1, 2));
    }

    #[test]
    fn clock_covers_compute_plus_hop() {
        let m = MachineConfig::n5(32, 32);
        let clk = m.clock_period().raw();
        assert!(clk > 200.0);
        assert!((clk - (200.0 + m.hop_delay().raw())).abs() < 1e-9);
    }

    #[test]
    fn required_gap_is_max_1_hops() {
        let m = MachineConfig::n5(8, 8);
        assert_eq!(m.required_gap((0, 0), (0, 0)), 1);
        assert_eq!(m.required_gap((0, 0), (1, 0)), 1);
        assert_eq!(m.required_gap((0, 0), (3, 2)), 5);
    }

    #[test]
    fn route_energy_scales_with_distance_and_bits() {
        let m = MachineConfig::n5(32, 32);
        let e1 = m.route_energy(32, (0, 0), (1, 0)).raw();
        let e2 = m.route_energy(32, (0, 0), (2, 0)).raw();
        let e3 = m.route_energy(64, (0, 0), (1, 0)).raw();
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
        assert!((e3 / e1 - 2.0).abs() < 1e-9);
        assert_eq!(m.route_energy(32, (5, 5), (5, 5)).raw(), 0.0);
    }

    #[test]
    fn multicast_shares_common_prefix() {
        let m = MachineConfig::linear(8);
        // Unicast to PEs 4 and 7 from 0: 4 + 7 = 11 hops.
        // Multicast: union of paths = 7 hops (0→7 covers 0→4).
        let (mm, links) = m.multicast_route((0, 0), &[(4, 0), (7, 0)]);
        assert_eq!(links, 7);
        let pitch = m.distance_mm((0, 0), (1, 0));
        assert!((mm - 7.0 * pitch).abs() < 1e-9);
    }

    #[test]
    fn multicast_to_nobody_is_free() {
        let m = MachineConfig::n5(4, 4);
        let (mm, links) = m.multicast_route((2, 2), &[]);
        assert_eq!(mm, 0.0);
        assert_eq!(links, 0);
    }

    #[test]
    fn multicast_branches_pay_both_arms() {
        let m = MachineConfig::n5(8, 8);
        // Dests on opposite sides: no shared prefix, sum of paths.
        let (mm, _) = m.multicast_route((4, 4), &[(0, 4), (7, 4)]);
        let u = m.distance_mm((4, 4), (0, 4)) + m.distance_mm((4, 4), (7, 4));
        assert!((mm - u).abs() < 1e-9);
    }

    #[test]
    fn coarser_grid_has_larger_hops_in_mm() {
        let coarse = MachineConfig::n5(8, 8);
        let fine = MachineConfig::n5(32, 32);
        assert!(coarse.distance_mm((0, 0), (1, 0)) > fine.distance_mm((0, 0), (1, 0)));
    }
}
