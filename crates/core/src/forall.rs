//! A fluent builder that reads like the paper's `Forall` fragment.
//!
//! ```
//! use fm_core::forall::Forall;
//! use fm_core::expr::ElemExpr;
//! use fm_core::affine::IdxExpr;
//! use fm_core::recurrence::{Boundary, OutputSpec};
//!
//! // Forall i, j in (0:N-1, 0:N-1)
//! //   H(i,j) = min(H(i-1,j-1) + f(R[i],Q[j]), H(i-1,j)+1, H(i,j-1)+1, 0)
//! let n = 8;
//! let rec = Forall::d2("edit", n, n)
//!     .input("R", vec![n])
//!     .input("Q", vec![n])
//!     .boundary(Boundary::Zero)
//!     .output(OutputSpec::LastElement)
//!     .expr(ElemExpr::min_of(vec![
//!         Forall::self_ref([-1, -1]).add(Forall::match_inputs(0, IdxExpr::i(), 1, IdxExpr::j(), 0.0, 1.0)),
//!         Forall::self_ref([-1, 0]).add(ElemExpr::lit(1.0)),
//!         Forall::self_ref([0, -1]).add(ElemExpr::lit(1.0)),
//!         ElemExpr::lit(0.0),
//!     ]))
//!     .build()
//!     .unwrap();
//! assert_eq!(rec.domain.len(), 64);
//! ```
//!
//! The builder only assembles a [`Recurrence`]; `build` validates it
//! (well-foundedness, declared inputs) so errors surface at
//! construction, not at elaboration.

use crate::affine::IdxExpr;
use crate::dataflow::InputSpec;
use crate::expr::{BinOp, ElemExpr, InputRef};
use crate::recurrence::{Boundary, Domain, OutputSpec, Recurrence, RecurrenceError};

/// Builder for [`Recurrence`].
#[derive(Debug, Clone)]
pub struct Forall {
    name: String,
    domain: Domain,
    inputs: Vec<InputSpec>,
    width_bits: u32,
    boundary: Boundary,
    output: OutputSpec,
    expr: Option<ElemExpr>,
}

impl Forall {
    /// `Forall i in (0:n-1)`.
    pub fn d1(name: impl Into<String>, n: usize) -> Forall {
        Self::with_domain(name, Domain::d1(n))
    }

    /// `Forall i, j in (0:n-1, 0:m-1)`.
    pub fn d2(name: impl Into<String>, n: usize, m: usize) -> Forall {
        Self::with_domain(name, Domain::d2(n, m))
    }

    /// `Forall i, j, k in (0:n-1, 0:m-1, 0:k-1)`.
    pub fn d3(name: impl Into<String>, n: usize, m: usize, k: usize) -> Forall {
        Self::with_domain(name, Domain::d3(n, m, k))
    }

    /// An arbitrary-rank domain.
    pub fn with_domain(name: impl Into<String>, domain: Domain) -> Forall {
        Forall {
            name: name.into(),
            domain,
            inputs: Vec::new(),
            width_bits: 32,
            boundary: Boundary::Zero,
            output: OutputSpec::All,
            expr: None,
        }
    }

    /// Declare an input tensor (order of declaration = input id).
    #[must_use]
    pub fn input(mut self, name: impl Into<String>, dims: Vec<usize>) -> Forall {
        self.inputs.push(InputSpec {
            name: name.into(),
            dims,
        });
        self
    }

    /// Datapath width in bits (default 32).
    #[must_use]
    pub fn width(mut self, bits: u32) -> Forall {
        self.width_bits = bits;
        self
    }

    /// Boundary policy (default [`Boundary::Zero`]).
    #[must_use]
    pub fn boundary(mut self, b: Boundary) -> Forall {
        self.boundary = b;
        self
    }

    /// Output selection (default [`OutputSpec::All`]).
    #[must_use]
    pub fn output(mut self, o: OutputSpec) -> Forall {
        self.output = o;
        self
    }

    /// The element expression.
    #[must_use]
    pub fn expr(mut self, e: ElemExpr) -> Forall {
        self.expr = Some(e);
        self
    }

    /// Assemble and validate.
    pub fn build(self) -> Result<Recurrence, RecurrenceError> {
        let rec = Recurrence {
            name: self.name,
            domain: self.domain,
            expr: self.expr.expect("Forall::expr must be called before build"),
            inputs: self.inputs,
            width_bits: self.width_bits,
            boundary: self.boundary,
            output: self.output,
        };
        rec.validate()?;
        Ok(rec)
    }

    // --- expression shorthands -----------------------------------------

    /// `H(i+off₀, j+off₁, …)` — a self-reference at constant offsets.
    pub fn self_ref<const R: usize>(offsets: [i64; R]) -> ElemExpr {
        ElemExpr::SelfRef(offsets.to_vec())
    }

    /// `inᵢ[index…]` — an input read at affine indices.
    pub fn read(input: usize, index: Vec<IdxExpr>) -> ElemExpr {
        ElemExpr::Input(InputRef { input, index })
    }

    /// `f(a[ia], b[ib])` — the paper's match/mismatch scoring function
    /// over two 1-D inputs.
    pub fn match_inputs(
        a: usize,
        ia: IdxExpr,
        b: usize,
        ib: IdxExpr,
        eq: f64,
        ne: f64,
    ) -> ElemExpr {
        ElemExpr::Bin(
            BinOp::Match { eq, ne },
            Box::new(Self::read(a, vec![ia])),
            Box::new(Self::read(b, vec![ib])),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn builder_matches_manual_construction() {
        let n = 6;
        let built = Forall::d1("scan", n)
            .input("X", vec![n])
            .expr(Forall::self_ref([-1]).add(Forall::read(0, vec![IdxExpr::i()])))
            .build()
            .unwrap();
        let g = built.elaborate().unwrap();
        let x: Vec<Value> = (1..=n as i64).map(|v| Value::real(v as f64)).collect();
        let vals = g.eval(&[x]);
        assert_eq!(vals.last().unwrap().re, 21.0);
    }

    #[test]
    fn build_rejects_ill_founded_expr() {
        let r = Forall::d1("bad", 4)
            .expr(Forall::self_ref([1])) // forward reference
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn build_rejects_undeclared_input() {
        let r = Forall::d1("bad", 4)
            .expr(Forall::read(2, vec![IdxExpr::i()]))
            .build();
        assert!(r.is_err());
    }

    #[test]
    #[should_panic(expected = "expr must be called")]
    fn build_without_expr_panics() {
        let _ = Forall::d1("empty", 4).build();
    }

    #[test]
    fn defaults_applied() {
        let r = Forall::d2("st", 2, 3)
            .expr(Forall::self_ref([-1, 0]).add(ElemExpr::lit(1.0)))
            .build()
            .unwrap();
        assert_eq!(r.width_bits, 32);
        assert_eq!(r.output, OutputSpec::All);
        assert_eq!(r.domain.rank(), 2);
    }
}
