//! Unit-cost (PRAM-style) evaluation of a dataflow graph.
//!
//! "The RAM and PRAM models that are used to analyze and compare
//! algorithms hide the reality of spatial distribution and the huge
//! difference between computing and communication costs. In these
//! models, everything is unit cost."
//!
//! This module deliberately implements that blindness: work = number of
//! elements, depth = longest dependency chain, time on `p` processors =
//! Brent's bound, energy = work × one unit. Experiment E5 evaluates the
//! same pair of functions here and in [`crate::cost`] to exhibit the
//! ranking inversion the paper describes ("when comparing two FFT
//! algorithms that are both O(N log N), the one that is 50,000× more
//! efficient is preferred").

use serde::Serialize;

use crate::dataflow::DataflowGraph;

/// Unit-cost measures of a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct PramCost {
    /// Total element computations (the PRAM's "work").
    pub work: u64,
    /// Longest dependency chain (the PRAM's "depth"/"span").
    pub depth: u64,
}

impl PramCost {
    /// Measure a graph.
    pub fn of(graph: &DataflowGraph) -> PramCost {
        PramCost {
            work: graph.len() as u64,
            depth: graph.depth(),
        }
    }

    /// Brent / greedy-scheduler bound: `⌈work/p⌉ + depth` unit steps on
    /// `p` processors.
    pub fn time_on(&self, p: u64) -> u64 {
        assert!(p > 0, "processor count must be positive");
        self.work.div_ceil(p) + self.depth
    }

    /// Unit energy: one unit per element — the model the paper faults
    /// for charging an off-chip access the same as an add.
    pub fn unit_energy(&self) -> u64 {
        self.work
    }

    /// Parallelism: work / depth.
    pub fn parallelism(&self) -> f64 {
        self.work as f64 / self.depth as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::CExpr;
    use crate::value::Value;

    fn chain(n: usize) -> DataflowGraph {
        let mut g = DataflowGraph::new("chain", 32);
        let mut prev: Option<u32> = None;
        for i in 0..n {
            let id = match prev {
                None => g.add_node(CExpr::konst(Value::ZERO), vec![], vec![i as i64]),
                Some(p) => g.add_node(CExpr::dep(0), vec![p], vec![i as i64]),
            };
            prev = Some(id);
        }
        g
    }

    fn wide(n: usize) -> DataflowGraph {
        let mut g = DataflowGraph::new("wide", 32);
        for i in 0..n {
            g.add_node(CExpr::konst(Value::ZERO), vec![], vec![i as i64]);
        }
        g
    }

    #[test]
    fn chain_has_no_parallelism() {
        let c = PramCost::of(&chain(16));
        assert_eq!(c.work, 16);
        assert_eq!(c.depth, 16);
        assert!((c.parallelism() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wide_graph_is_fully_parallel() {
        let c = PramCost::of(&wide(16));
        assert_eq!(c.depth, 1);
        assert_eq!(c.time_on(16), 2); // 1 step of work + depth 1
        assert_eq!(c.time_on(1), 17);
    }

    #[test]
    fn brent_bound_monotone_in_p() {
        let c = PramCost::of(&chain(100));
        let mut last = u64::MAX;
        for p in [1, 2, 4, 8, 16] {
            let t = c.time_on(p);
            assert!(t <= last);
            last = t;
        }
    }

    #[test]
    fn unit_energy_is_work() {
        assert_eq!(PramCost::of(&wide(7)).unit_energy(), 7);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_processors_rejected() {
        PramCost::of(&wide(4)).time_on(0);
    }
}
