//! Integer index expressions for mappings and input references.
//!
//! The paper writes its example mapping as
//!
//! ```text
//! Map H(i,j) at i % P   time floor(i/P)*N + j
//! ```
//!
//! so the expression language needs: index variables, integer constants,
//! addition/subtraction, multiplication *by constants* (affine), floor
//! division by positive constants, and modulo by positive constants.
//! [`IdxExpr`] is that language. Division and modulo use Euclidean
//! semantics (`(-1).div_euclid(4) == -1`, `(-1).rem_euclid(4) == 3`) so
//! that block/cyclic placements behave sensibly on boundary offsets.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Rem, Sub};

/// An integer index expression over domain index variables `i0, i1, …`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IdxExpr {
    /// An integer constant.
    Const(i64),
    /// The `k`-th domain index variable (0 = `i`, 1 = `j`, …).
    Var(usize),
    /// Sum of two expressions.
    Add(Box<IdxExpr>, Box<IdxExpr>),
    /// Difference of two expressions.
    Sub(Box<IdxExpr>, Box<IdxExpr>),
    /// Product by an integer constant (keeps the language affine-ish).
    MulC(Box<IdxExpr>, i64),
    /// Floor (Euclidean) division by a positive constant.
    DivC(Box<IdxExpr>, i64),
    /// Euclidean modulo by a positive constant.
    ModC(Box<IdxExpr>, i64),
}

#[allow(clippy::should_implement_trait)] // div is a floor-division builder, deliberately named
impl IdxExpr {
    /// The variable `i` (index 0).
    pub fn i() -> IdxExpr {
        IdxExpr::Var(0)
    }

    /// The variable `j` (index 1).
    pub fn j() -> IdxExpr {
        IdxExpr::Var(1)
    }

    /// The variable `k` (index 2).
    pub fn k() -> IdxExpr {
        IdxExpr::Var(2)
    }

    /// An integer constant.
    pub fn c(v: i64) -> IdxExpr {
        IdxExpr::Const(v)
    }

    /// Floor division by a positive constant.
    pub fn div(self, d: i64) -> IdxExpr {
        assert!(d > 0, "division modulus must be positive, got {d}");
        IdxExpr::DivC(Box::new(self), d)
    }

    /// Evaluate at a concrete index point.
    ///
    /// Panics if the expression references a variable beyond `idx.len()`
    /// (a construction bug, not a data condition).
    pub fn eval(&self, idx: &[i64]) -> i64 {
        match self {
            IdxExpr::Const(v) => *v,
            IdxExpr::Var(k) => idx[*k],
            IdxExpr::Add(a, b) => a.eval(idx) + b.eval(idx),
            IdxExpr::Sub(a, b) => a.eval(idx) - b.eval(idx),
            IdxExpr::MulC(a, c) => a.eval(idx) * c,
            IdxExpr::DivC(a, d) => a.eval(idx).div_euclid(*d),
            IdxExpr::ModC(a, m) => a.eval(idx).rem_euclid(*m),
        }
    }

    /// Highest variable index referenced, or `None` for constant
    /// expressions.
    pub fn max_var(&self) -> Option<usize> {
        match self {
            IdxExpr::Const(_) => None,
            IdxExpr::Var(k) => Some(*k),
            IdxExpr::Add(a, b) | IdxExpr::Sub(a, b) => a.max_var().max(b.max_var()),
            IdxExpr::MulC(a, _) | IdxExpr::DivC(a, _) | IdxExpr::ModC(a, _) => a.max_var(),
        }
    }
}

impl Add for IdxExpr {
    type Output = IdxExpr;
    fn add(self, rhs: IdxExpr) -> IdxExpr {
        IdxExpr::Add(Box::new(self), Box::new(rhs))
    }
}

impl Sub for IdxExpr {
    type Output = IdxExpr;
    fn sub(self, rhs: IdxExpr) -> IdxExpr {
        IdxExpr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl Mul<i64> for IdxExpr {
    type Output = IdxExpr;
    fn mul(self, rhs: i64) -> IdxExpr {
        IdxExpr::MulC(Box::new(self), rhs)
    }
}

impl Rem<i64> for IdxExpr {
    type Output = IdxExpr;
    fn rem(self, rhs: i64) -> IdxExpr {
        assert!(rhs > 0, "modulus must be positive, got {rhs}");
        IdxExpr::ModC(Box::new(self), rhs)
    }
}

impl fmt::Display for IdxExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdxExpr::Const(v) => write!(f, "{v}"),
            IdxExpr::Var(0) => write!(f, "i"),
            IdxExpr::Var(1) => write!(f, "j"),
            IdxExpr::Var(2) => write!(f, "k"),
            IdxExpr::Var(n) => write!(f, "i{n}"),
            IdxExpr::Add(a, b) => write!(f, "({a} + {b})"),
            IdxExpr::Sub(a, b) => write!(f, "({a} - {b})"),
            IdxExpr::MulC(a, c) => write!(f, "{a}*{c}"),
            IdxExpr::DivC(a, d) => write!(f, "floor({a}/{d})"),
            IdxExpr::ModC(a, m) => write!(f, "({a} % {m})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn papers_mapping_expressions() {
        // place = i % P, time = floor(i/P)*N + j, with P=4, N=16.
        let p = 4;
        let n = 16;
        let place = IdxExpr::i() % p;
        let time = IdxExpr::i().div(p) * n + IdxExpr::j();
        assert_eq!(place.eval(&[0, 0]), 0);
        assert_eq!(place.eval(&[5, 0]), 1);
        assert_eq!(place.eval(&[7, 3]), 3);
        assert_eq!(time.eval(&[0, 0]), 0);
        assert_eq!(time.eval(&[3, 5]), 5); // block 0
        assert_eq!(time.eval(&[4, 5]), 21); // block 1: 16 + 5
    }

    #[test]
    fn euclidean_semantics_for_negatives() {
        let e = IdxExpr::i() % 4;
        assert_eq!(e.eval(&[-1]), 3);
        let d = IdxExpr::i().div(4);
        assert_eq!(d.eval(&[-1]), -1);
        assert_eq!(d.eval(&[-4]), -1);
        assert_eq!(d.eval(&[-5]), -2);
    }

    #[test]
    fn div_mod_identity() {
        // a == floor(a/d)*d + a%d for Euclidean div/mod.
        for a in -20..20 {
            for d in [1_i64, 3, 7] {
                let q = IdxExpr::i().div(d).eval(&[a]);
                let r = (IdxExpr::i() % d).eval(&[a]);
                assert_eq!(q * d + r, a);
                assert!((0..d).contains(&r));
            }
        }
    }

    #[test]
    fn max_var_tracks_references() {
        assert_eq!(IdxExpr::c(3).max_var(), None);
        assert_eq!(IdxExpr::i().max_var(), Some(0));
        let e = IdxExpr::i().div(2) * 10 + IdxExpr::k();
        assert_eq!(e.max_var(), Some(2));
    }

    #[test]
    fn display_round_trips_structure() {
        let time = IdxExpr::i().div(4) * 16 + IdxExpr::j();
        assert_eq!(format!("{time}"), "(floor(i/4)*16 + j)");
        let place = IdxExpr::i() % 4;
        assert_eq!(format!("{place}"), "(i % 4)");
    }

    #[test]
    #[should_panic(expected = "modulus must be positive")]
    fn zero_modulus_rejected() {
        let _ = IdxExpr::i() % 0;
    }

    #[test]
    #[should_panic(expected = "division modulus must be positive")]
    fn zero_divisor_rejected() {
        let _ = IdxExpr::i().div(0);
    }

    #[test]
    fn sub_and_nested() {
        let e = (IdxExpr::i() - IdxExpr::j()) % 5;
        assert_eq!(e.eval(&[3, 7]), 1); // (-4).rem_euclid(5) == 1
    }
}
