//! Live structural edits of a (function, machine) pair.
//!
//! A serving session (see `fm-serve`) holds a [`DataflowGraph`] and a
//! [`MachineConfig`] that *change under it*: clients stream batched
//! [`GraphEdit`]s — add/remove a node, retarget an edge, resize the
//! per-PE tile — and expect re-tunes to be repaired incrementally
//! rather than re-evaluated from scratch. This module is the shared
//! vocabulary for those edits:
//!
//! * [`GraphEdit`] — the wire-facing edit description (serializable,
//!   validated, never panics).
//! * [`apply_edit`] — applies one edit to the graph/machine and
//!   returns an [`AppliedEdit`] *receipt* carrying exactly the context
//!   an incremental cost repairer needs (e.g. the removed node's
//!   dependency list, the retargeted edge's old producer).
//!
//! The receipt is what [`crate::delta::DeltaCandidates`] consumes to
//! repair per-candidate legality counters and cost trees in O(cone)
//! instead of O(V + E).

use serde::{Deserialize, Serialize};

use crate::dataflow::{CExpr, DataflowGraph, MutationError, Node, NodeId};
use crate::machine::MachineConfig;

/// One structural edit, as a client describes it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GraphEdit {
    /// Append a node (it gets the next id, keeping topological order).
    AddNode {
        /// The compiled element expression.
        expr: CExpr,
        /// Producer ids, aligned with the expression's `Dep` slots.
        deps: Vec<NodeId>,
        /// Domain point for affine mappings (empty for irregular nodes).
        index: Vec<i64>,
        /// Whether the node is a marked output element.
        output: bool,
    },
    /// Remove a consumerless node; ids above it shift down by one.
    RemoveNode {
        /// The node to remove.
        id: NodeId,
    },
    /// Point dep slot `slot` of `node` at a different earlier producer.
    RetargetEdge {
        /// The consuming node.
        node: NodeId,
        /// Which of its dep slots to rewrite.
        slot: u32,
        /// The new producer (must be an earlier node).
        new_dep: NodeId,
    },
    /// Change the machine's per-PE tile capacity.
    ResizeTile {
        /// New capacity in bits.
        tile_bits: u64,
    },
}

/// The receipt of a successfully applied [`GraphEdit`]: what changed,
/// with enough pre-edit context for an incremental repairer.
#[derive(Debug, Clone, PartialEq)]
pub enum AppliedEdit {
    /// A node was appended with this id (= new length - 1).
    AddNode {
        /// Id of the new node.
        id: NodeId,
    },
    /// A node was removed; ids above `id` shifted down by one.
    RemoveNode {
        /// Pre-removal id of the node.
        id: NodeId,
        /// The removed node itself. Its `deps` are all `< id`, so they
        /// name the same nodes before and after compaction.
        node: Node,
    },
    /// A dep slot was rewritten.
    RetargetEdge {
        /// The consuming node.
        node: NodeId,
        /// The rewritten slot.
        slot: u32,
        /// The producer the slot used to name.
        old_dep: NodeId,
        /// The producer it names now.
        new_dep: NodeId,
    },
    /// The tile capacity changed.
    ResizeTile {
        /// Capacity before the edit.
        old_bits: u64,
        /// Capacity after the edit.
        new_bits: u64,
    },
}

impl AppliedEdit {
    /// Size of the *dirty cone*: how many nodes an incremental
    /// repairer must touch (the edited node plus the producers whose
    /// consumer sets changed). `ResizeTile` dirties no node — only
    /// per-PE storage counters.
    pub fn cone_size(&self, graph: &DataflowGraph) -> u64 {
        match self {
            AppliedEdit::AddNode { id } => 1 + graph.nodes[*id as usize].deps.len() as u64,
            AppliedEdit::RemoveNode { node, .. } => 1 + node.deps.len() as u64,
            AppliedEdit::RetargetEdge {
                old_dep, new_dep, ..
            } => {
                if old_dep == new_dep {
                    1
                } else {
                    3
                }
            }
            AppliedEdit::ResizeTile { .. } => 0,
        }
    }
}

/// Apply one edit to a live (graph, machine) pair.
///
/// On error nothing is modified. On success the returned
/// [`AppliedEdit`] records what happened, including the context a
/// [`crate::delta::DeltaCandidates`] needs to repair cached state.
pub fn apply_edit(
    graph: &mut DataflowGraph,
    machine: &mut MachineConfig,
    edit: &GraphEdit,
) -> Result<AppliedEdit, MutationError> {
    match edit {
        GraphEdit::AddNode {
            expr,
            deps,
            index,
            output,
        } => {
            let id = graph.try_add_node(expr.clone(), deps.clone(), index.clone(), *output)?;
            Ok(AppliedEdit::AddNode { id })
        }
        GraphEdit::RemoveNode { id } => {
            let node = graph.remove_node(*id)?;
            Ok(AppliedEdit::RemoveNode { id: *id, node })
        }
        GraphEdit::RetargetEdge {
            node,
            slot,
            new_dep,
        } => {
            let old_dep = graph.retarget_edge(*node, *slot, *new_dep)?;
            Ok(AppliedEdit::RetargetEdge {
                node: *node,
                slot: *slot,
                old_dep,
                new_dep: *new_dep,
            })
        }
        GraphEdit::ResizeTile { tile_bits } => {
            let old_bits = machine.tile_bits;
            machine.tile_bits = *tile_bits;
            Ok(AppliedEdit::ResizeTile {
                old_bits,
                new_bits: *tile_bits,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn chain(n: usize) -> DataflowGraph {
        let mut g = DataflowGraph::new("chain", 32);
        g.add_node(CExpr::konst(Value::real(1.0)), vec![], vec![0]);
        for i in 1..n {
            g.add_node(
                CExpr::dep(0).add(CExpr::konst(Value::real(1.0))),
                vec![(i - 1) as NodeId],
                vec![i as i64],
            );
        }
        g
    }

    #[test]
    fn apply_edit_round_trips_each_kind() {
        let mut g = chain(4);
        let mut m = MachineConfig::n5(2, 2);

        let add = GraphEdit::AddNode {
            expr: CExpr::dep(0).mul(CExpr::konst(Value::real(2.0))),
            deps: vec![3],
            index: vec![4],
            output: false,
        };
        let r = apply_edit(&mut g, &mut m, &add).unwrap();
        assert_eq!(r, AppliedEdit::AddNode { id: 4 });
        assert_eq!(r.cone_size(&g), 2);

        let retarget = GraphEdit::RetargetEdge {
            node: 4,
            slot: 0,
            new_dep: 1,
        };
        let r = apply_edit(&mut g, &mut m, &retarget).unwrap();
        assert_eq!(
            r,
            AppliedEdit::RetargetEdge {
                node: 4,
                slot: 0,
                old_dep: 3,
                new_dep: 1
            }
        );
        assert_eq!(r.cone_size(&g), 3);

        let remove = GraphEdit::RemoveNode { id: 4 };
        let r = apply_edit(&mut g, &mut m, &remove).unwrap();
        assert!(matches!(r, AppliedEdit::RemoveNode { id: 4, .. }));
        assert_eq!(r.cone_size(&g), 2);

        let resize = GraphEdit::ResizeTile { tile_bits: 1024 };
        let r = apply_edit(&mut g, &mut m, &resize).unwrap();
        assert!(matches!(r, AppliedEdit::ResizeTile { new_bits: 1024, .. }));
        assert_eq!(m.tile_bits, 1024);
        assert_eq!(r.cone_size(&g), 0);
    }

    #[test]
    fn failed_edit_leaves_state_untouched() {
        let mut g = chain(3);
        let mut m = MachineConfig::n5(2, 2);
        let before = g.clone();
        let bad = GraphEdit::RemoveNode { id: 0 }; // has a consumer
        assert!(apply_edit(&mut g, &mut m, &bad).is_err());
        assert_eq!(g, before);
    }

    #[test]
    fn graph_edit_serde_round_trips() {
        let edits = vec![
            GraphEdit::AddNode {
                expr: CExpr::dep(0),
                deps: vec![0],
                index: vec![1, 2],
                output: true,
            },
            GraphEdit::RemoveNode { id: 7 },
            GraphEdit::RetargetEdge {
                node: 3,
                slot: 1,
                new_dep: 0,
            },
            GraphEdit::ResizeTile { tile_bits: 4096 },
        ];
        let s = serde_json::to_string(&edits).unwrap();
        let back: Vec<GraphEdit> = serde_json::from_str(&s).unwrap();
        assert_eq!(back, edits);
    }
}
