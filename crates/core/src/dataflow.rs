//! The elaborated element-level dataflow graph.
//!
//! This is the concrete form of the paper's "function": one node per
//! element computation, edges from each definition to each use, and
//! nothing else — "no ordering, other than that imposed by data
//! dependencies, is specified. By its nature, a definition exposes all
//! available parallelism."
//!
//! Nodes carry a *compiled* expression ([`CExpr`]) whose leaves are
//! dependency slots (`Dep(k)` = the node's `k`-th incoming edge), input
//! element reads (`In{input, flat}`) or constants. Regular computations
//! are elaborated from a [`crate::recurrence::Recurrence`]; irregular
//! ones (FFT butterflies, BFS rounds) build graphs directly through
//! [`DataflowGraph::add_node`].
//!
//! Construction enforces topological order (`deps[k] < id`), so the
//! graph is acyclic by construction and node id order is a valid
//! evaluation order.

use serde::{Deserialize, Serialize};

use fm_costmodel::OpKind;

use crate::expr::BinOp;
use crate::value::Value;

/// Identifies a node in a [`DataflowGraph`] (index into `nodes`).
pub type NodeId = u32;

/// A leaf of a compiled expression.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Leaf {
    /// The value of the node's `k`-th dependency edge.
    Dep(u32),
    /// An element of an input tensor, by flat index.
    In {
        /// Input tensor id.
        input: u32,
        /// Flattened element index (row-major).
        flat: u32,
    },
    /// A constant.
    Const(Value),
}

/// A compiled element expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CExpr {
    /// A leaf.
    Leaf(Leaf),
    /// Negation.
    Neg(Box<CExpr>),
    /// A binary operation.
    Bin(BinOp, Box<CExpr>, Box<CExpr>),
}

#[allow(clippy::should_implement_trait)] // add/sub/mul are builder combinators, deliberately named
impl CExpr {
    /// Dependency-slot leaf.
    pub fn dep(k: u32) -> CExpr {
        CExpr::Leaf(Leaf::Dep(k))
    }

    /// Input-element leaf.
    pub fn input(input: u32, flat: u32) -> CExpr {
        CExpr::Leaf(Leaf::In { input, flat })
    }

    /// Constant leaf.
    pub fn konst(v: Value) -> CExpr {
        CExpr::Leaf(Leaf::Const(v))
    }

    /// `self + rhs`.
    pub fn add(self, rhs: CExpr) -> CExpr {
        CExpr::Bin(BinOp::Add, Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: CExpr) -> CExpr {
        CExpr::Bin(BinOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: CExpr) -> CExpr {
        CExpr::Bin(BinOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// `min(self, rhs)`.
    pub fn min(self, rhs: CExpr) -> CExpr {
        CExpr::Bin(BinOp::Min, Box::new(self), Box::new(rhs))
    }

    /// `max(self, rhs)`.
    pub fn max(self, rhs: CExpr) -> CExpr {
        CExpr::Bin(BinOp::Max, Box::new(self), Box::new(rhs))
    }

    /// Number of `Dep` slots referenced (max slot + 1; 0 if none).
    pub fn dep_slots(&self) -> u32 {
        let mut max: Option<u32> = None;
        self.walk(&mut |e| {
            if let CExpr::Leaf(Leaf::Dep(k)) = e {
                max = Some(max.map_or(*k, |m: u32| m.max(*k)));
            }
        });
        max.map_or(0, |m| m + 1)
    }

    /// Input reads `(input, flat)` in left-to-right order.
    pub fn input_reads(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let CExpr::Leaf(Leaf::In { input, flat }) = e {
                out.push((*input, *flat));
            }
        });
        out
    }

    /// Hardware ops charged when this expression evaluates.
    pub fn op_kinds(&self, width: u32) -> Vec<OpKind> {
        let mut out = Vec::new();
        self.walk(&mut |e| match e {
            CExpr::Bin(op, _, _) => out.push(op.op_kind(width)),
            CExpr::Neg(_) => out.push(OpKind::logic(width)),
            _ => {}
        });
        out
    }

    /// Evaluate given dependency-slot values and an input resolver.
    pub fn eval(&self, dep_vals: &[Value], input_at: &mut impl FnMut(u32, u32) -> Value) -> Value {
        match self {
            CExpr::Leaf(Leaf::Dep(k)) => dep_vals[*k as usize],
            CExpr::Leaf(Leaf::In { input, flat }) => input_at(*input, *flat),
            CExpr::Leaf(Leaf::Const(v)) => *v,
            CExpr::Neg(a) => -a.eval(dep_vals, input_at),
            CExpr::Bin(op, a, b) => {
                op.apply(a.eval(dep_vals, input_at), b.eval(dep_vals, input_at))
            }
        }
    }

    fn walk<'a>(&'a self, f: &mut impl FnMut(&'a CExpr)) {
        f(self);
        match self {
            CExpr::Neg(a) => a.walk(f),
            CExpr::Bin(_, a, b) => {
                a.walk(f);
                b.walk(f);
            }
            CExpr::Leaf(_) => {}
        }
    }
}

/// Why a structural mutation of a [`DataflowGraph`] was rejected.
///
/// Mutations come from untrusted session clients (see `fm-serve`), so
/// unlike [`DataflowGraph::add_node`] they must not panic: every
/// precondition violation is a typed, serializable error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MutationError {
    /// The expression references a different number of `Dep` slots than
    /// deps were supplied.
    DepSlotMismatch {
        /// `Dep` slots the expression references.
        slots: u32,
        /// Producer ids supplied.
        deps: u32,
    },
    /// A dependency does not reference an earlier node.
    ForwardDep {
        /// The node being added or edited.
        node: NodeId,
        /// The offending dependency.
        dep: NodeId,
    },
    /// An input read names an undeclared input tensor.
    UnknownInput {
        /// The undeclared tensor id.
        input: u32,
    },
    /// An input read is past the end of its tensor.
    InputReadOutOfRange {
        /// Input tensor id.
        input: u32,
        /// Offending flat index.
        flat: u32,
        /// Tensor element count.
        len: u64,
    },
    /// The named node does not exist.
    NoSuchNode {
        /// The missing id.
        id: NodeId,
    },
    /// The node still has consumers and cannot be removed.
    HasConsumers {
        /// The node that was to be removed.
        id: NodeId,
        /// How many edges still read it.
        consumers: u64,
    },
    /// The edge slot does not exist on the node.
    NoSuchSlot {
        /// The node being edited.
        node: NodeId,
        /// The missing slot.
        slot: u32,
    },
}

impl std::fmt::Display for MutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutationError::DepSlotMismatch { slots, deps } => {
                write!(
                    f,
                    "expression references {slots} dep slots but {deps} deps supplied"
                )
            }
            MutationError::ForwardDep { node, dep } => {
                write!(f, "node {node}: dependency {dep} is not an earlier node")
            }
            MutationError::UnknownInput { input } => write!(f, "unknown input {input}"),
            MutationError::InputReadOutOfRange { input, flat, len } => {
                write!(f, "input {input} read at {flat} out of range {len}")
            }
            MutationError::NoSuchNode { id } => write!(f, "no such node {id}"),
            MutationError::HasConsumers { id, consumers } => {
                write!(f, "node {id} still has {consumers} consumer edges")
            }
            MutationError::NoSuchSlot { node, slot } => {
                write!(f, "node {node} has no dep slot {slot}")
            }
        }
    }
}

impl std::error::Error for MutationError {}

/// One element computation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// The compiled expression.
    pub expr: CExpr,
    /// Producer nodes, aligned with the expression's `Dep` slots.
    pub deps: Vec<NodeId>,
    /// The domain point this node was elaborated from (empty for
    /// irregular graphs; used by affine mappings).
    pub index: Vec<i64>,
    /// Whether this element is part of the function's output.
    pub output: bool,
}

/// An input tensor declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputSpec {
    /// Human-readable name (e.g. `"R"`, `"Q"`).
    pub name: String,
    /// Extent per dimension.
    pub dims: Vec<usize>,
}

impl InputSpec {
    /// Total element count.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major flat index for a multi-index; `None` if out of range.
    pub fn flatten(&self, idx: &[i64]) -> Option<usize> {
        if idx.len() != self.dims.len() {
            return None;
        }
        let mut flat: usize = 0;
        for (&i, &d) in idx.iter().zip(&self.dims) {
            if i < 0 || i as usize >= d {
                return None;
            }
            flat = flat * d + i as usize;
        }
        Some(flat)
    }
}

/// The element-level dataflow graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataflowGraph {
    /// Name for reports.
    pub name: String,
    /// Datapath width in bits (cost model granularity for every edge and
    /// op in this graph).
    pub width_bits: u32,
    /// Input tensors.
    pub inputs: Vec<InputSpec>,
    /// Nodes in topological (construction) order.
    pub nodes: Vec<Node>,
}

impl DataflowGraph {
    /// New empty graph.
    pub fn new(name: impl Into<String>, width_bits: u32) -> Self {
        DataflowGraph {
            name: name.into(),
            width_bits,
            inputs: Vec::new(),
            nodes: Vec::new(),
        }
    }

    /// Declare an input tensor; returns its id.
    pub fn add_input(&mut self, name: impl Into<String>, dims: Vec<usize>) -> u32 {
        self.inputs.push(InputSpec {
            name: name.into(),
            dims,
        });
        (self.inputs.len() - 1) as u32
    }

    /// Add a node. `deps` must reference earlier nodes and match the
    /// expression's `Dep` slot count; violations panic (construction
    /// bugs).
    pub fn add_node(&mut self, expr: CExpr, deps: Vec<NodeId>, index: Vec<i64>) -> NodeId {
        let id = self.nodes.len() as NodeId;
        assert_eq!(
            expr.dep_slots() as usize,
            deps.len(),
            "node {id}: expression references {} dep slots but {} deps supplied",
            expr.dep_slots(),
            deps.len()
        );
        for &d in &deps {
            assert!(d < id, "node {id}: dependency {d} is not an earlier node");
        }
        for (input, flat) in expr.input_reads() {
            let spec = self
                .inputs
                .get(input as usize)
                .unwrap_or_else(|| panic!("node {id}: unknown input {input}"));
            assert!(
                (flat as usize) < spec.len(),
                "node {id}: input {input} read at {flat} out of range {}",
                spec.len()
            );
        }
        self.nodes.push(Node {
            expr,
            deps,
            index,
            output: false,
        });
        id
    }

    /// Mark a node as an output element.
    pub fn mark_output(&mut self, id: NodeId) {
        self.nodes[id as usize].output = true;
    }

    /// Validate a prospective node against this graph. `id` is the id
    /// the node would get (= current length for appends).
    fn validate_node(
        &self,
        id: NodeId,
        expr: &CExpr,
        deps: &[NodeId],
    ) -> Result<(), MutationError> {
        let slots = expr.dep_slots();
        if slots as usize != deps.len() {
            return Err(MutationError::DepSlotMismatch {
                slots,
                deps: deps.len() as u32,
            });
        }
        if let Some(&d) = deps.iter().find(|&&d| d >= id) {
            return Err(MutationError::ForwardDep { node: id, dep: d });
        }
        for (input, flat) in expr.input_reads() {
            let spec = self
                .inputs
                .get(input as usize)
                .ok_or(MutationError::UnknownInput { input })?;
            if flat as usize >= spec.len() {
                return Err(MutationError::InputReadOutOfRange {
                    input,
                    flat,
                    len: spec.len() as u64,
                });
            }
        }
        Ok(())
    }

    /// Fallible [`DataflowGraph::add_node`]: append a node, rejecting
    /// (instead of panicking on) forward deps, slot-count mismatches
    /// and bad input reads. Used by the live-mutation path where node
    /// descriptions arrive from untrusted clients.
    pub fn try_add_node(
        &mut self,
        expr: CExpr,
        deps: Vec<NodeId>,
        index: Vec<i64>,
        output: bool,
    ) -> Result<NodeId, MutationError> {
        let id = self.nodes.len() as NodeId;
        self.validate_node(id, &expr, &deps)?;
        self.nodes.push(Node {
            expr,
            deps,
            index,
            output,
        });
        Ok(id)
    }

    /// Remove a **consumerless** node, compacting node ids: every id
    /// above `id` shifts down by one (dependency lists are rewritten).
    /// Returns the removed node. Nodes that still feed later nodes are
    /// refused — remove or retarget the consumers first, keeping the
    /// graph closed under construction-order topology.
    pub fn remove_node(&mut self, id: NodeId) -> Result<Node, MutationError> {
        if id as usize >= self.nodes.len() {
            return Err(MutationError::NoSuchNode { id });
        }
        let consumers = self
            .nodes
            .iter()
            .flat_map(|n| n.deps.iter())
            .filter(|&&d| d == id)
            .count() as u64;
        if consumers > 0 {
            return Err(MutationError::HasConsumers { id, consumers });
        }
        let removed = self.nodes.remove(id as usize);
        for n in &mut self.nodes {
            for d in &mut n.deps {
                if *d > id {
                    *d -= 1;
                }
            }
        }
        Ok(removed)
    }

    /// Point dep slot `slot` of `node` at a different (earlier)
    /// producer. Returns the previous producer id. The expression is
    /// untouched — only where the operand comes from changes.
    pub fn retarget_edge(
        &mut self,
        node: NodeId,
        slot: u32,
        new_dep: NodeId,
    ) -> Result<NodeId, MutationError> {
        if node as usize >= self.nodes.len() {
            return Err(MutationError::NoSuchNode { id: node });
        }
        if new_dep >= node {
            return Err(MutationError::ForwardDep { node, dep: new_dep });
        }
        let n = &mut self.nodes[node as usize];
        let d = n
            .deps
            .get_mut(slot as usize)
            .ok_or(MutationError::NoSuchSlot { node, slot })?;
        Ok(std::mem::replace(d, new_dep))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids of output nodes. If none were marked, nodes with no consumers
    /// are treated as outputs.
    pub fn outputs(&self) -> Vec<NodeId> {
        let marked: Vec<NodeId> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.output)
            .map(|(i, _)| i as NodeId)
            .collect();
        if !marked.is_empty() {
            return marked;
        }
        let mut has_consumer = vec![false; self.nodes.len()];
        for n in &self.nodes {
            for &d in &n.deps {
                has_consumer[d as usize] = true;
            }
        }
        has_consumer
            .iter()
            .enumerate()
            .filter(|(_, &c)| !c)
            .map(|(i, _)| i as NodeId)
            .collect()
    }

    /// Consumer lists: for each node, which later nodes read it.
    pub fn consumers(&self) -> Vec<Vec<NodeId>> {
        let mut cons = vec![Vec::new(); self.nodes.len()];
        for (id, n) in self.nodes.iter().enumerate() {
            for &d in &n.deps {
                cons[d as usize].push(id as NodeId);
            }
        }
        cons
    }

    /// Functional evaluation: compute every node's value given input
    /// tensors (flattened row-major).
    ///
    /// Panics if an input tensor is missing or short — the shapes are
    /// part of the function's signature.
    pub fn eval(&self, inputs: &[Vec<Value>]) -> Vec<Value> {
        assert_eq!(
            inputs.len(),
            self.inputs.len(),
            "graph {} expects {} inputs, got {}",
            self.name,
            self.inputs.len(),
            inputs.len()
        );
        for (spec, data) in self.inputs.iter().zip(inputs) {
            assert_eq!(
                spec.len(),
                data.len(),
                "input {} expects {} elements, got {}",
                spec.name,
                spec.len(),
                data.len()
            );
        }
        let mut vals: Vec<Value> = Vec::with_capacity(self.nodes.len());
        let mut dep_buf: Vec<Value> = Vec::new();
        for n in &self.nodes {
            dep_buf.clear();
            dep_buf.extend(n.deps.iter().map(|&d| vals[d as usize]));
            let mut input_at = |input: u32, flat: u32| inputs[input as usize][flat as usize];
            vals.push(n.expr.eval(&dep_buf, &mut input_at));
        }
        vals
    }

    /// Total hardware-op count across all nodes (unit "work" at op
    /// granularity).
    pub fn op_count(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.expr.op_kinds(self.width_bits).len() as u64)
            .sum()
    }

    /// Longest dependency chain measured in *nodes* (the function's
    /// intrinsic critical path, i.e. its minimum-depth parallel time).
    pub fn depth(&self) -> u64 {
        let mut d = vec![0u64; self.nodes.len()];
        let mut max = 0;
        for (id, n) in self.nodes.iter().enumerate() {
            let dep_max = n.deps.iter().map(|&p| d[p as usize]).max().unwrap_or(0);
            d[id] = dep_max + 1;
            max = max.max(d[id]);
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond: d = (a+b) with a,b from one constant source.
    fn diamond() -> DataflowGraph {
        let mut g = DataflowGraph::new("diamond", 32);
        let s = g.add_node(CExpr::konst(Value::real(1.0)), vec![], vec![]);
        let a = g.add_node(
            CExpr::dep(0).add(CExpr::konst(Value::real(2.0))),
            vec![s],
            vec![],
        );
        let b = g.add_node(
            CExpr::dep(0).mul(CExpr::konst(Value::real(3.0))),
            vec![s],
            vec![],
        );
        let d = g.add_node(CExpr::dep(0).add(CExpr::dep(1)), vec![a, b], vec![]);
        g.mark_output(d);
        g
    }

    #[test]
    fn eval_diamond() {
        let g = diamond();
        let vals = g.eval(&[]);
        assert_eq!(vals[3].re, 6.0); // (1+2) + (1*3)
    }

    #[test]
    fn depth_and_outputs() {
        let g = diamond();
        assert_eq!(g.depth(), 3);
        assert_eq!(g.outputs(), vec![3]);
    }

    #[test]
    fn outputs_default_to_sinks() {
        let mut g = DataflowGraph::new("sinks", 32);
        let a = g.add_node(CExpr::konst(Value::ZERO), vec![], vec![]);
        let _b = g.add_node(CExpr::dep(0), vec![a], vec![]);
        let _c = g.add_node(CExpr::dep(0), vec![a], vec![]);
        assert_eq!(g.outputs(), vec![1, 2]);
    }

    #[test]
    fn consumers_computed() {
        let g = diamond();
        let cons = g.consumers();
        assert_eq!(cons[0], vec![1, 2]);
        assert_eq!(cons[1], vec![3]);
        assert_eq!(cons[3], Vec::<NodeId>::new());
    }

    #[test]
    fn input_reads_resolved() {
        let mut g = DataflowGraph::new("inp", 32);
        let r = g.add_input("R", vec![4]);
        let n = g.add_node(CExpr::input(r, 2).add(CExpr::input(r, 3)), vec![], vec![]);
        let vals = g.eval(&[vec![
            Value::real(10.0),
            Value::real(20.0),
            Value::real(30.0),
            Value::real(40.0),
        ]]);
        assert_eq!(vals[n as usize].re, 70.0);
    }

    #[test]
    #[should_panic(expected = "is not an earlier node")]
    fn forward_dep_rejected() {
        let mut g = DataflowGraph::new("bad", 32);
        g.add_node(CExpr::dep(0), vec![5], vec![]);
    }

    #[test]
    #[should_panic(expected = "dep slots")]
    fn slot_count_mismatch_rejected() {
        let mut g = DataflowGraph::new("bad", 32);
        g.add_node(CExpr::dep(1), vec![], vec![]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn input_read_out_of_range_rejected() {
        let mut g = DataflowGraph::new("bad", 32);
        let r = g.add_input("R", vec![2]);
        g.add_node(CExpr::input(r, 5), vec![], vec![]);
    }

    #[test]
    fn flatten_row_major() {
        let spec = InputSpec {
            name: "A".into(),
            dims: vec![3, 4],
        };
        assert_eq!(spec.flatten(&[0, 0]), Some(0));
        assert_eq!(spec.flatten(&[1, 2]), Some(6));
        assert_eq!(spec.flatten(&[2, 3]), Some(11));
        assert_eq!(spec.flatten(&[3, 0]), None);
        assert_eq!(spec.flatten(&[0, -1]), None);
        assert_eq!(spec.flatten(&[0]), None);
    }

    #[test]
    fn op_count_counts_expression_ops() {
        let g = diamond();
        // Nodes: const (0 ops), add (1), mul (1), add (1).
        assert_eq!(g.op_count(), 3);
    }

    #[test]
    fn dep_slots_counts_max_plus_one() {
        assert_eq!(CExpr::dep(0).add(CExpr::dep(2)).dep_slots(), 3);
        assert_eq!(CExpr::konst(Value::ZERO).dep_slots(), 0);
    }

    #[test]
    fn try_add_node_rejects_what_add_node_panics_on() {
        let mut g = DataflowGraph::new("m", 32);
        assert!(matches!(
            g.try_add_node(CExpr::dep(0), vec![5], vec![], false),
            Err(MutationError::ForwardDep { .. })
        ));
        assert!(matches!(
            g.try_add_node(CExpr::dep(1), vec![], vec![], false),
            Err(MutationError::DepSlotMismatch { .. })
        ));
        assert!(matches!(
            g.try_add_node(CExpr::input(0, 0), vec![], vec![], false),
            Err(MutationError::UnknownInput { .. })
        ));
        let r = g.add_input("R", vec![2]);
        assert!(matches!(
            g.try_add_node(CExpr::input(r, 5), vec![], vec![], false),
            Err(MutationError::InputReadOutOfRange { .. })
        ));
        assert_eq!(g.len(), 0, "rejected nodes must not be appended");
        let a = g
            .try_add_node(CExpr::input(r, 1), vec![], vec![], true)
            .unwrap();
        assert_eq!(a, 0);
        assert!(g.nodes[0].output);
    }

    #[test]
    fn remove_node_compacts_ids() {
        let mut g = diamond();
        // Node 3 (the sink) is the only consumerless node.
        assert!(matches!(
            g.remove_node(0),
            Err(MutationError::HasConsumers {
                id: 0,
                consumers: 2
            })
        ));
        g.remove_node(3).unwrap();
        assert_eq!(g.len(), 3);
        // Now 1 and 2 are consumerless; removing 1 shifts 2 -> 1.
        g.remove_node(1).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(
            g.nodes[1].deps,
            vec![0],
            "dep on node 0 survives compaction"
        );
        assert!(matches!(
            g.remove_node(9),
            Err(MutationError::NoSuchNode { id: 9 })
        ));
    }

    #[test]
    fn retarget_edge_swaps_producer() {
        let mut g = diamond();
        // d reads (a, b); point slot 1 back at the source instead of b.
        let old = g.retarget_edge(3, 1, 0).unwrap();
        assert_eq!(old, 2);
        assert_eq!(g.nodes[3].deps, vec![1, 0]);
        let vals = g.eval(&[]);
        assert_eq!(vals[3].re, 4.0); // (1+2) + 1
        assert!(matches!(
            g.retarget_edge(3, 9, 0),
            Err(MutationError::NoSuchSlot { node: 3, slot: 9 })
        ));
        assert!(matches!(
            g.retarget_edge(1, 0, 2),
            Err(MutationError::ForwardDep { node: 1, dep: 2 })
        ));
    }

    #[test]
    fn serde_round_trip() {
        let g = diamond();
        let s = serde_json::to_string(&g).unwrap();
        let back: DataflowGraph = serde_json::from_str(&s).unwrap();
        assert_eq!(back, g);
    }
}
