//! Mechanical lowering of (function, mapping) to an architecture
//! description.
//!
//! "An algorithm expressed in this model also directly specifies a
//! domain-specific architecture. Given a definition and mapping,
//! lowering the specification to hardware (e.g., in Verilog or Chisel)
//! is a mechanical process."
//!
//! [`lower`] extracts, from a mapped graph, exactly what a hardware
//! generator needs: the grid bounding box actually used, the op mix
//! each PE must support, the issue width and tile capacity each PE
//! needs, link utilization, and the off-chip interface width. The
//! result serializes (serde) and renders as a human-readable RTL
//! sketch — the mechanical step the paper asserts, demonstrated.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use fm_costmodel::OpClass;

use crate::dataflow::DataflowGraph;
use crate::legality::tile_peaks;
use crate::machine::MachineConfig;
use crate::mapping::ResolvedMapping;

/// Per-PE requirements extracted from the mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeRequirements {
    /// Functional units needed: op class → count of ops of that class
    /// the PE executes over the whole run (a generator would instance
    /// one unit per class; counts inform pipelining).
    pub op_mix: BTreeMap<String, u64>,
    /// Maximum elements this PE evaluates in one cycle.
    pub issue_width: u32,
    /// Peak live bits this PE's tile must hold.
    pub tile_bits: u64,
}

/// A lowered architecture description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchitectureDescr {
    /// Derived from the graph name.
    pub name: String,
    /// Columns in the used bounding box.
    pub cols: u32,
    /// Rows in the used bounding box.
    pub rows: u32,
    /// Clock period in ps.
    pub clock_ps: f64,
    /// Datapath width in bits.
    pub width_bits: u32,
    /// The *maximum* per-PE requirements (a homogeneous array must meet
    /// the worst case).
    pub pe: PeRequirements,
    /// NoC link width in bits.
    pub link_width_bits: u32,
    /// Total off-chip traffic in bits (sizes the DRAM interface).
    pub offchip_bits: u64,
    /// Total cycles of the schedule (for throughput/II calculations).
    pub cycles: i64,
}

/// Lower a mapped function to an architecture description.
///
/// The mapping is assumed legal. `offchip_bits` should come from the
/// cost report's ledger (`offchip_bits`), since input placement policy
/// lives there; pass 0 for a fully on-chip design.
pub fn lower(
    graph: &DataflowGraph,
    rm: &ResolvedMapping,
    machine: &MachineConfig,
    offchip_bits: u64,
) -> ArchitectureDescr {
    // Bounding box of used PEs.
    let (mut max_x, mut max_y) = (0i64, 0i64);
    for &(x, y) in &rm.place {
        max_x = max_x.max(x);
        max_y = max_y.max(y);
    }

    // Per-PE op mix and issue width.
    let mut op_mix: BTreeMap<(i64, i64), BTreeMap<String, u64>> = BTreeMap::new();
    let mut issue: BTreeMap<((i64, i64), i64), u32> = BTreeMap::new();
    for (id, n) in graph.nodes.iter().enumerate() {
        let pe = rm.place[id];
        let mix = op_mix.entry(pe).or_default();
        for op in n.expr.op_kinds(graph.width_bits) {
            *mix.entry(class_name(op.class).to_string()).or_insert(0) += 1;
        }
        *issue.entry((pe, rm.time[id])).or_insert(0) += 1;
    }
    // Worst-case PE: union of op mixes with max counts, max issue, max
    // tile peak.
    let mut worst_mix: BTreeMap<String, u64> = BTreeMap::new();
    for mix in op_mix.values() {
        for (k, v) in mix {
            let e = worst_mix.entry(k.clone()).or_insert(0);
            *e = (*e).max(*v);
        }
    }
    let worst_issue = issue.values().copied().max().unwrap_or(0);
    let worst_tile = tile_peaks(graph, rm, rm.makespan())
        .values()
        .copied()
        .max()
        .unwrap_or(0);

    ArchitectureDescr {
        name: {
            // Sanitize to a legal RTL identifier.
            let base: String = graph
                .name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            format!("{base}_array")
        },
        cols: (max_x + 1) as u32,
        rows: (max_y + 1) as u32,
        clock_ps: machine.clock_period().raw(),
        width_bits: graph.width_bits,
        pe: PeRequirements {
            op_mix: worst_mix,
            issue_width: worst_issue,
            tile_bits: worst_tile,
        },
        link_width_bits: machine.link_width_bits,
        offchip_bits,
        cycles: rm.makespan(),
    }
}

fn class_name(c: OpClass) -> &'static str {
    match c {
        OpClass::AddLike => "alu_addsub",
        OpClass::Multiply => "multiplier",
        OpClass::Logic => "logic",
        OpClass::SramBit => "sram_port",
        OpClass::Move => "mover",
    }
}

/// A violation found by [`ArchitectureDescr::check_fits`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum FitError {
    /// The design needs a wider grid than the machine provides.
    Grid {
        /// Required (cols, rows).
        required: (u32, u32),
        /// Available (cols, rows).
        available: (u32, u32),
    },
    /// The design needs more issue slots per cycle than a PE has.
    IssueWidth {
        /// Required issue width.
        required: u32,
        /// Available issue width.
        available: u32,
    },
    /// The design needs more tile storage than a PE has.
    TileBits {
        /// Required bits.
        required: u64,
        /// Available bits.
        available: u64,
    },
}

impl ArchitectureDescr {
    /// Verify that this lowered design fits a machine — grid extent,
    /// issue width, tile capacity. The paper's §4 (Martonosi) argues
    /// for "formal specifications that support automated full-stack
    /// verification"; this is that check at the mapping/machine
    /// interface: lowering gives a *specification* of requirements,
    /// and fitting is decidable by inspection.
    pub fn check_fits(&self, machine: &MachineConfig) -> Vec<FitError> {
        let mut errors = Vec::new();
        if self.cols > machine.cols || self.rows > machine.rows {
            errors.push(FitError::Grid {
                required: (self.cols, self.rows),
                available: (machine.cols, machine.rows),
            });
        }
        if self.pe.issue_width > machine.issue_width {
            errors.push(FitError::IssueWidth {
                required: self.pe.issue_width,
                available: machine.issue_width,
            });
        }
        if self.pe.tile_bits > machine.tile_bits {
            errors.push(FitError::TileBits {
                required: self.pe.tile_bits,
                available: machine.tile_bits,
            });
        }
        errors
    }

    /// Render a structural RTL sketch (Verilog-flavored pseudocode).
    /// This is documentation of the mechanical lowering, not synthesizable
    /// RTL: the real generator would emit one PE module with the listed
    /// units plus the mesh interconnect.
    pub fn rtl_sketch(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "// Generated from function '{}' — mechanical lowering (F&M §3)\n",
            self.name
        ));
        s.push_str(&format!(
            "module {} #(parameter W = {}) (input clk, input rst);\n",
            self.name, self.width_bits
        ));
        s.push_str(&format!(
            "  // {} x {} PE mesh, clock {:.0} ps, schedule length {} cycles\n",
            self.cols, self.rows, self.clock_ps, self.cycles
        ));
        s.push_str(&format!(
            "  genvar gx, gy;\n  generate\n    for (gy = 0; gy < {}; gy = gy + 1) begin : row\n      for (gx = 0; gx < {}; gx = gx + 1) begin : col\n",
            self.rows, self.cols
        ));
        s.push_str(&format!(
            "        pe #(.W(W), .ISSUE({}), .TILE_BITS({})) u_pe (.clk(clk), .rst(rst));\n",
            self.pe.issue_width, self.pe.tile_bits
        ));
        for (unit, count) in &self.pe.op_mix {
            s.push_str(&format!(
                "        // unit {unit}: {count} ops over the schedule\n"
            ));
        }
        s.push_str("      end\n    end\n  endgenerate\n");
        s.push_str(&format!(
            "  // mesh links: {} bits/cycle; off-chip interface: {} bits total\n",
            self.link_width_bits, self.offchip_bits
        ));
        s.push_str("endmodule\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::CExpr;
    use crate::mapping::Mapping;
    use crate::value::Value;

    fn small_graph() -> DataflowGraph {
        let mut g = DataflowGraph::new("kernel", 32);
        let a = g.add_node(CExpr::konst(Value::real(1.0)), vec![], vec![0]);
        let b = g.add_node(
            CExpr::dep(0).mul(CExpr::konst(Value::real(2.0))),
            vec![a],
            vec![1],
        );
        let c = g.add_node(CExpr::dep(0).add(CExpr::dep(1)), vec![a, b], vec![2]);
        g.mark_output(c);
        g
    }

    #[test]
    fn lowering_extracts_bounding_box() {
        let g = small_graph();
        let m = MachineConfig::n5(8, 8);
        let rm = ResolvedMapping {
            place: vec![(0, 0), (2, 1), (2, 1)],
            time: vec![0, 3, 6],
        };
        let arch = lower(&g, &rm, &m, 0);
        assert_eq!(arch.cols, 3);
        assert_eq!(arch.rows, 2);
        assert_eq!(arch.cycles, 7);
    }

    #[test]
    fn op_mix_worst_case_per_pe() {
        let g = small_graph();
        let m = MachineConfig::n5(4, 4);
        let rm = Mapping::serial(&g).resolve(&g, &m).unwrap();
        let arch = lower(&g, &rm, &m, 0);
        assert_eq!(arch.pe.op_mix.get("multiplier"), Some(&1));
        assert_eq!(arch.pe.op_mix.get("alu_addsub"), Some(&1));
        assert_eq!(arch.pe.issue_width, 1);
    }

    #[test]
    fn tile_bits_sized_from_liveness() {
        let g = small_graph();
        let m = MachineConfig::n5(4, 4);
        let rm = Mapping::serial(&g).resolve(&g, &m).unwrap();
        let arch = lower(&g, &rm, &m, 0);
        assert!(arch.pe.tile_bits >= 64); // a and b live simultaneously
    }

    #[test]
    fn serde_round_trip() {
        let g = small_graph();
        let m = MachineConfig::n5(4, 4);
        let rm = Mapping::serial(&g).resolve(&g, &m).unwrap();
        let arch = lower(&g, &rm, &m, 128);
        let s = serde_json::to_string(&arch).unwrap();
        let back: ArchitectureDescr = serde_json::from_str(&s).unwrap();
        assert_eq!(back, arch);
    }

    #[test]
    fn lowered_design_fits_its_own_machine() {
        let g = small_graph();
        let m = MachineConfig::n5(4, 4);
        let rm = Mapping::serial(&g).resolve(&g, &m).unwrap();
        let arch = lower(&g, &rm, &m, 0);
        assert!(arch.check_fits(&m).is_empty());
    }

    #[test]
    fn fit_check_finds_undersized_machines() {
        let g = small_graph();
        let m = MachineConfig::n5(8, 8);
        let rm = ResolvedMapping {
            place: vec![(0, 0), (5, 3), (5, 3)],
            time: vec![0, 3, 6],
        };
        let arch = lower(&g, &rm, &m, 0);
        let tiny = {
            let mut t = MachineConfig::n5(2, 2);
            t.tile_bits = 8;
            t
        };
        let errors = arch.check_fits(&tiny);
        assert!(errors.iter().any(|e| matches!(e, FitError::Grid { .. })));
        assert!(errors
            .iter()
            .any(|e| matches!(e, FitError::TileBits { .. })));
    }

    #[test]
    fn rtl_sketch_mentions_grid_and_units() {
        let g = small_graph();
        let m = MachineConfig::n5(4, 4);
        let rm = Mapping::serial(&g).resolve(&g, &m).unwrap();
        let arch = lower(&g, &rm, &m, 0);
        let rtl = arch.rtl_sketch();
        assert!(rtl.contains("module kernel_array"));
        assert!(rtl.contains("multiplier"));
        assert!(rtl.contains("generate"));
    }
}
