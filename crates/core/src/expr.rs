//! Surface element expressions: the right-hand side of a recurrence.
//!
//! An [`ElemExpr`] describes how one tensor element is computed from
//! *earlier* elements of the same tensor (at constant offsets), from
//! input tensors (at affine indices), and from constants — exactly the
//! shape of the paper's worked example:
//!
//! ```text
//! H(i,j) = min(H(i-1,j-1) + f(R[i],Q[j]),  H(i-1,j) + D,  H(i,j-1) + I,  0)
//! ```
//!
//! The expression is *functional*: "no ordering — other than that imposed
//! by data dependencies — is specified". Elaboration (see
//! [`crate::recurrence`]) turns each domain point's expression into one
//! dataflow node whose incoming edges are the `SelfRef` leaves.

use serde::{Deserialize, Serialize};
use std::fmt;

use fm_costmodel::OpKind;

use crate::affine::IdxExpr;
use crate::value::Value;

/// A reference to an input tensor at an affine index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputRef {
    /// Which input tensor (position in the recurrence's input list).
    pub input: usize,
    /// One affine index expression per input dimension, evaluated at the
    /// consuming element's domain point.
    pub index: Vec<IdxExpr>,
}

/// Binary operators on [`Value`]s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BinOp {
    /// Complex addition.
    Add,
    /// Complex subtraction.
    Sub,
    /// Complex multiplication.
    Mul,
    /// Minimum by real part.
    Min,
    /// Maximum by real part.
    Max,
    /// Scoring function `f(a, b)`: `eq` if the real parts are equal,
    /// `ne` otherwise — the substitution-cost function of the paper's
    /// edit-distance example.
    Match {
        /// Score when the operands match.
        eq: f64,
        /// Score when they differ.
        ne: f64,
    },
}

impl BinOp {
    /// Apply the operator.
    pub fn apply(self, a: Value, b: Value) -> Value {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
            BinOp::Match { eq, ne } => {
                if a.re == b.re {
                    Value::real(eq)
                } else {
                    Value::real(ne)
                }
            }
        }
    }

    /// The hardware op charged for this operator at the given width.
    pub fn op_kind(self, width: u32) -> OpKind {
        match self {
            BinOp::Add | BinOp::Sub | BinOp::Min | BinOp::Max => OpKind::add(width),
            BinOp::Mul => OpKind::mul(width),
            // A match is a comparator plus a select: about one add plus
            // some logic; charge an add-like op.
            BinOp::Match { .. } => OpKind::add(width),
        }
    }
}

/// A surface element expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ElemExpr {
    /// A constant value.
    Const(Value),
    /// The same tensor at `index + offsets` (offsets are typically
    /// negative: they must reference *earlier* elements for the
    /// recurrence to be well founded).
    SelfRef(Vec<i64>),
    /// An input tensor element.
    Input(InputRef),
    /// Negation.
    Neg(Box<ElemExpr>),
    /// A binary operation.
    Bin(BinOp, Box<ElemExpr>, Box<ElemExpr>),
}

#[allow(clippy::should_implement_trait)] // add/sub/mul are builder combinators, deliberately named
impl ElemExpr {
    /// Constant helper.
    pub fn lit(v: f64) -> ElemExpr {
        ElemExpr::Const(Value::real(v))
    }

    /// `self + rhs`.
    pub fn add(self, rhs: ElemExpr) -> ElemExpr {
        ElemExpr::Bin(BinOp::Add, Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: ElemExpr) -> ElemExpr {
        ElemExpr::Bin(BinOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: ElemExpr) -> ElemExpr {
        ElemExpr::Bin(BinOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// `min(self, rhs)`.
    pub fn min(self, rhs: ElemExpr) -> ElemExpr {
        ElemExpr::Bin(BinOp::Min, Box::new(self), Box::new(rhs))
    }

    /// `max(self, rhs)`.
    pub fn max(self, rhs: ElemExpr) -> ElemExpr {
        ElemExpr::Bin(BinOp::Max, Box::new(self), Box::new(rhs))
    }

    /// n-ary minimum (right fold). Panics on an empty list.
    pub fn min_of(mut exprs: Vec<ElemExpr>) -> ElemExpr {
        assert!(!exprs.is_empty(), "min_of requires at least one operand");
        let mut acc = exprs.pop().unwrap();
        while let Some(e) = exprs.pop() {
            acc = e.min(acc);
        }
        acc
    }

    /// Collect the `SelfRef` offset vectors in left-to-right order.
    /// Elaboration aligns dataflow edges with this order.
    pub fn self_refs(&self) -> Vec<&[i64]> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let ElemExpr::SelfRef(off) = e {
                out.push(off.as_slice());
            }
        });
        out
    }

    /// Collect the input references in left-to-right order.
    pub fn input_refs(&self) -> Vec<&InputRef> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let ElemExpr::Input(r) = e {
                out.push(r);
            }
        });
        out
    }

    /// The hardware ops charged when one element evaluates, at the given
    /// datapath width. Input/self reads are charged by the cost
    /// evaluator separately (they are *movement*, the paper's point).
    pub fn op_kinds(&self, width: u32) -> Vec<OpKind> {
        let mut out = Vec::new();
        self.walk(&mut |e| match e {
            ElemExpr::Bin(op, _, _) => out.push(op.op_kind(width)),
            ElemExpr::Neg(_) => out.push(OpKind::logic(width)),
            _ => {}
        });
        out
    }

    /// Pre-order traversal.
    fn walk<'a>(&'a self, f: &mut impl FnMut(&'a ElemExpr)) {
        f(self);
        match self {
            ElemExpr::Neg(a) => a.walk(f),
            ElemExpr::Bin(_, a, b) => {
                a.walk(f);
                b.walk(f);
            }
            _ => {}
        }
    }

    /// Evaluate with resolvers for self-references and input reads.
    ///
    /// `self_at` receives the *offset vector* of each `SelfRef` leaf (the
    /// caller adds it to the current domain point); `input_at` receives
    /// the input id and the evaluated index.
    pub fn eval(
        &self,
        idx: &[i64],
        self_at: &mut impl FnMut(&[i64]) -> Value,
        input_at: &mut impl FnMut(usize, &[i64]) -> Value,
    ) -> Value {
        match self {
            ElemExpr::Const(v) => *v,
            ElemExpr::SelfRef(off) => self_at(off),
            ElemExpr::Input(r) => {
                let resolved: Vec<i64> = r.index.iter().map(|e| e.eval(idx)).collect();
                input_at(r.input, &resolved)
            }
            ElemExpr::Neg(a) => -a.eval(idx, self_at, input_at),
            ElemExpr::Bin(op, a, b) => {
                let va = a.eval(idx, self_at, input_at);
                let vb = b.eval(idx, self_at, input_at);
                op.apply(va, vb)
            }
        }
    }
}

impl fmt::Display for ElemExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElemExpr::Const(v) => write!(f, "{v}"),
            ElemExpr::SelfRef(off) => {
                let parts: Vec<String> = off
                    .iter()
                    .enumerate()
                    .map(|(k, o)| {
                        let var = match k {
                            0 => "i".to_string(),
                            1 => "j".to_string(),
                            2 => "k".to_string(),
                            n => format!("i{n}"),
                        };
                        match o.cmp(&0) {
                            std::cmp::Ordering::Equal => var,
                            std::cmp::Ordering::Greater => format!("{var}+{o}"),
                            std::cmp::Ordering::Less => format!("{var}{o}"),
                        }
                    })
                    .collect();
                write!(f, "H({})", parts.join(","))
            }
            ElemExpr::Input(r) => {
                let parts: Vec<String> = r.index.iter().map(|e| format!("{e}")).collect();
                write!(f, "in{}[{}]", r.input, parts.join(","))
            }
            ElemExpr::Neg(a) => write!(f, "-({a})"),
            ElemExpr::Bin(op, a, b) => match op {
                BinOp::Add => write!(f, "({a} + {b})"),
                BinOp::Sub => write!(f, "({a} - {b})"),
                BinOp::Mul => write!(f, "({a} * {b})"),
                BinOp::Min => write!(f, "min({a}, {b})"),
                BinOp::Max => write!(f, "max({a}, {b})"),
                BinOp::Match { eq, ne } => write!(f, "match({a}, {b}; {eq}/{ne})"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's edit-distance right-hand side.
    fn edit_expr() -> ElemExpr {
        let f = ElemExpr::Bin(
            BinOp::Match { eq: 0.0, ne: 1.0 },
            Box::new(ElemExpr::Input(InputRef {
                input: 0,
                index: vec![IdxExpr::i()],
            })),
            Box::new(ElemExpr::Input(InputRef {
                input: 1,
                index: vec![IdxExpr::j()],
            })),
        );
        ElemExpr::min_of(vec![
            ElemExpr::SelfRef(vec![-1, -1]).add(f),
            ElemExpr::SelfRef(vec![-1, 0]).add(ElemExpr::lit(1.0)),
            ElemExpr::SelfRef(vec![0, -1]).add(ElemExpr::lit(1.0)),
            ElemExpr::lit(0.0),
        ])
    }

    #[test]
    fn self_refs_in_order() {
        let e = edit_expr();
        let refs = e.self_refs();
        assert_eq!(refs, vec![&[-1, -1][..], &[-1, 0][..], &[0, -1][..]]);
    }

    #[test]
    fn input_refs_found() {
        let e = edit_expr();
        let ins = e.input_refs();
        assert_eq!(ins.len(), 2);
        assert_eq!(ins[0].input, 0);
        assert_eq!(ins[1].input, 1);
    }

    #[test]
    fn op_kinds_counted() {
        let e = edit_expr();
        // 3 min folds + 3 adds (one per branch... the last branch is the
        // constant 0) — count: min(a,min(b,min(c,d))) = 3 Bin(Min) +
        // 3 Bin(Add) + 1 Match = 7 add-like ops.
        assert_eq!(e.op_kinds(32).len(), 7);
    }

    #[test]
    fn eval_edit_cell() {
        let e = edit_expr();
        // Pretend neighbors: diag=2, up=3, left=4; R[i]==Q[j].
        let mut self_at = |off: &[i64]| match off {
            [-1, -1] => Value::real(2.0),
            [-1, 0] => Value::real(3.0),
            [0, -1] => Value::real(4.0),
            _ => unreachable!(),
        };
        let mut input_at = |_id: usize, _ix: &[i64]| Value::real(7.0); // equal chars
        let v = e.eval(&[5, 5], &mut self_at, &mut input_at);
        // min(2+0, 3+1, 4+1, 0) = 0 (the Smith-Waterman-style floor).
        assert_eq!(v.re, 0.0);
    }

    #[test]
    fn eval_without_floor_term() {
        // Classic edit distance without the 0 term.
        let f = ElemExpr::Bin(
            BinOp::Match { eq: 0.0, ne: 1.0 },
            Box::new(ElemExpr::Input(InputRef {
                input: 0,
                index: vec![IdxExpr::i()],
            })),
            Box::new(ElemExpr::Input(InputRef {
                input: 1,
                index: vec![IdxExpr::j()],
            })),
        );
        let e = ElemExpr::min_of(vec![
            ElemExpr::SelfRef(vec![-1, -1]).add(f),
            ElemExpr::SelfRef(vec![-1, 0]).add(ElemExpr::lit(1.0)),
            ElemExpr::SelfRef(vec![0, -1]).add(ElemExpr::lit(1.0)),
        ]);
        let mut self_at = |off: &[i64]| match off {
            [-1, -1] => Value::real(2.0),
            [-1, 0] => Value::real(3.0),
            [0, -1] => Value::real(4.0),
            _ => unreachable!(),
        };
        // Different chars this time: f = 1.
        let mut input_at = |id: usize, _ix: &[i64]| Value::real(id as f64);
        let v = e.eval(&[1, 1], &mut self_at, &mut input_at);
        assert_eq!(v.re, 3.0); // min(2+1, 3+1, 4+1)
    }

    #[test]
    fn match_op_semantics() {
        let m = BinOp::Match { eq: -2.0, ne: 3.0 };
        assert_eq!(m.apply(Value::real(1.0), Value::real(1.0)).re, -2.0);
        assert_eq!(m.apply(Value::real(1.0), Value::real(2.0)).re, 3.0);
    }

    #[test]
    fn input_index_is_affine_evaluated() {
        let e = ElemExpr::Input(InputRef {
            input: 0,
            index: vec![IdxExpr::i() * 2 + IdxExpr::c(1)],
        });
        let mut hits = Vec::new();
        let mut self_at = |_: &[i64]| unreachable!();
        let mut input_at = |id: usize, ix: &[i64]| {
            hits.push((id, ix.to_vec()));
            Value::ZERO
        };
        e.eval(&[3], &mut self_at, &mut input_at);
        assert_eq!(hits, vec![(0, vec![7])]);
    }

    #[test]
    #[should_panic(expected = "at least one operand")]
    fn min_of_empty_panics() {
        ElemExpr::min_of(vec![]);
    }

    #[test]
    fn display_is_readable() {
        let e = ElemExpr::SelfRef(vec![-1, 0]).add(ElemExpr::lit(1.0));
        assert_eq!(format!("{e}"), "(H(i-1,j) + 1)");
    }

    #[test]
    fn mul_and_neg_ops_counted() {
        let e = ElemExpr::Neg(Box::new(
            ElemExpr::SelfRef(vec![-1]).mul(ElemExpr::lit(2.0)),
        ));
        let kinds = e.op_kinds(32);
        assert_eq!(kinds.len(), 2);
    }
}
