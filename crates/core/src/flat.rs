//! The flat evaluation engine: interned PE ids, structure-of-arrays
//! cost folds, and zero-allocation candidate batching.
//!
//! The analytic evaluator's promise is *predictable* cost, but the
//! original hot path spent its cycles in `HashMap<(i64,i64),…>`
//! lookups and per-candidate `Vec` reallocation rather than in the
//! cost arithmetic itself. This module restructures evaluation the way
//! the paper says to restructure computation: make the data layout
//! explicit and contiguous.
//!
//! Three pieces:
//!
//! * [`EvalContext`] — everything shared by every candidate of one
//!   (graph, machine, evaluator) triple, computed **once**: CSR
//!   consumer lists, the placement-independent prefix of every node's
//!   cost (expression ops + result write + operand reads — a fixed
//!   f64 partial sum, so continuing from it reproduces the reference
//!   accumulation bit-for-bit), per-node input-read homes with the
//!   unflatten/affine work pre-evaluated, and the off-chip totals.
//! * [`EvalScratch`] — a reusable arena holding every buffer one
//!   evaluation needs (resolved places/times, interned PE ids, sweep
//!   events, the SoA [`CostTree`]). Buffers are cleared, never freed,
//!   so steady-state evaluation performs **zero heap allocation**.
//! * [`BatchEvaluator`] — the per-candidate entry point the tuner's
//!   work-stealing loop calls: resolve into scratch, check legality
//!   with dense per-PE arrays, cost through the context, score. Its
//!   result is debug-asserted bit-identical to the reference
//!   `search::evaluate_candidate` path.
//!
//! **Interning rule.** A place `(x, y)` on the `cols × rows` grid
//! interns to `pe = y * cols + x` as a dense `u32`. Off-grid places
//! (possible only in unchecked mappings, which are illegal by the
//! bounds rule anyway) make the flat path bow out: callers fall back
//! to the reference `HashMap` implementations, so generality is
//! preserved without taxing the hot path.
//!
//! Every number produced here is bit-identical to the reference path:
//! the pairwise cost tree keeps its exact shape (SoA only changes
//! *storage*, the six fields fold independently), charge order within
//! a node is unchanged, and the tile-peak sweep sorts the same event
//! pairs the `HashMap` version sorts.

use std::cell::RefCell;

use crate::cost::{CostReport, CostTree, Evaluator, NodeCost, OffchipTotals};
use crate::dataflow::{DataflowGraph, NodeId};
use crate::legality::check;
use crate::machine::MachineConfig;
use crate::mapping::{InputPlacement, ResolvedMapping};
use crate::search::{evaluate_candidate_ref, CandidateEval, FigureOfMerit, MappingCandidate};

/// One pre-resolved non-DRAM input read of a node.
#[derive(Debug, Clone, Copy)]
struct InputRead {
    /// Home PE for [`InputPlacement::Local`]; ignored for `AtUse`.
    home: (i64, i64),
    /// `AtUse` read: always a local tile access, wherever the consumer
    /// sits.
    at_use: bool,
}

/// Shared, placement-independent evaluation state for one
/// (graph, machine, evaluator) triple. Build once per tune (or per
/// `Evaluator::evaluate` call), reuse across every candidate.
#[derive(Debug, Clone)]
pub struct EvalContext {
    /// CSR consumer lists: node `id`'s consumers are
    /// `cons_data[cons_off[id]..cons_off[id+1]]`, ascending — the same
    /// order `DataflowGraph::consumers` produces.
    cons_off: Vec<u32>,
    cons_data: Vec<NodeId>,
    /// Per-node placement-independent cost prefix: expression ops, the
    /// result tile write, and one tile access per operand — exactly
    /// the charges `node_cost` makes before it looks at any place.
    base: Vec<NodeCost>,
    /// CSR non-DRAM input reads per node, in expression read order
    /// (DRAM reads contribute nothing placement-dependent).
    read_off: Vec<u32>,
    reads: Vec<InputRead>,
    /// Hoisted off-chip totals (pure function of graph + placements).
    off: OffchipTotals,
    /// One tile access, in femtojoules (every such charge is
    /// identical).
    tile_fj: f64,
    width: u64,
    cols: i64,
    rows: i64,
    pe_count: usize,
    multicast: bool,
}

impl EvalContext {
    /// Precompute the shared state for `ev`'s (graph, machine) pair.
    pub fn new(ev: &Evaluator<'_>) -> EvalContext {
        let g = ev.graph();
        let m = ev.machine();
        let be = ev.backend();
        let n = g.len();
        let width = u64::from(g.width_bits);
        let tile_fj = be.tile_access_energy(&m.tech, width).raw();

        // CSR consumers: count, prefix, scatter in id order — the
        // scatter order reproduces `consumers()`'s ascending lists.
        let mut cons_off = vec![0u32; n + 1];
        for node in &g.nodes {
            for &d in &node.deps {
                cons_off[d as usize + 1] += 1;
            }
        }
        for i in 0..n {
            cons_off[i + 1] += cons_off[i];
        }
        let mut cursor: Vec<u32> = cons_off[..n].to_vec();
        let mut cons_data = vec![0 as NodeId; cons_off[n] as usize];
        for (id, node) in g.nodes.iter().enumerate() {
            for &d in &node.deps {
                let slot = &mut cursor[d as usize];
                cons_data[*slot as usize] = id as NodeId;
                *slot += 1;
            }
        }

        // Placement-independent cost prefix + pre-resolved input reads.
        let mut base = Vec::with_capacity(n);
        let mut read_off = vec![0u32; n + 1];
        let mut reads = Vec::new();
        for (id, node) in g.nodes.iter().enumerate() {
            let mut c = NodeCost::default();
            let compute = |e: f64, c: &mut NodeCost| {
                c.compute_fj += e;
                c.compute_ops += 1;
            };
            for op in node.expr.op_kinds(g.width_bits) {
                compute(be.op_energy(&m.tech, op).raw(), &mut c);
            }
            compute(tile_fj, &mut c);
            for _ in &node.deps {
                compute(tile_fj, &mut c);
            }
            base.push(c);

            for (input, flat) in node.expr.input_reads() {
                match ev.input_placement(input as usize) {
                    InputPlacement::Dram => {}
                    InputPlacement::Local(pexpr) => {
                        let spec = &g.inputs[input as usize];
                        let idx = crate::cost::unflatten(spec, flat);
                        reads.push(InputRead {
                            home: pexpr.eval(&idx, m.cols),
                            at_use: false,
                        });
                    }
                    InputPlacement::AtUse => {
                        reads.push(InputRead {
                            home: (0, 0),
                            at_use: true,
                        });
                    }
                }
            }
            read_off[id + 1] = reads.len() as u32;
        }

        EvalContext {
            cons_off,
            cons_data,
            base,
            read_off,
            reads,
            off: ev.offchip_totals(),
            tile_fj,
            width,
            cols: i64::from(m.cols),
            rows: i64::from(m.rows),
            pe_count: m.cols as usize * m.rows as usize,
            multicast: ev.multicast_on(),
        }
    }

    /// Node `id`'s consumers, ascending (CSR view of
    /// `DataflowGraph::consumers`).
    pub(crate) fn consumers(&self, id: usize) -> &[NodeId] {
        &self.cons_data[self.cons_off[id] as usize..self.cons_off[id + 1] as usize]
    }

    /// The hoisted off-chip totals.
    pub(crate) fn offchip(&self) -> OffchipTotals {
        self.off
    }

    /// Dense PE id for an on-grid place; `None` off grid.
    #[inline]
    fn intern(&self, p: (i64, i64)) -> Option<u32> {
        if p.0 >= 0 && p.1 >= 0 && p.0 < self.cols && p.1 < self.rows {
            Some((p.1 * self.cols + p.0) as u32)
        } else {
            None
        }
    }

    /// Node `id`'s full cost under `place`: the precomputed prefix plus
    /// the placement-dependent input reads and def→use messages,
    /// charged in exactly the reference `node_cost` order so the f64
    /// accumulation is bit-identical.
    pub(crate) fn node_cost(
        &self,
        ev: &Evaluator<'_>,
        id: usize,
        place: &[(i64, i64)],
        pes: &mut Vec<(i64, i64)>,
        dests: &mut Vec<(u32, u32)>,
    ) -> NodeCost {
        let m = ev.machine();
        let be = ev.backend();
        let width = self.width;
        let mut c = self.base[id];
        let cons = place[id];
        let onchip = |mm: f64, fj: f64, c: &mut NodeCost| {
            c.onchip_fj += fj;
            c.onchip_messages += 1;
            c.onchip_bits += width;
            c.onchip_bit_mm += width as f64 * mm;
        };

        for r in &self.reads[self.read_off[id] as usize..self.read_off[id + 1] as usize] {
            if r.at_use || r.home == cons {
                c.compute_fj += self.tile_fj;
                c.compute_ops += 1;
            } else {
                let a = (r.home.0 as u32, r.home.1 as u32);
                let b = (cons.0 as u32, cons.1 as u32);
                let e = be.wire_energy(&m.tech, width, m.tech.chip.manhattan(a, b));
                onchip(m.distance_mm(a, b), e.raw(), &mut c);
            }
        }

        let prod = cons;
        pes.clear();
        pes.extend(
            self.consumers(id)
                .iter()
                .map(|&cn| place[cn as usize])
                .filter(|&p| p != prod),
        );
        pes.sort_unstable();
        pes.dedup();
        let a = (prod.0 as u32, prod.1 as u32);
        if self.multicast {
            if !pes.is_empty() {
                dests.clear();
                dests.extend(pes.iter().map(|p| (p.0 as u32, p.1 as u32)));
                let (mm, _links) = m.multicast_route(a, dests);
                let e = be.wire_energy(&m.tech, width, fm_costmodel::Millimeters::new(mm));
                onchip(mm, e.raw(), &mut c);
            }
        } else {
            for &pe in pes.iter() {
                let b = (pe.0 as u32, pe.1 as u32);
                let e = be.wire_energy(&m.tech, width, m.tech.chip.manhattan(a, b));
                onchip(m.distance_mm(a, b), e.raw(), &mut c);
            }
        }
        c
    }

    /// Flat cost evaluation of an (assumed-legal) resolved mapping:
    /// the same report `Evaluator::evaluate_ref` assembles, computed
    /// through dense arrays and the scratch arena. `None` when any
    /// place is off grid (caller falls back to the reference path).
    pub(crate) fn evaluate_report(
        &self,
        ev: &Evaluator<'_>,
        place: &[(i64, i64)],
        time: &[i64],
        scratch: &mut EvalScratch,
    ) -> Option<CostReport> {
        let buf = &mut scratch.buf;
        if !self.intern_places(place, buf) {
            return None;
        }
        let cycles = makespan_of(time);
        let sweep = self.sweep_tiles(ev.graph(), ev.machine(), time, cycles, buf);
        let total = self.fold_costs(ev, place, buf);
        Some(ev.assemble(total, &self.off, cycles, sweep.peak, sweep.pes_used))
    }

    /// Intern every place into `buf.node_pe`; false if any is off
    /// grid.
    fn intern_places(&self, place: &[(i64, i64)], buf: &mut ScratchBuf) -> bool {
        buf.node_pe.clear();
        for &p in place {
            match self.intern(p) {
                Some(pe) => buf.node_pe.push(pe),
                None => return false,
            }
        }
        true
    }

    /// Per-node costs → SoA tree → tree-shaped total.
    fn fold_costs(
        &self,
        ev: &Evaluator<'_>,
        place: &[(i64, i64)],
        buf: &mut ScratchBuf,
    ) -> NodeCost {
        let n = place.len();
        buf.tree.reset(n);
        for id in 0..n {
            let c = self.node_cost(ev, id, place, &mut buf.pes, &mut buf.dests);
            buf.tree.set_leaf(id, c);
        }
        buf.tree.refresh();
        buf.tree.total()
    }

    /// The flat tile sweep: last-use relaxation, per-PE event scatter,
    /// in-place slice sorts and the live/peak sweep — the exact event
    /// multiset `legality::tile_peaks` sorts, minus the `HashMap`.
    /// Returns storage violations, the global peak, and the number of
    /// occupied PEs. Requires `buf.node_pe` to be filled.
    fn sweep_tiles(
        &self,
        g: &DataflowGraph,
        machine: &MachineConfig,
        time: &[i64],
        makespan: i64,
        buf: &mut ScratchBuf,
    ) -> TileSweep {
        let n = time.len();
        // Last use: own cycle, relaxed over consumers, outputs pinned
        // to the makespan.
        buf.last_use.clear();
        buf.last_use.extend_from_slice(time);
        for (node, &t) in g.nodes.iter().zip(time) {
            for &d in &node.deps {
                if t > buf.last_use[d as usize] {
                    buf.last_use[d as usize] = t;
                }
            }
        }
        for (id, node) in g.nodes.iter().enumerate() {
            if node.output {
                buf.last_use[id] = makespan;
            }
        }

        // Counting scatter: two events per node, grouped by PE.
        buf.pe_off.clear();
        buf.pe_off.resize(self.pe_count + 1, 0);
        for &pe in &buf.node_pe {
            buf.pe_off[pe as usize + 1] += 2;
        }
        for i in 0..self.pe_count {
            let prev = buf.pe_off[i];
            buf.pe_off[i + 1] += prev;
        }
        buf.events.clear();
        buf.events.resize(2 * n, (0, 0));
        buf.pe_cursor.clear();
        for i in 0..self.pe_count {
            let off = buf.pe_off[i];
            buf.pe_cursor.push(off);
        }
        for (id, &start) in time.iter().enumerate().take(n) {
            let pe = buf.node_pe[id] as usize;
            let at = buf.pe_cursor[pe] as usize;
            buf.events[at] = (start, 1);
            buf.events[at + 1] = (buf.last_use[id] + 1, -1);
            buf.pe_cursor[pe] += 2;
        }

        // Per-PE sort + sweep.
        let width = self.width;
        let mut sweep = TileSweep::default();
        for pe in 0..self.pe_count {
            let lo = buf.pe_off[pe] as usize;
            let hi = buf.pe_off[pe + 1] as usize;
            if lo == hi {
                continue;
            }
            let ev = &mut buf.events[lo..hi];
            ev.sort_unstable();
            let mut live: i64 = 0;
            let mut peak: i64 = 0;
            for &(_, delta) in ev.iter() {
                live += delta;
                peak = peak.max(live);
            }
            let peak_bits = peak as u64 * width;
            sweep.pes_used += 1;
            sweep.peak = sweep.peak.max(peak_bits);
            if peak_bits > machine.tile_bits {
                sweep.storage_violations += 1;
            }
        }
        sweep
    }

    /// The flat legality check over interned places: bit-identical
    /// violation totals to `legality::check` for on-grid mappings
    /// (callers fall back to `check` when interning fails, which the
    /// bounds rule makes illegal anyway). Requires `buf.node_pe`.
    fn violation_total(
        &self,
        g: &DataflowGraph,
        machine: &MachineConfig,
        time: &[i64],
        sweep: &TileSweep,
        buf: &mut ScratchBuf,
    ) -> u64 {
        let mut total: u64 = 0;

        // 1. Bounds: places are on-grid by interning; negative times
        // still count.
        for &t in time {
            if t < 0 {
                total += 1;
            }
        }

        // 2. Causality (never skipped here: no out-of-bounds places).
        for (id, node) in g.nodes.iter().enumerate() {
            let cons_pe = self.coords(buf.node_pe[id]);
            for &d in &node.deps {
                let prod_pe = self.coords(buf.node_pe[d as usize]);
                let required = machine.required_gap(prod_pe, cons_pe);
                if time[id] - time[d as usize] < required {
                    total += 1;
                }
            }
        }

        // 3. Issue width: one violation per (PE, cycle) cell over the
        // limit.
        let ScratchBuf { issue, node_pe, .. } = buf;
        issue.clear();
        issue.extend(node_pe.iter().zip(time).map(|(&pe, &t)| (pe, t)));
        issue.sort_unstable();
        let mut i = 0;
        while i < issue.len() {
            let mut j = i + 1;
            while j < issue.len() && issue[j] == issue[i] {
                j += 1;
            }
            if (j - i) as u32 > machine.issue_width {
                total += 1;
            }
            i = j;
        }

        // 4. Storage: counted by the tile sweep.
        total + sweep.storage_violations
    }

    fn coords(&self, pe: u32) -> (u32, u32) {
        let pe = pe as i64;
        ((pe % self.cols) as u32, (pe / self.cols) as u32)
    }
}

/// What one tile sweep learned.
#[derive(Debug, Default, Clone, Copy)]
struct TileSweep {
    storage_violations: u64,
    peak: u64,
    pes_used: usize,
}

/// The makespan of a time assignment (latest cycle + 1).
fn makespan_of(time: &[i64]) -> i64 {
    time.iter().copied().max().map_or(0, |t| t + 1)
}

/// A reusable arena holding every buffer one candidate evaluation
/// needs. Check one out per worker thread ([`with_thread_scratch`]) or
/// own one (`WarmCache` does); buffers are cleared between uses and
/// never shrink, so steady-state evaluation allocates nothing.
#[derive(Debug, Default)]
pub struct EvalScratch {
    /// Resolved places (the scratch the mapping resolves into).
    pub(crate) place: Vec<(i64, i64)>,
    /// Resolved times.
    pub(crate) time: Vec<i64>,
    /// Everything else (split out so place/time can be borrowed
    /// alongside the working buffers).
    pub(crate) buf: ScratchBuf,
}

/// The working buffers of an [`EvalScratch`], separate from the
/// resolved place/time vectors so the borrow checker can see the two
/// halves are disjoint.
#[derive(Debug, Default)]
pub struct ScratchBuf {
    /// Distinct remote consumer PEs of the node being costed.
    pub(crate) pes: Vec<(i64, i64)>,
    /// Multicast destination list (what-if path only).
    dests: Vec<(u32, u32)>,
    /// Interned PE id per node.
    node_pe: Vec<u32>,
    /// Per-PE event offsets (counting-sort prefix) and cursors.
    pe_off: Vec<u32>,
    pe_cursor: Vec<u32>,
    /// Live-interval endpoints, grouped per PE.
    events: Vec<(i64, i64)>,
    /// Last-use cycle per node.
    last_use: Vec<i64>,
    /// (PE, cycle) pairs for the issue-width check.
    issue: Vec<(u32, i64)>,
    /// The SoA cost tree this evaluation folds through.
    tree: CostTree,
}

impl EvalScratch {
    /// A fresh, empty arena.
    pub fn new() -> EvalScratch {
        EvalScratch::default()
    }
}

thread_local! {
    static THREAD_SCRATCH: RefCell<EvalScratch> = RefCell::new(EvalScratch::new());
}

/// Run `f` with this thread's persistent [`EvalScratch`]. Each worker
/// thread keeps one arena alive across candidates, which is what makes
/// the tuner's steady state allocation-free. Re-entrant calls (debug
/// parity asserts evaluating inside an outer evaluation) get a
/// temporary arena instead of deadlocking on the `RefCell`.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut EvalScratch) -> R) -> R {
    THREAD_SCRATCH.with(|s| match s.try_borrow_mut() {
        Ok(mut guard) => f(&mut guard),
        Err(_) => f(&mut EvalScratch::new()),
    })
}

/// A flat evaluation of one candidate, before any result is
/// materialized: everything the tuner's ranking needs, in registers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RawEval {
    /// Legal: the figure-of-merit score plus the report aggregates
    /// benches read.
    Legal {
        /// Scalar score (lower is better) — bit-identical to scoring
        /// the assembled report.
        score: f64,
        /// Makespan in cycles.
        cycles: i64,
        /// Total energy in femtojoules.
        energy_fj: f64,
        /// Peak live bits in any one tile.
        peak_tile_bits: u64,
    },
    /// Illegal, with the exact violation total `legality::check`
    /// reports.
    Illegal(u64),
    /// The mapping does not resolve against the graph.
    Unresolvable,
}

/// Batched candidate evaluation: one [`EvalContext`] shared across a
/// candidate list, per-candidate work done entirely in scratch. This
/// is what `Tuner::tune` fans out over its thread pool — the context
/// hoists the parse/lower/consumer work the reference path redid per
/// candidate.
#[derive(Debug)]
pub struct BatchEvaluator<'a> {
    ev: &'a Evaluator<'a>,
    graph: &'a DataflowGraph,
    machine: &'a MachineConfig,
    fom: FigureOfMerit,
    ctx: EvalContext,
}

impl<'a> BatchEvaluator<'a> {
    /// Precompute the shared context. `graph`/`machine` must be the
    /// evaluator's own (the same contract `evaluate_candidate` has).
    pub fn new(
        ev: &'a Evaluator<'a>,
        graph: &'a DataflowGraph,
        machine: &'a MachineConfig,
        fom: FigureOfMerit,
    ) -> Self {
        BatchEvaluator {
            ev,
            graph,
            machine,
            fom,
            ctx: EvalContext::new(ev),
        }
    }

    /// The shared context (the incremental engine reuses it).
    pub fn context(&self) -> &EvalContext {
        &self.ctx
    }

    /// Evaluate one candidate with this thread's scratch arena.
    /// Bit-identical to `search::evaluate_candidate` (debug-asserted).
    pub fn evaluate_candidate(&self, candidate: &MappingCandidate) -> CandidateEval {
        with_thread_scratch(|scratch| self.evaluate_candidate_in(candidate, scratch))
    }

    /// [`Self::evaluate_candidate`] with an explicit scratch arena.
    pub fn evaluate_candidate_in(
        &self,
        candidate: &MappingCandidate,
        scratch: &mut EvalScratch,
    ) -> CandidateEval {
        let eval = match self.evaluate_raw_in(candidate, scratch) {
            RawEval::Unresolvable => CandidateEval::Unresolvable,
            RawEval::Illegal(total) => CandidateEval::Illegal(total),
            RawEval::Legal { .. } => {
                // Materialize the full result: the cost parts are
                // still in scratch, so re-assemble with the real name
                // and clone the resolved mapping out of the arena.
                let EvalScratch { place, time, buf } = scratch;
                let cycles = makespan_of(time);
                let sweep = self
                    .ctx
                    .sweep_tiles(self.graph, self.machine, time, cycles, buf);
                let total = self.ctx.fold_costs(self.ev, place, buf);
                let report =
                    self.ev
                        .assemble(total, &self.ctx.off, cycles, sweep.peak, sweep.pes_used);
                let score = self.ev.score(self.fom, &report);
                CandidateEval::Legal {
                    resolved: ResolvedMapping {
                        place: scratch.place.clone(),
                        time: scratch.time.clone(),
                    },
                    report,
                    score,
                }
            }
        };
        debug_assert_eq!(
            eval,
            evaluate_candidate_ref(self.ev, self.graph, self.machine, candidate, self.fom),
            "flat candidate evaluation diverged from the reference path"
        );
        eval
    }

    /// The allocation-free core: resolve into scratch, flat legality,
    /// flat cost, score — nothing heap-allocated in steady state (the
    /// report is assembled with an empty name; all other fields are
    /// plain values). On success `scratch.place`/`scratch.time` hold
    /// the resolved mapping.
    pub fn evaluate_raw_in(
        &self,
        candidate: &MappingCandidate,
        scratch: &mut EvalScratch,
    ) -> RawEval {
        if candidate
            .mapping
            .resolve_into(
                self.graph,
                self.machine,
                &mut scratch.place,
                &mut scratch.time,
            )
            .is_err()
        {
            return RawEval::Unresolvable;
        }
        let EvalScratch { place, time, buf } = scratch;
        if !self.ctx.intern_places(place, buf) {
            // Off-grid place: illegal by the bounds rule. Fall back to
            // the reference checker for the exact violation total
            // (this path is never the steady state).
            let rm = ResolvedMapping {
                place: place.clone(),
                time: time.clone(),
            };
            return RawEval::Illegal(check(self.graph, &rm, self.machine).total_violations);
        }
        let cycles = makespan_of(time);
        let sweep = self
            .ctx
            .sweep_tiles(self.graph, self.machine, time, cycles, buf);
        let total_violations =
            self.ctx
                .violation_total(self.graph, self.machine, time, &sweep, buf);
        if total_violations > 0 {
            return RawEval::Illegal(total_violations);
        }
        let total = self.ctx.fold_costs(self.ev, place, buf);
        let report = self.ev.assemble_with_name(
            String::new(),
            total,
            &self.ctx.off,
            cycles,
            sweep.peak,
            sweep.pes_used,
        );
        RawEval::Legal {
            score: self.ev.score(self.fom, &report),
            cycles,
            energy_fj: report.energy().raw(),
            peak_tile_bits: report.peak_tile_bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::CExpr;
    use crate::mapping::Mapping;
    use crate::search::evaluate_candidate;
    use crate::value::Value;

    fn chain(n: usize) -> DataflowGraph {
        let mut g = DataflowGraph::new("chain", 32);
        let mut prev = None;
        for i in 0..n {
            let id = match prev {
                None => g.add_node(CExpr::konst(Value::real(1.0)), vec![], vec![i as i64]),
                Some(p) => g.add_node(
                    CExpr::dep(0).add(CExpr::konst(Value::real(2.0))),
                    vec![p],
                    vec![i as i64],
                ),
            };
            prev = Some(id);
        }
        g.mark_output(prev.unwrap());
        g
    }

    #[test]
    fn flat_matches_reference_on_legal_candidates() {
        let g = chain(12);
        let m = MachineConfig::linear(4);
        let ev = Evaluator::new(&g, &m);
        let cand = MappingCandidate::new("serial", Mapping::serial(&g));
        let batch = BatchEvaluator::new(&ev, &g, &m, FigureOfMerit::Edp);
        let flat = batch.evaluate_candidate(&cand);
        let reference = evaluate_candidate(&ev, &g, &m, &cand, FigureOfMerit::Edp);
        assert_eq!(flat, reference);
    }

    #[test]
    fn flat_matches_reference_on_illegal_candidates() {
        let g = chain(6);
        let m = MachineConfig::linear(4);
        let ev = Evaluator::new(&g, &m);
        // Everything at cycle 0 on one PE: causality + issue width
        // violations.
        let rm = ResolvedMapping {
            place: vec![(0, 0); 6],
            time: vec![0; 6],
        };
        let cand = MappingCandidate::new("bad", Mapping::Table(rm));
        let batch = BatchEvaluator::new(&ev, &g, &m, FigureOfMerit::Time);
        let flat = batch.evaluate_candidate(&cand);
        let reference = evaluate_candidate(&ev, &g, &m, &cand, FigureOfMerit::Time);
        assert_eq!(flat, reference);
    }

    #[test]
    fn off_grid_candidate_falls_back_with_exact_total() {
        let g = chain(3);
        let m = MachineConfig::linear(2);
        let ev = Evaluator::new(&g, &m);
        let rm = ResolvedMapping {
            place: vec![(-1, 0), (5, 0), (0, 0)],
            time: vec![0, 1, 2],
        };
        let cand = MappingCandidate::new("oob", Mapping::Table(rm));
        let batch = BatchEvaluator::new(&ev, &g, &m, FigureOfMerit::Time);
        let flat = batch.evaluate_candidate(&cand);
        let reference = evaluate_candidate(&ev, &g, &m, &cand, FigureOfMerit::Time);
        assert_eq!(flat, reference);
    }

    #[test]
    fn raw_eval_scores_match_full_eval() {
        let g = chain(9);
        let m = MachineConfig::linear(4);
        let ev = Evaluator::new(&g, &m);
        let cand = MappingCandidate::new("serial", Mapping::serial(&g));
        let batch = BatchEvaluator::new(&ev, &g, &m, FigureOfMerit::Edp);
        let mut scratch = EvalScratch::new();
        let raw = batch.evaluate_raw_in(&cand, &mut scratch);
        let full = batch.evaluate_candidate(&cand);
        match (raw, full) {
            (
                RawEval::Legal { score, cycles, .. },
                CandidateEval::Legal {
                    report, score: s, ..
                },
            ) => {
                assert_eq!(score.to_bits(), s.to_bits());
                assert_eq!(cycles, report.cycles);
            }
            other => panic!("expected legal/legal, got {other:?}"),
        }
    }
}
