//! Completion latches.
//!
//! A latch is set exactly once, when a job finishes. Worker threads
//! waiting on a latch keep stealing (the scheduler must stay greedy —
//! that is where the `W/P + S` bound comes from), so the in-pool latch
//! is a plain atomic flag that the join loop polls between stolen jobs.
//! External threads block on a mutex/condvar latch instead.

use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::{Condvar, Mutex};

/// Anything a job can signal completion through.
pub(crate) trait Latch {
    /// Signal completion. Called exactly once.
    fn set(&self);
}

/// Polled by worker threads between steal attempts.
#[derive(Debug, Default)]
pub(crate) struct SpinLatch {
    done: AtomicBool,
}

impl SpinLatch {
    pub(crate) fn new() -> Self {
        SpinLatch {
            done: AtomicBool::new(false),
        }
    }

    /// Has the latch been set?
    #[inline]
    pub(crate) fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

impl Latch for SpinLatch {
    #[inline]
    fn set(&self) {
        self.done.store(true, Ordering::Release);
    }
}

/// Blocks an external (non-worker) thread until set.
#[derive(Debug, Default)]
pub(crate) struct LockLatch {
    state: Mutex<bool>,
    cv: Condvar,
}

impl LockLatch {
    pub(crate) fn new() -> Self {
        LockLatch {
            state: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Block until set.
    pub(crate) fn wait(&self) {
        let mut done = self.state.lock();
        while !*done {
            self.cv.wait(&mut done);
        }
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        let mut done = self.state.lock();
        *done = true;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spin_latch_set_probe() {
        let l = SpinLatch::new();
        assert!(!l.probe());
        l.set();
        assert!(l.probe());
    }

    #[test]
    fn lock_latch_wakes_waiter() {
        let l = Arc::new(LockLatch::new());
        let l2 = Arc::clone(&l);
        let h = std::thread::spawn(move || {
            l2.wait();
            42
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        l.set();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn lock_latch_wait_after_set_returns_immediately() {
        let l = LockLatch::new();
        l.set();
        l.wait();
    }
}
