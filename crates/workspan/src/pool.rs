//! The work-stealing thread pool.
//!
//! Structure (the same shape as rayon-core, built here from scratch on
//! crossbeam-deque):
//!
//! * each worker owns a LIFO Chase-Lev deque; everyone else holds its
//!   `Stealer` (FIFO end) — LIFO execution keeps the working set warm,
//!   FIFO stealing takes the oldest (biggest) subtree, the classic
//!   work-first policy;
//! * a global `Injector` receives jobs from non-worker threads;
//! * [`ThreadPool::join`] pushes the second closure as a
//!   stack-allocated job, runs the first inline, then *pops it back* if
//!   nobody stole it (the overwhelmingly common case: no allocation, no
//!   synchronization beyond the deque) — otherwise it keeps executing
//!   other people's work until the thief finishes (greedy scheduling,
//!   which is what makes `T_P ≤ W/P + S` hold);
//! * panics inside either closure are captured and re-thrown at the
//!   join point, after both sides have been resolved.
//!
//! Idle workers park on a condvar with a 500 µs timeout: a missed
//! wakeup costs at most half a millisecond, in exchange for a sleep
//! protocol simple enough to convince yourself it cannot deadlock.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::ptr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam_deque::{Injector, Steal, Stealer, Worker as Deque};
use parking_lot::{Condvar, Mutex};

use crate::job::{HeapJob, JobRef, StackJob};
use crate::latch::{LockLatch, SpinLatch};

thread_local! {
    static WORKER: Cell<*const WorkerThread> = const { Cell::new(ptr::null()) };
}

struct Shared {
    injector: Injector<JobRef>,
    stealers: Vec<Stealer<JobRef>>,
    sleep_mutex: Mutex<()>,
    sleep_cv: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn notify_all(&self) {
        let _g = self.sleep_mutex.lock();
        self.sleep_cv.notify_all();
    }

    fn notify_one(&self) {
        let _g = self.sleep_mutex.lock();
        self.sleep_cv.notify_one();
    }
}

struct WorkerThread {
    shared: Arc<Shared>,
    local: Deque<JobRef>,
    index: usize,
}

impl WorkerThread {
    /// The worker running on this thread, or null.
    fn current() -> *const WorkerThread {
        WORKER.with(|c| c.get())
    }

    /// Steal from the injector, then from siblings (starting after our
    /// own index so victims differ across workers).
    fn find_work(&self) -> Option<JobRef> {
        loop {
            match self.shared.injector.steal() {
                Steal::Success(j) => return Some(j),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
        let n = self.shared.stealers.len();
        for k in 1..n {
            let i = (self.index + k) % n;
            loop {
                match self.shared.stealers[i].steal() {
                    Steal::Success(j) => return Some(j),
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
        None
    }
}

/// A work-stealing fork-join thread pool.
///
/// ```
/// use fm_workspan::ThreadPool;
///
/// let pool = ThreadPool::with_threads(4);
/// fn fib(pool: &ThreadPool, n: u64) -> u64 {
///     if n < 2 { return n; }
///     let (a, b) = pool.join(|| fib(pool, n - 1), || fib(pool, n - 2));
///     a + b
/// }
/// assert_eq!(pool.run(|| fib(&pool, 16)), 987);
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// A pool with one worker per available core.
    pub fn new() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::with_threads(n)
    }

    /// A pool with exactly `threads` workers (≥ 1).
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads >= 1, "a pool needs at least one worker");
        let deques: Vec<Deque<JobRef>> = (0..threads).map(|_| Deque::new_lifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            sleep_mutex: Mutex::new(()),
            sleep_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = deques
            .into_iter()
            .enumerate()
            .map(|(index, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fm-workspan-{index}"))
                    .spawn(move || worker_main(shared, local, index))
                    .expect("spawn worker")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.shared.stealers.len()
    }

    /// Whether the calling thread is one of this pool's workers.
    fn on_this_pool(&self) -> bool {
        let wt = WorkerThread::current();
        !wt.is_null() && Arc::ptr_eq(unsafe { &(*wt).shared }, &self.shared)
    }

    /// Run `f` inside the pool, blocking until it completes. If already
    /// on a worker of this pool, runs inline.
    pub fn run<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        if self.on_this_pool() {
            return f();
        }
        let job = StackJob::new(LockLatch::new(), f);
        // Safety: we block on the latch below, so the stack frame (and
        // the job in it) outlives execution.
        let job_ref = unsafe { job.as_job_ref() };
        self.shared.injector.push(job_ref);
        self.shared.notify_all();
        job.latch.wait();
        unsafe { job.take_result() }
    }

    /// Fire-and-forget: run `f` on some worker, eventually. The closure
    /// must be `'static` (it outlives the caller's frame); panics inside
    /// it abort that job only. Use [`ThreadPool::run`]/[`ThreadPool::join`]
    /// for structured parallelism — `spawn` exists for daemon-style work
    /// (tracing, background accounting).
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        let job = HeapJob::new(f);
        self.shared.injector.push(job.into_job_ref());
        self.shared.notify_all();
    }

    /// Execute `a` and `b`, potentially in parallel, returning both
    /// results. Panics in either closure propagate after both sides
    /// have resolved.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        let wt = WorkerThread::current();
        if wt.is_null() || !Arc::ptr_eq(unsafe { &(*wt).shared }, &self.shared) {
            // Enter the pool first, then join on a worker.
            return self.run(|| self.join(a, b));
        }
        // Safety: wt points at the current thread's WorkerThread, which
        // lives for the whole worker_main frame enclosing this call.
        let wt = unsafe { &*wt };
        join_on_worker(wt, a, b)
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn join_on_worker<A, B, RA, RB>(wt: &WorkerThread, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(SpinLatch::new(), b);
    // Safety: this frame does not return until job_b's latch is set
    // (the resolve loop below), so the stack job outlives execution.
    let ref_b = unsafe { job_b.as_job_ref() };
    wt.local.push(ref_b);
    wt.shared.notify_one();

    let status_a = panic::catch_unwind(AssertUnwindSafe(a));

    // Resolve b: pop it back (fast path), or execute other work until
    // the thief sets the latch (greedy scheduling).
    while !job_b.latch.probe() {
        match wt.local.pop() {
            Some(j) => {
                // LIFO discipline: any job above b on our deque is a
                // descendant pushed by `a`; execute it. If it *is* b,
                // the execute sets the latch and the loop exits.
                unsafe { j.execute() };
                if j.id() == ref_b.id() {
                    break;
                }
            }
            None => match wt.find_work() {
                Some(j) => unsafe { j.execute() },
                None => std::thread::yield_now(),
            },
        }
    }

    let rb = unsafe { job_b.take_result() }; // re-throws b's panic
    match status_a {
        Ok(ra) => (ra, rb),
        Err(p) => panic::resume_unwind(p),
    }
}

fn worker_main(shared: Arc<Shared>, local: Deque<JobRef>, index: usize) {
    let wt = WorkerThread {
        shared,
        local,
        index,
    };
    WORKER.with(|c| c.set(&wt as *const WorkerThread));
    loop {
        let job = wt.local.pop().or_else(|| wt.find_work());
        match job {
            Some(j) => unsafe { j.execute() },
            None => {
                if wt.shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let mut g = wt.shared.sleep_mutex.lock();
                wt.shared
                    .sleep_cv
                    .wait_for(&mut g, Duration::from_micros(500));
            }
        }
    }
    WORKER.with(|c| c.set(ptr::null()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn fib(pool: &ThreadPool, n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = pool.join(|| fib(pool, n - 1), || fib(pool, n - 2));
        a + b
    }

    #[test]
    fn join_computes_fib() {
        let pool = ThreadPool::with_threads(4);
        assert_eq!(pool.run(|| fib(&pool, 20)), 6765);
    }

    #[test]
    fn join_from_external_thread_enters_pool() {
        let pool = ThreadPool::with_threads(2);
        // join called directly (not via run) still works.
        let (a, b) = pool.join(|| 1 + 1, || 2 + 2);
        assert_eq!((a, b), (2, 4));
    }

    #[test]
    fn single_thread_pool_is_correct() {
        let pool = ThreadPool::with_threads(1);
        assert_eq!(pool.run(|| fib(&pool, 15)), 610);
    }

    #[test]
    fn deep_nesting_does_not_deadlock() {
        let pool = ThreadPool::with_threads(2);
        fn deep(pool: &ThreadPool, d: u32) -> u32 {
            if d == 0 {
                return 0;
            }
            let (a, _) = pool.join(|| deep(pool, d - 1), || ());
            a + 1
        }
        assert_eq!(pool.run(|| deep(&pool, 500)), 500);
    }

    #[test]
    fn parallel_speedup_visible_in_scheduling() {
        // Not a wall-clock assertion (CI noise) — just verifies many
        // concurrent joins all complete with correct results.
        let pool = ThreadPool::with_threads(8);
        let counter = AtomicUsize::new(0);
        pool.run(|| {
            fn go(pool: &ThreadPool, c: &AtomicUsize, n: usize) {
                if n == 0 {
                    c.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                pool.join(|| go(pool, c, n - 1), || go(pool, c, n - 1));
            }
            go(&pool, &counter, 12);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1 << 12);
    }

    #[test]
    fn panic_in_a_propagates_after_b_completes() {
        let pool = ThreadPool::with_threads(4);
        let b_ran = AtomicUsize::new(0);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|| {
                pool.join(
                    || panic!("a failed"),
                    || {
                        b_ran.fetch_add(1, Ordering::SeqCst);
                    },
                )
            })
        }));
        assert!(result.is_err());
        assert_eq!(b_ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn panic_in_b_propagates() {
        let pool = ThreadPool::with_threads(4);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|| pool.join(|| 1, || -> u32 { panic!("b failed") }))
        }));
        assert!(result.is_err());
    }

    #[test]
    fn run_returns_value_from_external_thread() {
        let pool = ThreadPool::with_threads(3);
        let v = pool.run(|| (0..100).sum::<u64>());
        assert_eq!(v, 4950);
    }

    #[test]
    fn quicksort_stress() {
        let pool = ThreadPool::with_threads(8);
        fn quicksort(pool: &ThreadPool, v: &mut [u64]) {
            if v.len() <= 32 {
                v.sort_unstable();
                return;
            }
            let pivot = v[v.len() / 2];
            // Three-way partition.
            let (mut lt, mut i, mut gt) = (0usize, 0usize, v.len());
            while i < gt {
                match v[i].cmp(&pivot) {
                    std::cmp::Ordering::Less => {
                        v.swap(lt, i);
                        lt += 1;
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        gt -= 1;
                        v.swap(i, gt);
                    }
                    std::cmp::Ordering::Equal => i += 1,
                }
            }
            let (lo, rest) = v.split_at_mut(lt);
            let (_, hi) = rest.split_at_mut(gt - lt);
            pool.join(|| quicksort(pool, lo), || quicksort(pool, hi));
        }
        // Deterministic pseudo-random data.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut data: Vec<u64> = (0..100_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect();
        let mut expected = data.clone();
        expected.sort_unstable();
        pool.run(|| quicksort(&pool, &mut data));
        assert_eq!(data, expected);
    }

    #[test]
    fn two_pools_do_not_interfere() {
        let p1 = ThreadPool::with_threads(2);
        let p2 = ThreadPool::with_threads(2);
        let (a, b) = (p1.run(|| fib(&p1, 12)), p2.run(|| fib(&p2, 12)));
        assert_eq!(a, 144);
        assert_eq!(b, 144);
    }

    #[test]
    fn spawn_runs_detached_jobs() {
        use std::sync::Arc;
        let pool = ThreadPool::with_threads(2);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let done = Arc::clone(&done);
            pool.spawn(move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Spin until drained (spawn is fire-and-forget; poll).
        for _ in 0..10_000 {
            if done.load(Ordering::SeqCst) == 32 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        assert_eq!(done.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        for _ in 0..10 {
            let pool = ThreadPool::with_threads(4);
            let _ = pool.run(|| fib(&pool, 10));
            drop(pool);
        }
    }
}
