#![warn(missing_docs)]

//! # fm-workspan — fork-join runtime with work-span accounting
//!
//! Blelloch's statement (§2) argues that the bridge model for multicore
//! parallelism should be the **fork-join work-depth (work-span)** model:
//! simple constructs (`join`), a cost model (work `W`, span `S`), and a
//! scheduler that realizes the greedy bound `T_P ≤ W/P + S`, with
//! "reasonably simple extensions that support accounting for locality".
//!
//! This crate builds that stack from scratch (no rayon):
//!
//! * [`pool::ThreadPool`] — a work-stealing scheduler: one Chase-Lev
//!   deque per worker (crossbeam-deque), a global injector, LIFO local
//!   execution with FIFO stealing, rayon-style stack-allocated jobs for
//!   a zero-allocation [`pool::ThreadPool::join`], and panic
//!   propagation across task boundaries.
//! * [`parallel`] — `par_for` / `par_reduce` built on `join` by
//!   recursive splitting with a grain size.
//! * [`workspan`] — the cost algebra: [`workspan::WorkSpan`] composes
//!   sequentially (`work` adds, `span` adds) and in parallel (`work`
//!   adds, `span` maxes), so instrumented kernels can report the exact
//!   `W` and `S` that the greedy bound needs (experiment E6 compares
//!   measured `T_P` against `W/P + S`).
//! * [`cache`] — the one-level **ideal cache model** (fully
//!   associative, LRU, capacity `Z` words in lines of `L` words) that
//!   cache-oblivious analysis assumes; kernels replay their address
//!   streams through it to count misses (experiment E7).

pub mod cache;
pub mod parallel;
pub mod pool;
pub mod workspan;

pub use cache::IdealCache;
pub use parallel::{par_for, par_map, par_map_until, par_map_until_cancel, par_reduce};
pub use pool::ThreadPool;
pub use workspan::WorkSpan;

mod job;
mod latch;
