//! The work-span cost algebra.
//!
//! Work-span (work-depth) analysis assigns every computation two
//! numbers: **work** `W` — total operations — and **span** `S` — the
//! longest chain of dependent operations. They compose:
//!
//! * sequential composition: `W = W₁ + W₂`, `S = S₁ + S₂`;
//! * parallel composition (fork-join): `W = W₁ + W₂`, `S = max(S₁, S₂)`.
//!
//! A greedy scheduler (like [`crate::pool::ThreadPool`]) then satisfies
//! Brent's bound `T_P ≤ W/P + S`. Instrumented kernels thread a
//! [`WorkSpan`] value through their recursion (mirroring their `join`
//! structure) and experiment E6 checks measured wall-clock `T_P`
//! against the bound computed here.

use serde::Serialize;

/// A (work, span) pair in abstract unit operations.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct WorkSpan {
    /// Total operations.
    pub work: f64,
    /// Critical-path operations.
    pub span: f64,
}

impl WorkSpan {
    /// The zero cost.
    pub const ZERO: WorkSpan = WorkSpan {
        work: 0.0,
        span: 0.0,
    };

    /// A leaf computation of `cost` sequential operations.
    pub fn leaf(cost: f64) -> WorkSpan {
        WorkSpan {
            work: cost,
            span: cost,
        }
    }

    /// Sequential composition.
    #[must_use]
    pub fn seq(self, other: WorkSpan) -> WorkSpan {
        WorkSpan {
            work: self.work + other.work,
            span: self.span + other.span,
        }
    }

    /// Parallel (fork-join) composition.
    #[must_use]
    pub fn par(self, other: WorkSpan) -> WorkSpan {
        WorkSpan {
            work: self.work + other.work,
            span: self.span.max(other.span),
        }
    }

    /// Parallel composition of `n` identical branches.
    #[must_use]
    pub fn par_n(self, n: u64) -> WorkSpan {
        WorkSpan {
            work: self.work * n as f64,
            span: self.span,
        }
    }

    /// Brent / greedy-scheduler bound on `p` processors.
    pub fn greedy_bound(&self, p: u64) -> f64 {
        assert!(p > 0, "processor count must be positive");
        self.work / p as f64 + self.span
    }

    /// Parallelism `W/S` — the paper's "minimum-depth parallel" limit on
    /// useful processors.
    pub fn parallelism(&self) -> f64 {
        self.work / self.span
    }
}

/// Fork-join with cost tracking: runs `a` and `b` on the pool and
/// composes their reported costs in parallel.
pub fn join_tracked<A, B, RA, RB>(
    pool: &crate::pool::ThreadPool,
    a: A,
    b: B,
) -> ((RA, RB), WorkSpan)
where
    A: FnOnce() -> (RA, WorkSpan) + Send,
    B: FnOnce() -> (RB, WorkSpan) + Send,
    RA: Send,
    RB: Send,
{
    let ((ra, wa), (rb, wb)) = pool.join(a, b);
    ((ra, rb), wa.par(wb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;

    #[test]
    fn leaf_has_equal_work_span() {
        let l = WorkSpan::leaf(5.0);
        assert_eq!(l.work, 5.0);
        assert_eq!(l.span, 5.0);
    }

    #[test]
    fn seq_adds_both() {
        let c = WorkSpan::leaf(3.0).seq(WorkSpan::leaf(4.0));
        assert_eq!(c.work, 7.0);
        assert_eq!(c.span, 7.0);
    }

    #[test]
    fn par_adds_work_maxes_span() {
        let c = WorkSpan::leaf(3.0).par(WorkSpan::leaf(4.0));
        assert_eq!(c.work, 7.0);
        assert_eq!(c.span, 4.0);
    }

    #[test]
    fn balanced_tree_reduction_costs() {
        // Reduce 2^k leaves: W = 2^k - 1 combines, S = k.
        fn tree(k: u32) -> WorkSpan {
            if k == 0 {
                return WorkSpan::ZERO;
            }
            let sub = tree(k - 1);
            sub.par(sub).seq(WorkSpan::leaf(1.0))
        }
        let c = tree(10);
        assert_eq!(c.work, 1023.0);
        assert_eq!(c.span, 10.0);
        assert!(c.parallelism() > 100.0);
    }

    #[test]
    fn greedy_bound_interpolates() {
        let c = WorkSpan {
            work: 1000.0,
            span: 10.0,
        };
        assert_eq!(c.greedy_bound(1), 1010.0);
        assert_eq!(c.greedy_bound(100), 20.0);
        // Beyond W/S processors the span dominates.
        assert!((c.greedy_bound(1_000_000) - 10.001).abs() < 0.01);
    }

    #[test]
    fn join_tracked_composes() {
        let pool = ThreadPool::with_threads(2);
        let ((ra, rb), ws) = pool.run(|| {
            join_tracked(
                &pool,
                || (21, WorkSpan::leaf(100.0)),
                || (2, WorkSpan::leaf(60.0)),
            )
        });
        assert_eq!(ra * rb, 42);
        assert_eq!(ws.work, 160.0);
        assert_eq!(ws.span, 100.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn greedy_bound_zero_p_rejected() {
        WorkSpan::leaf(1.0).greedy_bound(0);
    }
}
