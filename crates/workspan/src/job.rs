//! Type-erased jobs.
//!
//! The scheduler moves `JobRef`s — a raw data pointer plus an execute
//! function — through the deques. For `join`, the job lives *on the
//! joining thread's stack* ([`StackJob`]): the joiner guarantees it does
//! not return until the job's latch is set, which is what makes the
//! erasure sound. For external submission the closure is boxed
//! ([`HeapJob`]).

use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};

use crate::latch::Latch;

/// A type-erased, sendable reference to a job.
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    data: *const (),
    execute_fn: unsafe fn(*const ()),
}

// Safety: the scheduler only executes each JobRef once, and the
// underlying job types are Send (closures are required to be Send).
unsafe impl Send for JobRef {}

impl JobRef {
    /// The raw identity of the job (used by `join` to recognize its own
    /// pushed job when popping).
    #[inline]
    pub(crate) fn id(&self) -> *const () {
        self.data
    }

    /// Execute the job. Must be called at most once.
    #[inline]
    pub(crate) unsafe fn execute(self) {
        unsafe { (self.execute_fn)(self.data) }
    }
}

/// Result slot of a job: not-yet-run, value, or captured panic.
pub(crate) enum JobResult<R> {
    None,
    Ok(R),
    Panic(Box<dyn Any + Send>),
}

impl<R> JobResult<R> {
    /// Take the value, resuming a captured panic.
    pub(crate) fn into_return_value(self) -> R {
        match self {
            JobResult::None => unreachable!("job not executed"),
            JobResult::Ok(r) => r,
            JobResult::Panic(p) => panic::resume_unwind(p),
        }
    }
}

/// A job whose closure and result live on the joining thread's stack.
pub(crate) struct StackJob<L: Latch, F, R> {
    pub(crate) latch: L,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
}

// Safety: access to func/result is serialized by the latch protocol —
// the executor writes before setting the latch; the owner reads after.
unsafe impl<L: Latch + Sync, F: Send, R: Send> Sync for StackJob<L, F, R> {}

impl<L, F, R> StackJob<L, F, R>
where
    L: Latch,
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(latch: L, f: F) -> Self {
        StackJob {
            latch,
            func: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(JobResult::None),
        }
    }

    /// Erase to a `JobRef`. The caller must keep `self` alive until the
    /// latch is set.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            execute_fn: Self::execute_erased,
        }
    }

    /// Take the result after the latch has been set.
    pub(crate) unsafe fn take_result(&self) -> R {
        let slot = unsafe { &mut *self.result.get() };
        std::mem::replace(slot, JobResult::None).into_return_value()
    }

    unsafe fn execute_erased(ptr: *const ()) {
        let this = unsafe { &*(ptr as *const Self) };
        let func = unsafe { (*this.func.get()).take().expect("job executed twice") };
        let result = match panic::catch_unwind(AssertUnwindSafe(func)) {
            Ok(r) => JobResult::Ok(r),
            Err(p) => JobResult::Panic(p),
        };
        unsafe {
            *this.result.get() = result;
        }
        this.latch.set();
    }
}

/// A heap-allocated fire-and-forget job (external submission).
pub(crate) struct HeapJob {
    func: Box<dyn FnOnce() + Send>,
}

impl HeapJob {
    pub(crate) fn new(f: impl FnOnce() + Send + 'static) -> Box<Self> {
        Box::new(HeapJob { func: Box::new(f) })
    }

    /// Erase to a `JobRef`, transferring ownership; the executor frees
    /// the box.
    pub(crate) fn into_job_ref(self: Box<Self>) -> JobRef {
        let data = Box::into_raw(self) as *const ();
        JobRef {
            data,
            execute_fn: Self::execute_erased,
        }
    }

    unsafe fn execute_erased(ptr: *const ()) {
        let this = unsafe { Box::from_raw(ptr as *mut HeapJob) };
        (this.func)();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latch::SpinLatch;

    #[test]
    fn stack_job_roundtrip() {
        let job = StackJob::new(SpinLatch::new(), || 7 * 6);
        unsafe {
            let r = job.as_job_ref();
            r.execute();
        }
        assert!(job.latch.probe());
        assert_eq!(unsafe { job.take_result() }, 42);
    }

    #[test]
    fn stack_job_captures_panic() {
        let job: StackJob<_, _, ()> = StackJob::new(SpinLatch::new(), || panic!("boom"));
        unsafe {
            job.as_job_ref().execute();
        }
        assert!(job.latch.probe());
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| unsafe { job.take_result() }));
        assert!(caught.is_err());
    }

    #[test]
    fn heap_job_runs_and_frees() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let hit = Arc::new(AtomicBool::new(false));
        let h2 = Arc::clone(&hit);
        let job = HeapJob::new(move || h2.store(true, Ordering::SeqCst));
        unsafe {
            job.into_job_ref().execute();
        }
        assert!(hit.load(Ordering::SeqCst));
    }
}
