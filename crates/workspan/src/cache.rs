//! The one-level ideal cache model.
//!
//! Blelloch (§2): "it is easy to add a one level cache to the RAM
//! model, and hundreds of algorithms have been developed in such a
//! model. When algorithms developed in this model satisfy a property of
//! being cache oblivious, they will also work effectively on a
//! multilevel cache."
//!
//! [`IdealCache`] is that model made executable: a fully associative
//! cache of `Z` words organized in lines of `L` words with LRU
//! replacement (the standard ideal-cache assumptions, within a constant
//! factor of optimal replacement). Kernels replay their address streams
//! through it; experiment E7 compares naive vs. cache-oblivious matmul
//! miss counts across cache sizes and checks the `Θ(n³/(L√Z))` scaling.
//!
//! Blelloch also names "asymmetry in read-write costs" (NVM-style
//! memories) as a simple model extension: [`IdealCache::access_write`]
//! tracks dirty lines, evictions of dirty lines count as *write-backs*,
//! and [`CacheStats::asymmetric_cost`] charges them `ω×` a read miss.

use std::collections::{BTreeMap, HashMap};

use serde::Serialize;

/// Fully associative LRU cache over a word-addressed memory.
///
/// ```
/// use fm_workspan::IdealCache;
///
/// let mut cache = IdealCache::new(1024, 8);
/// cache.access_range(0, 64); // cold scan: one miss per 8-word line
/// assert_eq!(cache.stats().misses, 8);
/// cache.reset_stats();
/// cache.access_range(0, 64); // resident: no misses
/// assert_eq!(cache.stats().misses, 0);
/// ```
#[derive(Debug, Clone)]
pub struct IdealCache {
    /// Capacity in words.
    pub z_words: usize,
    /// Line size in words.
    pub l_words: usize,
    lines: usize,
    // line id → LRU stamp, and the reverse order index.
    stamp_of: HashMap<usize, u64>,
    by_stamp: BTreeMap<u64, usize>,
    dirty: std::collections::HashSet<usize>,
    next_stamp: u64,
    accesses: u64,
    misses: u64,
    writebacks: u64,
}

/// Summary statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CacheStats {
    /// Word accesses issued.
    pub accesses: u64,
    /// Line misses incurred.
    pub misses: u64,
    /// Dirty lines evicted (each costs a memory write).
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss rate (0 for an untouched cache).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Asymmetric memory cost: each miss is one read transfer, each
    /// write-back costs `omega` of those (ω > 1 models NVM-style
    /// expensive writes — the read-write asymmetry Blelloch's statement
    /// names as a model extension).
    pub fn asymmetric_cost(&self, omega: f64) -> f64 {
        self.misses as f64 + omega * self.writebacks as f64
    }
}

impl IdealCache {
    /// A cache of `z_words` capacity with `l_words` lines. Both must be
    /// positive and `z_words ≥ l_words` (the "tall cache" assumption is
    /// the caller's business).
    pub fn new(z_words: usize, l_words: usize) -> Self {
        assert!(l_words > 0, "line size must be positive");
        assert!(
            z_words >= l_words,
            "cache must hold at least one line (Z={z_words}, L={l_words})"
        );
        IdealCache {
            z_words,
            l_words,
            lines: z_words / l_words,
            stamp_of: HashMap::new(),
            by_stamp: BTreeMap::new(),
            dirty: std::collections::HashSet::new(),
            next_stamp: 0,
            accesses: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// Read one word.
    pub fn access(&mut self, addr: usize) {
        self.touch(addr, false);
    }

    /// Write one word (marks its line dirty; a dirty eviction counts as
    /// a write-back).
    pub fn access_write(&mut self, addr: usize) {
        self.touch(addr, true);
    }

    fn touch(&mut self, addr: usize, write: bool) {
        self.accesses += 1;
        let line = addr / self.l_words;
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if write {
            self.dirty.insert(line);
        }
        if let Some(old) = self.stamp_of.insert(line, stamp) {
            // Hit: refresh recency.
            self.by_stamp.remove(&old);
            self.by_stamp.insert(stamp, line);
            return;
        }
        // Miss.
        self.misses += 1;
        self.by_stamp.insert(stamp, line);
        if self.stamp_of.len() > self.lines {
            // Evict the least recently used line.
            let (&old_stamp, &old_line) = self.by_stamp.iter().next().expect("nonempty");
            self.by_stamp.remove(&old_stamp);
            self.stamp_of.remove(&old_line);
            if self.dirty.remove(&old_line) {
                self.writebacks += 1;
            }
        }
    }

    /// Access `len` consecutive words starting at `base`.
    pub fn access_range(&mut self, base: usize, len: usize) {
        for a in base..base + len {
            self.access(a);
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            accesses: self.accesses,
            misses: self.misses,
            writebacks: self.writebacks,
        }
    }

    /// Reset counters (contents and dirty bits retained).
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
        self.misses = 0;
        self.writebacks = 0;
    }

    /// Drop all cached lines and counters.
    pub fn clear(&mut self) {
        self.stamp_of.clear();
        self.by_stamp.clear();
        self.dirty.clear();
        self.accesses = 0;
        self.misses = 0;
        self.writebacks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_scan_misses_once_per_line() {
        let mut c = IdealCache::new(1024, 8);
        c.access_range(0, 800);
        let s = c.stats();
        assert_eq!(s.accesses, 800);
        assert_eq!(s.misses, 100); // 800 words / 8 per line
    }

    #[test]
    fn resident_working_set_hits() {
        let mut c = IdealCache::new(64, 8);
        c.access_range(0, 64);
        c.reset_stats();
        for _ in 0..10 {
            c.access_range(0, 64);
        }
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-line cache: touch lines 0, 1, then 0 again, then 2 — the
        // eviction victim must be line 1.
        let mut c = IdealCache::new(16, 8);
        c.access(0); // line 0: miss
        c.access(8); // line 1: miss
        c.access(1); // line 0: hit, refresh
        c.access(16); // line 2: miss, evicts line 1
        c.reset_stats();
        c.access(2); // line 0: hit
        c.access(17); // line 2: hit
        assert_eq!(c.stats().misses, 0);
        c.access(9); // line 1: must miss (was evicted)
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn thrashing_scan_larger_than_cache() {
        // Repeatedly scanning an array 2× the cache size misses every
        // line every pass under LRU.
        let mut c = IdealCache::new(64, 8);
        for _ in 0..3 {
            c.access_range(0, 128);
        }
        assert_eq!(c.stats().misses, 3 * 16);
    }

    #[test]
    fn miss_rate_computed() {
        let mut c = IdealCache::new(1024, 8);
        c.access_range(0, 80);
        assert!((c.stats().miss_rate() - 10.0 / 80.0).abs() < 1e-12);
        assert_eq!(
            CacheStats {
                accesses: 0,
                misses: 0,
                writebacks: 0
            }
            .miss_rate(),
            0.0
        );
    }

    #[test]
    fn read_only_traffic_never_writes_back() {
        let mut c = IdealCache::new(32, 8);
        for pass in 0..3 {
            c.access_range(pass * 64, 64); // thrash, reads only
        }
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn dirty_evictions_counted_once() {
        let mut c = IdealCache::new(16, 8); // 2 lines
        c.access_write(0); // line 0 dirty
        c.access(8); // line 1
        c.access(16); // line 2: evicts line 0 (dirty) → 1 writeback
        c.access(24); // line 3: evicts line 1 (clean) → none
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn asymmetric_cost_weights_writebacks() {
        // Streaming writes through a tiny cache: every line written,
        // every eviction dirty.
        let mut c = IdealCache::new(16, 8);
        for a in 0..80 {
            c.access_write(a);
        }
        let s = c.stats();
        assert_eq!(s.misses, 10);
        assert_eq!(s.writebacks, 8); // all but the 2 resident lines
                                     // ω = 4: writes dominate the cost.
        assert!(s.asymmetric_cost(4.0) > 3.0 * s.misses as f64);
        // ω = 0 recovers the symmetric model.
        assert_eq!(s.asymmetric_cost(0.0), s.misses as f64);
    }

    #[test]
    fn clear_forgets_contents() {
        let mut c = IdealCache::new(64, 8);
        c.access_range(0, 64);
        c.clear();
        c.access_range(0, 64);
        assert_eq!(c.stats().misses, 8);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn too_small_cache_rejected() {
        IdealCache::new(4, 8);
    }

    #[test]
    fn unit_line_size() {
        let mut c = IdealCache::new(4, 1);
        for a in 0..8 {
            c.access(a);
        }
        assert_eq!(c.stats().misses, 8);
    }
}
