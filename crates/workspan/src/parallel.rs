//! Data-parallel helpers built on `join` by recursive splitting.
//!
//! These are the "simple constructs in programming languages" Blelloch's
//! statement calls for: a parallel loop and a parallel reduction, each
//! defined entirely in terms of fork-join, so their work-span costs
//! compose by the usual algebra (work adds; span is `O(grain + log n)`
//! deep for `par_for`).

use std::ops::Range;

use crate::pool::ThreadPool;

/// Call `f(i)` for every `i` in `range`, in parallel, splitting down to
/// `grain`-sized chunks.
pub fn par_for<F>(pool: &ThreadPool, range: Range<usize>, grain: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let grain = grain.max(1);
    fn go<F: Fn(usize) + Sync>(pool: &ThreadPool, lo: usize, hi: usize, grain: usize, f: &F) {
        if hi - lo <= grain {
            for i in lo..hi {
                f(i);
            }
            return;
        }
        let mid = lo + (hi - lo) / 2;
        pool.join(
            || go(pool, lo, mid, grain, f),
            || go(pool, mid, hi, grain, f),
        );
    }
    if range.start < range.end {
        pool.run(|| go(pool, range.start, range.end, grain, &f));
    }
}

/// Parallel map-reduce over `range`: `map(i)` produces a value per
/// index; `combine` folds two values (must be associative); `identity`
/// seeds empty chunks.
pub fn par_reduce<T, M, C, I>(
    pool: &ThreadPool,
    range: Range<usize>,
    grain: usize,
    identity: I,
    map: M,
    combine: C,
) -> T
where
    T: Send,
    M: Fn(usize) -> T + Sync,
    C: Fn(T, T) -> T + Sync,
    I: Fn() -> T + Sync,
{
    let grain = grain.max(1);
    fn go<T, M, C, I>(
        pool: &ThreadPool,
        lo: usize,
        hi: usize,
        grain: usize,
        identity: &I,
        map: &M,
        combine: &C,
    ) -> T
    where
        T: Send,
        M: Fn(usize) -> T + Sync,
        C: Fn(T, T) -> T + Sync,
        I: Fn() -> T + Sync,
    {
        if hi - lo <= grain {
            let mut acc = identity();
            for i in lo..hi {
                acc = combine(acc, map(i));
            }
            return acc;
        }
        let mid = lo + (hi - lo) / 2;
        let (a, b) = pool.join(
            || go(pool, lo, mid, grain, identity, map, combine),
            || go(pool, mid, hi, grain, identity, map, combine),
        );
        combine(a, b)
    }
    if range.start >= range.end {
        return identity();
    }
    pool.run(|| {
        go(
            pool,
            range.start,
            range.end,
            grain,
            &identity,
            &map,
            &combine,
        )
    })
}

/// Parallel map over `0..n`: returns `vec![f(0), f(1), …, f(n-1)]`.
///
/// Output order is index order regardless of thread schedule: each
/// recursive split writes into its own half of the buffer, so the
/// result is deterministic whenever `f` is.
pub fn par_map<T, F>(pool: &ThreadPool, n: usize, grain: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let grain = grain.max(1);
    fn go<T, F>(pool: &ThreadPool, lo: usize, out: &mut [Option<T>], grain: usize, f: &F)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if out.len() <= grain {
            for (k, slot) in out.iter_mut().enumerate() {
                *slot = Some(f(lo + k));
            }
            return;
        }
        let mid = out.len() / 2;
        let (left, right) = out.split_at_mut(mid);
        pool.join(
            || go(pool, lo, left, grain, f),
            || go(pool, lo + mid, right, grain, f),
        );
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    if n > 0 {
        pool.run(|| go(pool, 0, &mut out, grain, &f));
    }
    out.into_iter()
        .map(|slot| slot.expect("every index mapped"))
        .collect()
}

/// Parallel map over `0..n` with an **ordered early-exit reduction**.
///
/// `f(i)` runs for indices in work-stealing order (grain 1), but
/// `reduce(i, &value)` is invoked strictly in index order, each index
/// exactly once, as soon as the ordered prefix up to `i` is complete.
/// When `reduce` returns `true`, index `i` becomes the cut: the call
/// returns `vec![f(0), …, f(i)]` and remaining indices are cancelled
/// (in-flight ones may still run; their results are discarded).
///
/// The cut index — and therefore the returned prefix — depends only on
/// `f` and `reduce`, never on the thread schedule: an index can only be
/// reduced after every smaller index has been, so any index at or
/// before the cut is guaranteed to have executed. This is what lets a
/// parallel search stop "as soon as the serial loop would have" and
/// still return bit-identical results (the `fm-autotune` tuner's
/// convergence window and deadline ride on this).
pub fn par_map_until<T, F, R>(pool: &ThreadPool, n: usize, f: F, reduce: R) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    R: FnMut(usize, &T) -> bool + Send,
{
    let never = std::sync::atomic::AtomicBool::new(false);
    par_map_until_cancel(pool, n, f, reduce, &never)
}

/// [`par_map_until`] with an external kill switch.
///
/// `cancel` is checked before each `f(i)` starts: once it reads `true`,
/// no *new* index begins evaluating (in-flight ones finish and their
/// results may still be reduced if they complete the ordered prefix).
/// The returned vector is the fully reduced contiguous prefix — every
/// element both executed `f` and was fed to `reduce`, in index order —
/// so a cancelled call still returns a well-formed partial result
/// rather than a hole-ridden one.
///
/// Unlike the `reduce`-driven cut, cancellation is asynchronous and
/// therefore *not* schedule-deterministic; callers that need
/// reproducible prefixes (budgets) should use `reduce`, and reserve
/// `cancel` for deadline/disconnect abort paths where promptness beats
/// determinism (the `fm-serve` daemon's per-request cancellation rides
/// on this).
pub fn par_map_until_cancel<T, F, R>(
    pool: &ThreadPool,
    n: usize,
    f: F,
    reduce: R,
    cancel: &std::sync::atomic::AtomicBool,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    R: FnMut(usize, &T) -> bool + Send,
{
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    struct State<T, R> {
        slots: Vec<Option<T>>,
        /// Next index awaiting ordered reduction.
        next: usize,
        /// One past the index whose reduction returned `true`.
        cut: Option<usize>,
        reduce: R,
    }

    let stop = AtomicBool::new(false);
    let state = Mutex::new(State {
        slots: (0..n).map(|_| None).collect(),
        next: 0,
        cut: None,
        reduce,
    });
    par_for(pool, 0..n, 1, |i| {
        // Cheap pre-check: indices past the cut (or after cancellation)
        // need not run at all. A skipped index leaves its slot empty,
        // which permanently pins the ordered frontier below it.
        if stop.load(Ordering::Acquire) || cancel.load(Ordering::Acquire) {
            return;
        }
        let v = f(i);
        let mut st = state.lock().expect("par_map_until state poisoned");
        if st.cut.is_some() {
            return;
        }
        st.slots[i] = Some(v);
        // Advance the ordered frontier as far as filled slots allow.
        while st.cut.is_none() && st.next < n && st.slots[st.next].is_some() {
            let idx = st.next;
            let State { slots, reduce, .. } = &mut *st;
            let done = (reduce)(idx, slots[idx].as_ref().expect("frontier slot filled"));
            st.next += 1;
            if done {
                st.cut = Some(idx + 1);
                stop.store(true, Ordering::Release);
            }
        }
    });
    let st = state.into_inner().expect("par_map_until state poisoned");
    // Reduced prefix: `cut` when the reduction stopped the run; `next`
    // otherwise (== n unless cancellation skipped an index).
    let end = st.cut.unwrap_or(st.next);
    st.slots
        .into_iter()
        .take(end)
        .map(|s| s.expect("prefix below the cut fully mapped"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn par_for_covers_every_index_once() {
        let pool = ThreadPool::with_threads(4);
        let n = 10_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        par_for(&pool, 0..n, 64, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_empty_range() {
        let pool = ThreadPool::with_threads(2);
        par_for(&pool, 5..5, 8, |_| panic!("must not run"));
    }

    #[test]
    fn par_reduce_sums() {
        let pool = ThreadPool::with_threads(4);
        let s = par_reduce(&pool, 0..100_001, 128, || 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(s, 100_000u64 * 100_001 / 2);
    }

    #[test]
    fn par_reduce_empty_is_identity() {
        let pool = ThreadPool::with_threads(2);
        let s = par_reduce(&pool, 3..3, 8, || 42u64, |_| 0, |a, b| a + b);
        assert_eq!(s, 42);
    }

    #[test]
    fn par_reduce_max() {
        let pool = ThreadPool::with_threads(4);
        let v: Vec<u64> = (0..5000).map(|i| (i * 2654435761u64) % 100_000).collect();
        let expected = *v.iter().max().unwrap();
        let got = par_reduce(&pool, 0..v.len(), 64, || 0u64, |i| v[i], |a, b| a.max(b));
        assert_eq!(got, expected);
    }

    #[test]
    fn par_map_preserves_index_order() {
        let pool = ThreadPool::with_threads(4);
        let got = par_map(&pool, 5000, 16, |i| i * 3);
        assert_eq!(got, (0..5000).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty() {
        let pool = ThreadPool::with_threads(2);
        let got: Vec<u64> = par_map(&pool, 0, 8, |_| panic!("must not run"));
        assert!(got.is_empty());
    }

    #[test]
    fn par_map_until_cuts_at_a_deterministic_index() {
        let pool = ThreadPool::with_threads(8);
        for _ in 0..20 {
            let got = par_map_until(&pool, 5000, |i| i * i, |i, _| i == 37);
            assert_eq!(got, (0..=37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_until_without_a_cut_is_par_map() {
        let pool = ThreadPool::with_threads(4);
        let got = par_map_until(&pool, 1000, |i| i + 1, |_, _| false);
        assert_eq!(got, (1..=1000).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_until_reduces_in_strict_index_order() {
        let pool = ThreadPool::with_threads(8);
        let mut seen = Vec::new();
        let got = par_map_until(
            &pool,
            2000,
            |i| i,
            |i, &v| {
                seen.push((i, v));
                false
            },
        );
        assert_eq!(got.len(), 2000);
        assert_eq!(seen, (0..2000).map(|i| (i, i)).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_until_empty() {
        let pool = ThreadPool::with_threads(2);
        let got: Vec<u64> = par_map_until(&pool, 0, |_| panic!("must not run"), |_, _| true);
        assert!(got.is_empty());
    }

    #[test]
    fn par_map_until_cut_at_zero_runs_one_item() {
        let pool = ThreadPool::with_threads(4);
        let got = par_map_until(&pool, 500, |i| i * 7, |_, _| true);
        assert_eq!(got, vec![0]);
    }

    #[test]
    fn par_map_until_cancel_pre_cancelled_runs_nothing() {
        use std::sync::atomic::AtomicBool;
        let pool = ThreadPool::with_threads(4);
        let cancel = AtomicBool::new(true);
        let got: Vec<u64> = par_map_until_cancel(
            &pool,
            1000,
            |_| panic!("must not run"),
            |_, _| false,
            &cancel,
        );
        assert!(got.is_empty());
    }

    #[test]
    fn par_map_until_cancel_returns_contiguous_reduced_prefix() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let pool = ThreadPool::with_threads(8);
        for _ in 0..10 {
            let cancel = AtomicBool::new(false);
            let got = par_map_until_cancel(
                &pool,
                2000,
                |i| {
                    if i == 100 {
                        cancel.store(true, Ordering::Release);
                    }
                    i * 2
                },
                |_, _| false,
                &cancel,
            );
            // Whatever ran, the result is a well-formed prefix: index k
            // holds f(k), no holes.
            assert!(got.len() <= 2000);
            for (k, v) in got.iter().enumerate() {
                assert_eq!(*v, k * 2);
            }
        }
    }

    #[test]
    fn par_map_until_cancel_never_cancelled_is_par_map() {
        use std::sync::atomic::AtomicBool;
        let pool = ThreadPool::with_threads(4);
        let cancel = AtomicBool::new(false);
        let got = par_map_until_cancel(&pool, 1500, |i| i + 7, |_, _| false, &cancel);
        assert_eq!(got, (7..1507).collect::<Vec<_>>());
    }

    #[test]
    fn grain_of_zero_is_clamped() {
        let pool = ThreadPool::with_threads(2);
        let s = par_reduce(&pool, 0..10, 0, || 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(s, 45);
    }
}
