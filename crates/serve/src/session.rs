//! Live-mutation sessions: server-held (graph, machine, candidates)
//! state that clients edit in place and re-tune warm.
//!
//! A session is the serving-side answer to a workload that *changes
//! shape while being mapped* — an interactive compiler growing a
//! kernel, a scheduler retargeting edges as operators fuse. Re-sending
//! the whole graph per revision and cold-evaluating every candidate
//! is O(V + E) × candidates per keystroke; a session instead keeps a
//! [`WarmCache`] (per-candidate legality counters and cost trees,
//! see [`fm_core::delta::DeltaCandidates`]) that each
//! [`GraphEdit`] repairs in O(edit cone), and
//! [`fm_autotune::Tuner::tune_warm`] drains that state into a winner
//! **bit-identical** to a cold tune of the current graph — asserted
//! here in debug builds on every session tune.
//!
//! Concurrency model: the registry maps `session_id →
//! Arc<Mutex<SessionState>>`. Lookups clone the `Arc` and drop the
//! registry lock immediately, so requests against *different* sessions
//! run concurrently across the worker pool while requests against the
//! *same* session serialize on its own mutex (edits and tunes mutate
//! shared warm state — interleaving them would corrupt it). The
//! idle-TTL sweeper ([`SessionRegistry::evict_idle`]) uses `try_lock`:
//! a session whose mutex is held is mid-request, hence not idle.
//!
//! Transport note: sealed edit batches checksum their *canonical JSON*
//! text ([`SessionEditRequest::seal`](crate::protocol::SessionEditRequest::seal)),
//! and the binary wire envelope encodes the same value tree the JSON
//! form serializes — so a batch sealed by a JSON client verifies
//! unchanged when it arrives over a negotiated binary connection, and
//! vice versa. Session requests are exempt from tune deduplication:
//! they mutate per-session state, so collapsing them would be wrong.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use fm_autotune::{Budget, CancelToken, TuneReport, Tuner, WarmCache};
use fm_core::cost::{CostReport, Evaluator};
use fm_core::dataflow::{DataflowGraph, MutationError};
use fm_core::machine::MachineConfig;
use fm_core::mutate::{apply_edit, GraphEdit};
use fm_core::search::{FigureOfMerit, MappingCandidate};
use fm_costmodel::{CostModelKind, RooflinePoint};

/// One live session: the mutable (graph, machine) pair, the candidate
/// list, and the warm per-candidate state repaired across edits.
pub struct SessionState {
    graph: DataflowGraph,
    machine: MachineConfig,
    fom: FigureOfMerit,
    budget: Budget,
    cost_model: CostModelKind,
    warm: WarmCache,
    /// Bumped once per applied edit batch; edit requests must quote it.
    pub epoch: u64,
    /// Individual edits applied over the session's life.
    pub edits_applied: u64,
    /// Tunes served over the session's life.
    pub tunes: u64,
    last_touch: Instant,
}

/// How an edit batch landed.
#[derive(Debug)]
pub enum EditOutcome {
    /// The whole batch applied; the epoch advanced.
    Applied {
        /// The session's epoch after the batch.
        epoch: u64,
        /// Edits applied (== batch length).
        applied: u64,
        /// Total dirty-cone size across the batch.
        cone: u64,
    },
    /// The request quoted an epoch other than the session's current
    /// one (concurrent editor or lost reply); nothing was applied.
    StaleEpoch {
        /// Epoch the request quoted.
        got: u64,
        /// The session's current epoch.
        expected: u64,
    },
    /// An edit in the batch is invalid against the graph it would see;
    /// nothing was applied (batches are all-or-nothing).
    Rejected {
        /// Index of the offending edit within the batch.
        index: usize,
        /// Why it was refused.
        error: MutationError,
    },
}

/// What a session tune produced.
pub struct SessionTuneOutcome {
    /// The epoch the tuned graph is at.
    pub epoch: u64,
    /// Whether no candidate fell back to a cold rebuild.
    pub warm: bool,
    /// Candidates cold-rebuilt during this tune.
    pub rebuilds: u64,
    /// The full tuner report (winner, counters, trajectory).
    pub report: TuneReport,
}

impl SessionState {
    /// Open a session: cold-derive warm state for every candidate
    /// against the initial graph and machine.
    pub fn open(
        graph: DataflowGraph,
        machine: MachineConfig,
        fom: FigureOfMerit,
        candidates: Vec<MappingCandidate>,
        budget: Budget,
        cost_model: CostModelKind,
    ) -> SessionState {
        let warm = {
            let ev = Evaluator::new(&graph, &machine).with_cost_model(cost_model);
            WarmCache::new(&ev, candidates)
        };
        SessionState {
            graph,
            machine,
            fom,
            budget,
            cost_model,
            warm,
            epoch: 0,
            edits_applied: 0,
            tunes: 0,
            last_touch: Instant::now(),
        }
    }

    /// Current number of graph nodes (for smoke checks and logs).
    pub fn graph_len(&self) -> usize {
        self.graph.len()
    }

    /// The cost backend every tune in this session runs under (baked
    /// at open).
    pub fn cost_model(&self) -> CostModelKind {
        self.cost_model
    }

    /// Where a report sits under this session's machine roofline.
    pub fn roofline(&self, report: &CostReport) -> RooflinePoint {
        Evaluator::new(&self.graph, &self.machine)
            .with_cost_model(self.cost_model)
            .roofline(report)
    }

    /// Apply one edit batch atomically: every edit applies and the
    /// epoch bumps by one, or none do. Atomicity is by rehearsal — the
    /// batch first runs against throwaway clones, and only a fully
    /// valid batch is replayed on the real state (the rehearsal is
    /// O(V) once per batch; the per-candidate repair it guards is the
    /// expensive part).
    pub fn apply_batch(&mut self, epoch: u64, edits: &[GraphEdit]) -> EditOutcome {
        self.last_touch = Instant::now();
        if epoch != self.epoch {
            return EditOutcome::StaleEpoch {
                got: epoch,
                expected: self.epoch,
            };
        }
        let mut g = self.graph.clone();
        let mut m = self.machine.clone();
        for (index, edit) in edits.iter().enumerate() {
            if let Err(error) = apply_edit(&mut g, &mut m, edit) {
                return EditOutcome::Rejected { index, error };
            }
        }
        let mut cone = 0u64;
        for edit in edits {
            let receipt =
                apply_edit(&mut self.graph, &mut self.machine, edit).expect("batch rehearsed");
            let ev = Evaluator::new(&self.graph, &self.machine).with_cost_model(self.cost_model);
            cone += self.warm.apply_edit(&ev, &receipt);
        }
        self.epoch += 1;
        self.edits_applied += edits.len() as u64;
        EditOutcome::Applied {
            epoch: self.epoch,
            applied: edits.len() as u64,
            cone,
        }
    }

    /// Re-tune the current graph, seeded from the warm state.
    ///
    /// In debug builds, a deterministic tune (no deadline, not
    /// cancelled) is re-run cold and the winner asserted bit-identical
    /// — the session subsystem's core invariant, paid only where
    /// assertions are on.
    pub fn tune(&mut self, deadline: Option<Instant>, cancel: &CancelToken) -> SessionTuneOutcome {
        self.last_touch = Instant::now();
        let mut budget = self.budget;
        if let Some(d) = deadline {
            budget.deadline = Some(d.saturating_duration_since(Instant::now()));
        }
        let rebuilds_before = self.warm.rebuilds();
        let report = {
            let ev = Evaluator::new(&self.graph, &self.machine).with_cost_model(self.cost_model);
            let report = Tuner::new(&ev, &self.graph, &self.machine, self.fom)
                .with_budget(budget)
                .with_cancel(cancel.clone())
                .tune_warm(&mut self.warm);

            #[cfg(debug_assertions)]
            if !report.cancelled && deadline.is_none() {
                let cold = Tuner::new(&ev, &self.graph, &self.machine, self.fom)
                    .with_budget(self.budget)
                    .tune(self.warm.candidates());
                debug_assert_eq!(
                    report.best_index, cold.best_index,
                    "warm tune picked a different candidate than a cold tune"
                );
                match (&report.best, &cold.best) {
                    (Some(w), Some(c)) => {
                        debug_assert_eq!(w.label, c.label);
                        debug_assert_eq!(
                            w.score.to_bits(),
                            c.score.to_bits(),
                            "warm winner score is not bit-identical to cold"
                        );
                        debug_assert_eq!(w.resolved, c.resolved);
                    }
                    (None, None) => {}
                    _ => debug_assert!(false, "warm and cold disagree on having a winner"),
                }
            }

            report
        };
        let rebuilds = self.warm.rebuilds() - rebuilds_before;
        self.tunes += 1;
        self.last_touch = Instant::now();
        SessionTuneOutcome {
            epoch: self.epoch,
            warm: rebuilds == 0,
            rebuilds,
            report,
        }
    }

    /// Has this session been untouched for at least `ttl`?
    fn idle_for(&self, ttl: Duration, now: Instant) -> bool {
        now.duration_since(self.last_touch) >= ttl
    }
}

/// The server's session table. See the module docs for the locking
/// discipline.
pub struct SessionRegistry {
    next_id: AtomicU64,
    table: Mutex<HashMap<u64, Arc<Mutex<SessionState>>>>,
}

impl Default for SessionRegistry {
    fn default() -> Self {
        SessionRegistry {
            next_id: AtomicU64::new(0),
            table: Mutex::new(HashMap::new()),
        }
    }
}

impl SessionRegistry {
    /// Register a session; returns its id (ids start at 1 and are
    /// never reused, so a stale id can only miss, not alias).
    pub fn open(&self, state: SessionState) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.table.lock().insert(id, Arc::new(Mutex::new(state)));
        id
    }

    /// Look up a session. Clones the `Arc` and releases the table lock
    /// before returning, so the caller's work on one session never
    /// blocks requests for others.
    pub fn get(&self, id: u64) -> Option<Arc<Mutex<SessionState>>> {
        self.table.lock().get(&id).cloned()
    }

    /// Remove a session (close). The state is returned so the caller
    /// can report lifetime counters.
    pub fn remove(&self, id: u64) -> Option<Arc<Mutex<SessionState>>> {
        self.table.lock().remove(&id)
    }

    /// Sessions currently held.
    pub fn len(&self) -> usize {
        self.table.lock().len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.table.lock().is_empty()
    }

    /// Drop every session idle for at least `ttl`; returns how many.
    /// A session whose mutex is currently held is mid-request and is
    /// skipped regardless of its clock.
    pub fn evict_idle(&self, ttl: Duration) -> u64 {
        let now = Instant::now();
        let mut evicted = 0u64;
        self.table.lock().retain(|_, slot| {
            match slot.try_lock() {
                Some(state) if state.idle_for(ttl, now) => {
                    evicted += 1;
                    false
                }
                // Busy (locked) or recently touched: keep.
                _ => true,
            }
        });
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_core::dataflow::CExpr;
    use fm_core::mapping::Mapping;
    use fm_core::value::Value;

    fn chain(n: usize) -> DataflowGraph {
        let mut g = DataflowGraph::new("chain", 32);
        g.add_node(CExpr::konst(Value::ZERO), vec![], vec![0]);
        for i in 1..n {
            g.add_node(
                CExpr::dep(0).add(CExpr::konst(Value::real(1.0))),
                vec![(i - 1) as u32],
                vec![i as i64],
            );
        }
        g
    }

    fn state() -> SessionState {
        let g = chain(5);
        let cands = vec![MappingCandidate::new("serial", Mapping::serial(&g))];
        SessionState::open(
            g,
            MachineConfig::n5(2, 2),
            FigureOfMerit::Edp,
            cands,
            Budget::unlimited(),
            CostModelKind::Analytic,
        )
    }

    #[test]
    fn batch_is_all_or_nothing() {
        let mut s = state();
        let before_len = s.graph_len();
        // Second edit is invalid (node 0 has consumers): the first
        // must not stick.
        let batch = vec![
            GraphEdit::ResizeTile { tile_bits: 999 },
            GraphEdit::RemoveNode { id: 0 },
        ];
        match s.apply_batch(0, &batch) {
            EditOutcome::Rejected { index: 1, .. } => {}
            _ => panic!("expected Rejected at index 1"),
        }
        assert_eq!(s.epoch, 0);
        assert_eq!(s.graph_len(), before_len);
        assert_ne!(s.machine.tile_bits, 999, "rehearsal must not leak");
    }

    #[test]
    fn stale_epoch_is_refused_without_applying() {
        let mut s = state();
        let batch = vec![GraphEdit::ResizeTile { tile_bits: 4096 }];
        match s.apply_batch(7, &batch) {
            EditOutcome::StaleEpoch {
                got: 7,
                expected: 0,
            } => {}
            _ => panic!("expected StaleEpoch"),
        }
        match s.apply_batch(0, &batch) {
            EditOutcome::Applied {
                epoch: 1,
                applied: 1,
                cone: 0,
            } => {}
            _ => panic!("expected Applied"),
        }
        assert_eq!(s.machine.tile_bits, 4096);
    }

    #[test]
    fn tune_after_edits_stays_warm_and_matches_cold() {
        // The debug-assert inside tune() *is* the parity check; this
        // test drives it through an edit stream.
        let mut s = state();
        let batch = vec![GraphEdit::AddNode {
            expr: CExpr::dep(0).add(CExpr::konst(Value::real(1.0))),
            deps: vec![4],
            index: vec![5],
            output: false,
        }];
        match s.apply_batch(0, &batch) {
            EditOutcome::Applied { epoch: 1, .. } => {}
            _ => panic!("expected Applied"),
        }
        // The length change makes the table candidate unresolvable —
        // that is not a rebuild, so the tune is warm but falls back.
        let out = s.tune(None, &CancelToken::new());
        assert!(out.warm);
        assert_eq!(out.rebuilds, 0);
        assert!(out.report.fell_back);
        assert!(out.report.best.is_some());
        // Removing the added node restores the length: the candidate
        // is lazily rebuilt cold, exactly once.
        match s.apply_batch(1, &[GraphEdit::RemoveNode { id: 5 }]) {
            EditOutcome::Applied { epoch: 2, .. } => {}
            _ => panic!("expected Applied"),
        }
        let out = s.tune(None, &CancelToken::new());
        assert!(!out.warm);
        assert_eq!(out.rebuilds, 1);
        assert!(!out.report.fell_back);
        // A further tune with no intervening edits is fully warm.
        let out = s.tune(None, &CancelToken::new());
        assert!(out.warm);
        assert_eq!(out.rebuilds, 0);
        assert_eq!(s.tunes, 3);
    }

    #[test]
    fn registry_evicts_only_idle_sessions() {
        let reg = SessionRegistry::default();
        let a = reg.open(state());
        let b = reg.open(state());
        assert_ne!(a, b);
        assert_eq!(reg.len(), 2);
        // Touch b; with a generous ttl nothing is idle yet.
        assert_eq!(reg.evict_idle(Duration::from_secs(3600)), 0);
        std::thread::sleep(Duration::from_millis(30));
        {
            let slot = reg.get(b).unwrap();
            let mut s = slot.lock();
            match s.apply_batch(0, &[GraphEdit::ResizeTile { tile_bits: 512 }]) {
                EditOutcome::Applied { .. } => {}
                _ => panic!("expected Applied"),
            }
        }
        // a has been idle ≥ 30 ms, b was just touched.
        assert_eq!(reg.evict_idle(Duration::from_millis(25)), 1);
        assert!(reg.get(a).is_none());
        assert!(reg.get(b).is_some());
        // A held lock shields a session from eviction.
        let slot = reg.get(b).unwrap();
        let _busy = slot.lock();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(reg.evict_idle(Duration::from_millis(1)), 0);
        assert_eq!(reg.len(), 1);
    }
}
