//! # fm-serve: mapping-as-a-service
//!
//! A std-only daemon that puts the whole F&M toolchain — autotuning
//! searches (`fm-autotune`), cost evaluation (`fm-core`), and
//! cycle-level simulation (`fm-grid`) — behind one TCP socket, so a
//! compiler, a sweep script, or a CI job can ask for mappings without
//! linking the crates or paying cold-start costs per query. One
//! resident server amortises the tuner thread pool and the persistent
//! tuning cache across every request.
//!
//! ## Protocol
//!
//! Length-prefixed frames: each frame is a 4-byte big-endian length
//! followed by that many bytes of payload ([`protocol`]). A payload is
//! either JSON (the original wire format, still accepted verbatim) or
//! the compact binary envelope — a `0xB1` magic byte, a codec version,
//! an 8-byte correlation id, then the varint-packed binary encoding of
//! the same externally-tagged value tree the JSON form serializes.
//! Clients opt in per connection with a `Hello` handshake; servers
//! that predate negotiation answer `Failed{kind:"protocol"}` and the
//! client transparently falls back to JSON. Requests:
//!
//! | request | answer | what it does |
//! |---|---|---|
//! | `Hello` | `HelloAck` | negotiate binary framing + pipelining (never queued) |
//! | `Ping` | `Pong` | liveness |
//! | `Tune` | `Tuned` | ranked mapping search via the shared tuner + cache |
//! | `TuneShard` | `TuneSharded` | one sub-range of a fleet tune (checksummed, epoch-stamped) |
//! | `Evaluate` | `Evaluated` | legality + predicted [`CostReport`](fm_core::cost::CostReport) |
//! | `Simulate` | `Simulated` | cycle-level run, predicted-vs-simulated slowdown |
//! | `Stats` | `Stats` | live metrics snapshot (never queued) |
//! | `SessionOpen` | `SessionOpened` | register a live graph + candidate set, get a session id |
//! | `SessionEdit` | `SessionEdited` | apply a sealed, epoch-stamped edit batch to the session graph |
//! | `SessionTune` | `SessionTuned` | warm re-tune seeded from repaired candidate costs ([`session`]) |
//! | `SessionClose` | `SessionClosed` | retire the session, report lifetime tallies |
//! | `ShardJoin` | `Membership` | admit a shard into the running fleet roster (never queued) |
//! | `ShardLeave` | `Membership` | retire a shard; its in-flight suffixes re-dispatch (never queued) |
//! | `Shutdown` | `ShuttingDown` | drain admitted work, then exit |
//!
//! On a negotiated pipelined connection the client may keep many
//! requests in flight; replies carry the request's correlation id and
//! return in completion order, so a cheap `Ping` overtakes a long
//! `Tune` queued ahead of it. Queued `Tune` requests with identical
//! bodies are deduplicated into one search whose answer fans out to
//! every waiter (`--dedup off` disables this).
//!
//! Any work request may instead receive `Busy` (bounded admission
//! queue is full — retry later) or `Failed` (typed error). Session
//! requests naming an unknown, closed, or idle-evicted session get the
//! typed `NoSuchSession` reply, so clients can transparently reopen
//! instead of pattern-matching error strings.
//!
//! ## Production plumbing
//!
//! * bounded admission with explicit backpressure ([`server`]),
//! * per-request deadlines threaded into tuner budgets plus a
//!   [`CancelToken`](fm_autotune::CancelToken) so expired or
//!   disconnected clients stop burning cores mid-search,
//! * graceful drain-then-exit shutdown,
//! * lock-free in-process metrics ([`metrics`]): per-endpoint request
//!   counters and latency histograms (p50/p95/p99), queue depth,
//!   cache hit rate,
//! * fault-tolerant sharded search ([`fleet`]): a server started with
//!   `--fleet host:port,...` partitions each eligible `Tune` across
//!   backend shards and merges by `(score, index)` — bit-identical to
//!   a single-machine tune even under dead, slow, or frame-corrupting
//!   shards (deterministically testable via [`fault`]),
//! * elastic membership ([`membership`]): shards join and leave the
//!   running fleet (`ShardJoin`/`ShardLeave`, `--fleet-admit`), EWMA
//!   throughput weights persist across coordinator restarts in a
//!   corrupt-tolerant JSON ledger, and a shard whose throughput falls
//!   off a cliff mid-tune has its unfinished suffix speculatively
//!   re-dispatched to healthy members.
//!
//! ## Quickstart
//!
//! ```no_run
//! use fm_serve::client::Client;
//! use fm_serve::server::{Server, ServerConfig};
//!
//! let handle = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = Client::connect(handle.local_addr()).unwrap();
//! client.ping().unwrap();
//! let stats = client.stats().unwrap();
//! assert_eq!(stats.ping.received, 1);
//! client.shutdown().unwrap();
//! handle.join();
//! ```

pub mod client;
pub mod fault;
pub mod fleet;
pub mod membership;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod session;

pub use client::{Client, ClientError};
pub use fault::{FaultAction, FaultPlan, FaultProxy};
pub use fleet::{Fleet, FleetConfig};
pub use membership::{LedgerDoc, LedgerEntry, Membership, LEDGER_SCHEMA_VERSION};
pub use metrics::{
    EndpointStats, FleetStatsReply, LatencyStats, SessionStatsReply, ShardStats, StatsReply,
};
pub use protocol::{
    BusyReply, EvaluateReply, EvaluateRequest, FailReply, HelloAckReply, HelloRequest,
    MembershipReply, NoSuchSessionReply, Request, Response, SessionCloseRequest,
    SessionClosedReply, SessionEditRequest, SessionEditedReply, SessionOpenRequest,
    SessionOpenedReply, SessionTuneRequest, SessionTunedReply, ShardJoinRequest, ShardLeaveRequest,
    ShardReplyFlaw, SimulateReply, SimulateRequest, TuneReply, TuneRequest, TuneShardBody,
    TuneShardReply, TuneShardRequest, WireCandidate, WireError, DEFAULT_MAX_FRAME,
    PROTOCOL_BINARY_VERSION,
};
pub use server::{Server, ServerConfig, ServerHandle};
pub use session::{EditOutcome, SessionRegistry, SessionState, SessionTuneOutcome};
