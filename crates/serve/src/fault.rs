//! Deterministic fault injection for fleet testing.
//!
//! A [`FaultProxy`] is a tiny TCP proxy that sits between a fleet
//! coordinator and one shard and misbehaves **on purpose, on
//! schedule**: each accepted connection is assigned a [`FaultAction`]
//! from a [`FaultPlan`] — an explicit script or a seeded pseudo-random
//! schedule — so every failure mode the coordinator defends against
//! (dead shard, slow shard, corrupt frame, mid-reply disconnect) has a
//! *reproducible* end-to-end test. Runs of the same plan misbehave
//! identically; there is no wall-clock or OS randomness in which
//! connection gets which fault.
//!
//! The proxy is frame-aware on the reply direction (it parses the
//! length prefix so it can truncate or corrupt *inside* a frame) and a
//! plain byte pump on the request direction (propagating the client's
//! EOF upstream, which is how a coordinator abandoning an attempt
//! reaches the shard's disconnect watchdog).

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::protocol::{decode_response_any, Response, DEFAULT_MAX_FRAME};

/// What the proxy does to one proxied connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Forward faithfully in both directions.
    Pass,
    /// Close the client connection on accept, before any byte moves
    /// (a dead shard: connect succeeds, then immediate EOF).
    Drop,
    /// Hold the connection for this many milliseconds before
    /// forwarding anything (a straggler shard; the coordinator's
    /// hedging fires past its threshold).
    Delay(u64),
    /// Forward the request; send the reply's length prefix and the
    /// first third of its payload, then close (EOF inside a frame).
    Truncate,
    /// Forward the request; flip one ASCII digit inside the reply
    /// payload. Frame and JSON stay valid — only the reply checksum
    /// can tell.
    Corrupt,
    /// Forward the request and two thirds of the reply payload, then
    /// close mid-frame (the shard "died" while answering).
    DisconnectMidReply,
    /// Forward reply frames faithfully until frame `n` (0-based), flip
    /// one ASCII digit inside that frame, then keep forwarding. With
    /// streaming replies this corrupts a single [`TuneShardPart`] in
    /// the middle of an otherwise healthy stream — only its checksum
    /// can tell.
    ///
    /// [`TuneShardPart`]: crate::protocol::TuneShardPart
    CorruptFrame(u32),
    /// Forward reply frames faithfully until frame `n` (0-based), send
    /// that frame's length prefix and the first third of its payload,
    /// then close — EOF inside a mid-stream part, after real progress
    /// was already delivered.
    TruncateFrame(u32),
    /// Forward everything, but sleep this many milliseconds before
    /// each reply frame: a shard whose *stream* is slow. Blocking
    /// coordinators see one big stall; streaming coordinators watch
    /// the covered watermark crawl and can judge the shard per frame.
    StallBetweenFrames(u64),
    /// Forward reply frames at full speed until frame `after_frame`
    /// (0-based); from then on, sleep `ms_per_candidate` milliseconds
    /// *per candidate the frame covers* before forwarding it. This is
    /// a throughput collapse, not a failure: the connection stays
    /// healthy, frames keep arriving, checksums keep passing — only
    /// the candidates-per-second rate craters. It is the shape the
    /// coordinator's cliff detector must catch with no disconnect or
    /// corruption to lean on, and (unlike a flat stall) the penalty
    /// scales with how much work is still routed to the sick shard.
    ThroughputCliff {
        /// First reply frame (0-based) the collapse applies to.
        after_frame: u32,
        /// Added latency per candidate in each slowed frame.
        ms_per_candidate: u64,
    },
}

/// splitmix64: the one-shot bit mixer used wherever the fleet needs
/// reproducible pseudo-randomness (fault schedules, backoff jitter)
/// without a `rand` dependency.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A reproducible schedule of per-connection fault actions.
///
/// Connection `n` (0-based, in accept order) gets `actions[n]`;
/// connections beyond the schedule get [`FaultAction::Pass`]. A plan is
/// therefore always *finitely* faulty: a coordinator that keeps
/// retrying eventually reaches a clean connection, which is what makes
/// "the winner never changes under any seeded plan" a provable
/// property rather than a probabilistic one.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    actions: Vec<FaultAction>,
}

impl FaultPlan {
    /// A plan that never misbehaves.
    pub fn passthrough() -> FaultPlan {
        FaultPlan::script(Vec::new())
    }

    /// An explicit per-connection script (then `Pass` forever).
    pub fn script(actions: Vec<FaultAction>) -> FaultPlan {
        FaultPlan { actions }
    }

    /// A pseudo-random schedule of `len` actions derived entirely from
    /// `seed`: same seed, same faults, same order.
    pub fn seeded(seed: u64, len: usize) -> FaultPlan {
        let actions = (0..len as u64)
            .map(|i| {
                let r = mix64(seed ^ mix64(i));
                match r % 10 {
                    0 => FaultAction::Pass,
                    1 => FaultAction::Drop,
                    2 => FaultAction::Delay(10 + (r >> 8) % 50),
                    3 => FaultAction::Truncate,
                    4 => FaultAction::Corrupt,
                    5 => FaultAction::DisconnectMidReply,
                    6 => FaultAction::CorruptFrame(((r >> 8) % 4) as u32),
                    7 => FaultAction::TruncateFrame(((r >> 8) % 4) as u32),
                    8 => FaultAction::StallBetweenFrames(5 + (r >> 8) % 30),
                    _ => FaultAction::ThroughputCliff {
                        after_frame: ((r >> 8) % 4) as u32,
                        ms_per_candidate: 1 + (r >> 16) % 3,
                    },
                }
            })
            .collect();
        FaultPlan { actions }
    }

    /// The action for connection `n` (accept order).
    pub fn action(&self, n: u64) -> FaultAction {
        usize::try_from(n)
            .ok()
            .and_then(|i| self.actions.get(i).copied())
            .unwrap_or(FaultAction::Pass)
    }

    /// Scheduled actions (excluding the implicit `Pass` tail).
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the plan is pure passthrough.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

/// A running fault-injection proxy in front of one upstream address.
///
/// Listens on an ephemeral localhost port ([`FaultProxy::local_addr`]);
/// point the coordinator's shard address at it instead of the shard.
pub struct FaultProxy {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    accepted: Arc<AtomicU64>,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl FaultProxy {
    /// Start proxying `127.0.0.1:0` → `upstream` under `plan`.
    pub fn start(upstream: SocketAddr, plan: FaultPlan) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicU64::new(0));
        let conns = Arc::new(Mutex::new(Vec::new()));

        let acceptor = {
            let stop = Arc::clone(&stop);
            let accepted = Arc::clone(&accepted);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("fault-proxy".to_string())
                .spawn(move || loop {
                    match listener.accept() {
                        Ok((client, _)) => {
                            if stop.load(Ordering::Acquire) {
                                break;
                            }
                            let n = accepted.fetch_add(1, Ordering::Relaxed);
                            let action = plan.action(n);
                            let stop2 = Arc::clone(&stop);
                            let handle = std::thread::Builder::new()
                                .name("fault-proxy-conn".to_string())
                                .spawn(move || proxy_connection(client, upstream, action, &stop2))
                                .expect("spawn proxy connection thread");
                            conns.lock().push(handle);
                        }
                        Err(_) => {
                            if stop.load(Ordering::Acquire) {
                                break;
                            }
                        }
                    }
                })?
        };

        Ok(FaultProxy {
            local,
            stop,
            accepted,
            acceptor: Some(acceptor),
            conns,
        })
    }

    /// The address the coordinator should dial.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Connections accepted so far (== plan positions consumed).
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Stop accepting, sever live connections, join every thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the acceptor's blocking accept().
        let _ = TcpStream::connect(self.local);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        loop {
            let handle = self.conns.lock().pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

/// Sleep `ms` in slices, returning early (false) if `stop` fires.
fn nap(ms: u64, stop: &AtomicBool) -> bool {
    let mut left = ms;
    while left > 0 {
        if stop.load(Ordering::Acquire) {
            return false;
        }
        let step = left.min(20);
        std::thread::sleep(Duration::from_millis(step));
        left -= step;
    }
    !stop.load(Ordering::Acquire)
}

/// Read one frame from `stream`, polling `stop` between read-timeout
/// slices. `None` on EOF, error, or stop.
fn read_frame_stoppable(stream: &mut TcpStream, stop: &AtomicBool) -> Option<Vec<u8>> {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let mut header = [0u8; 4];
    let mut have = 0usize;
    let mut payload: Option<(Vec<u8>, usize)> = None;
    loop {
        if stop.load(Ordering::Acquire) {
            return None;
        }
        let (buf, filled): (&mut [u8], &mut usize) = match &mut payload {
            None => (&mut header[..], &mut have),
            Some((b, f)) => (b.as_mut_slice(), f),
        };
        match stream.read(&mut buf[*filled..]) {
            Ok(0) => return None,
            Ok(n) => {
                *filled += n;
                if *filled == buf.len() {
                    match payload.take() {
                        None => {
                            let len = u32::from_be_bytes(header) as usize;
                            if len > DEFAULT_MAX_FRAME {
                                return None;
                            }
                            if len == 0 {
                                return Some(Vec::new());
                            }
                            payload = Some((vec![0u8; len], 0));
                        }
                        Some((buf, _)) => return Some(buf),
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return None,
        }
    }
}

/// Flip the last ASCII digit in `payload` (keeps JSON shape valid so
/// the corruption can only be caught by the reply checksum). Last, not
/// first: in a serialized shard reply the first digit is the epoch
/// field, whose tampering reads as staleness; the last digit sits in
/// the body, where only the checksum can catch it.
fn corrupt_digit(payload: &mut [u8]) {
    if let Some(b) = payload.iter_mut().rev().find(|b| b.is_ascii_digit()) {
        *b = if *b == b'9' { b'1' } else { *b + 1 };
    }
}

fn proxy_connection(
    mut client: TcpStream,
    upstream: SocketAddr,
    action: FaultAction,
    stop: &AtomicBool,
) {
    match action {
        FaultAction::Drop => return, // client socket drops: immediate EOF
        FaultAction::Delay(ms) if !nap(ms, stop) => return,
        _ => {}
    }
    let mut upstream = match TcpStream::connect_timeout(&upstream, Duration::from_secs(2)) {
        Ok(s) => s,
        Err(_) => return,
    };
    let _ = client.set_nodelay(true);
    let _ = upstream.set_nodelay(true);

    // Request direction: dumb byte pump, client → upstream. EOF (or a
    // severed client) propagates as a write-shutdown so the shard's
    // disconnect watchdog sees the peer leave.
    let pump = {
        let mut c = match client.try_clone() {
            Ok(c) => c,
            Err(_) => return,
        };
        let mut u = match upstream.try_clone() {
            Ok(u) => u,
            Err(_) => return,
        };
        let _ = c.set_read_timeout(Some(Duration::from_millis(25)));
        let stop2 = Arc::new(AtomicBool::new(false)); // local: pump dies with conn
        let stop2c = Arc::clone(&stop2);
        let handle = std::thread::spawn(move || {
            let mut buf = [0u8; 4096];
            loop {
                if stop2c.load(Ordering::Acquire) {
                    break;
                }
                match c.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => {
                        if u.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        continue
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
            let _ = u.shutdown(Shutdown::Write);
        });
        (handle, stop2)
    };

    // Reply direction: frame-aware, so faults land *inside* frames —
    // and frame-indexed, so stream-aware faults land on a *specific*
    // frame of a multi-part reply.
    let mut frame: u32 = 0;
    while let Some(mut payload) = read_frame_stoppable(&mut upstream, stop) {
        let len = payload.len() as u32;
        let forward = |client: &mut TcpStream, payload: &[u8]| {
            client
                .write_all(&len.to_be_bytes())
                .and_then(|()| client.write_all(payload))
                .map(|()| true)
        };
        let cut = |client: &mut TcpStream, payload: &[u8], keep: usize| {
            client
                .write_all(&len.to_be_bytes())
                .and_then(|()| client.write_all(&payload[..keep]))
                .map(|()| false)
        };
        let sent = match action {
            FaultAction::Pass | FaultAction::Delay(_) => forward(&mut client, &payload),
            FaultAction::Corrupt => {
                corrupt_digit(&mut payload);
                forward(&mut client, &payload)
            }
            FaultAction::CorruptFrame(n) => {
                if frame == n {
                    corrupt_digit(&mut payload);
                }
                forward(&mut client, &payload)
            }
            FaultAction::Truncate => cut(&mut client, &payload, payload.len() / 3),
            FaultAction::TruncateFrame(n) => {
                if frame == n {
                    cut(&mut client, &payload, payload.len() / 3)
                } else {
                    forward(&mut client, &payload)
                }
            }
            FaultAction::DisconnectMidReply => cut(&mut client, &payload, payload.len() * 2 / 3),
            FaultAction::StallBetweenFrames(ms) => {
                if !nap(ms, stop) {
                    break;
                }
                forward(&mut client, &payload)
            }
            FaultAction::ThroughputCliff {
                after_frame,
                ms_per_candidate,
            } => {
                if frame >= after_frame {
                    // Charge per candidate the frame carries, so the
                    // stall tracks the work actually routed here.
                    let count = match decode_response_any(&payload) {
                        Ok((_, Response::TuneShardPart(p), _)) => p.body.count,
                        Ok((_, Response::TuneSharded(t), _)) => t.body.count,
                        _ => 1,
                    };
                    if !nap(count.saturating_mul(ms_per_candidate), stop) {
                        break;
                    }
                }
                forward(&mut client, &payload)
            }
            FaultAction::Drop => unreachable!("Drop closes before any byte moves"),
        };
        frame += 1;
        match sent {
            Ok(true) => continue,
            Ok(false) | Err(_) => break, // fault delivered (or client gone)
        }
    }

    // Sever both halves so the pump exits, then reap it.
    let _ = client.shutdown(Shutdown::Both);
    let _ = upstream.shutdown(Shutdown::Both);
    pump.1.store(true, Ordering::Release);
    let _ = pump.0.join();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_and_finite() {
        let a = FaultPlan::seeded(42, 16);
        let b = FaultPlan::seeded(42, 16);
        for n in 0..20 {
            assert_eq!(a.action(n), b.action(n));
        }
        // Beyond the schedule: always Pass (finitely faulty).
        assert_eq!(a.action(16), FaultAction::Pass);
        assert_eq!(a.action(1_000_000), FaultAction::Pass);
        // Different seeds should differ somewhere in a 16-slot plan.
        let c = FaultPlan::seeded(43, 16);
        assert!((0..16).any(|n| a.action(n) != c.action(n)));
    }

    #[test]
    fn corrupt_digit_flips_exactly_one_digit() {
        let mut payload = b"{\"score\":123}".to_vec();
        let before = payload.clone();
        corrupt_digit(&mut payload);
        let diffs: Vec<usize> = (0..payload.len())
            .filter(|&i| payload[i] != before[i])
            .collect();
        assert_eq!(diffs.len(), 1);
        assert!(before[diffs[0]].is_ascii_digit());
        assert!(payload[diffs[0]].is_ascii_digit());
    }
}
