//! `fm-serve` — run the mapping service daemon.
//!
//! ```text
//! fm-serve [--addr HOST:PORT] [--workers N] [--threads N] [--queue N]
//!          [--deadline-ms MS] [--cache DIR] [--max-frame BYTES]
//! ```
//!
//! The daemon runs until it receives a wire `Shutdown` request, then
//! drains admitted work and exits, printing a final stats summary.

use std::process::ExitCode;

use fm_serve::server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: fm-serve [--addr HOST:PORT] [--workers N] [--threads N] [--queue N]\n\
         \x20               [--deadline-ms MS] [--cache DIR] [--max-frame BYTES]\n\
         \n\
         \x20 --addr HOST:PORT   bind address (default 127.0.0.1:7171; port 0 = ephemeral)\n\
         \x20 --workers N        request worker threads (default 2)\n\
         \x20 --threads N        shared tuner pool threads (default min(cores, 8))\n\
         \x20 --queue N          admission queue capacity (default 64)\n\
         \x20 --deadline-ms MS   default per-request deadline (default none)\n\
         \x20 --cache DIR        persistent tuning cache directory (default off)\n\
         \x20 --max-frame BYTES  largest accepted frame (default 16 MiB)"
    );
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(n) => n,
        None => {
            eprintln!("fm-serve: {flag} needs a numeric argument");
            usage();
        }
    }
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7171".to_string();
    let mut config = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => usage(),
            },
            "--workers" => config.workers = parse_num("--workers", args.next()),
            "--threads" => config.tuner_threads = parse_num("--threads", args.next()),
            "--queue" => config.queue_capacity = parse_num("--queue", args.next()),
            "--deadline-ms" => {
                config.default_deadline_ms = Some(parse_num("--deadline-ms", args.next()))
            }
            "--cache" => match args.next() {
                Some(dir) => config.cache_dir = Some(dir.into()),
                None => usage(),
            },
            "--max-frame" => config.max_frame = parse_num("--max-frame", args.next()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("fm-serve: unknown argument {other:?}");
                usage();
            }
        }
    }

    let handle = match Server::start(&addr, config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("fm-serve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Parseable by scripts (ci.sh greps this line for the port).
    println!("fm-serve listening on {}", handle.local_addr());

    let stats = handle.join();
    println!(
        "fm-serve: drained and exiting — {} requests ({} tune / {} evaluate / {} simulate), \
         {} busy rejections, {} protocol errors, cache hit rate {:.0}%",
        stats.work_received(),
        stats.tune.received,
        stats.evaluate.received,
        stats.simulate.received,
        stats.busy_rejections,
        stats.protocol_errors,
        stats.cache_hit_rate() * 100.0
    );
    ExitCode::SUCCESS
}
