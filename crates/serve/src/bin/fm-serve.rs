//! `fm-serve` — run the mapping service daemon.
//!
//! ```text
//! fm-serve [--addr HOST:PORT] [--workers N] [--threads N] [--queue N]
//!          [--deadline-ms MS] [--cache DIR] [--max-frame BYTES]
//!          [--session-ttl SECS] [--dedup on|off]
//!          [--fleet HOST:PORT,...] [--fleet-attempts N]
//!          [--fleet-connect-ms MS] [--fleet-hedge-ms MS]
//!          [--stream-every K] [--weighted on|off]
//!          [--fleet-admit HOST:PORT,...] [--fleet-ledger PATH]
//!          [--weight-decay-tunes N] [--cliff-fraction F]
//!          [--cliff-stall-ms MS]
//! ```
//!
//! With `--fleet`, this instance becomes a coordinator: eligible
//! `Tune` requests are partitioned across the listed backend shards
//! and merged by `(score, index)`; everything else (and every tune
//! when the shards are down) is served locally.
//!
//! The daemon runs until it receives a wire `Shutdown` request, then
//! drains admitted work and exits, printing a final stats summary.

use std::process::ExitCode;
use std::time::Duration;

use fm_serve::fleet::FleetConfig;
use fm_serve::server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: fm-serve [--addr HOST:PORT] [--workers N] [--threads N] [--queue N]\n\
         \x20               [--deadline-ms MS] [--cache DIR] [--max-frame BYTES]\n\
         \x20               [--session-ttl SECS] [--dedup on|off]\n\
         \x20               [--fleet HOST:PORT,...] [--fleet-attempts N]\n\
         \x20               [--fleet-connect-ms MS] [--fleet-hedge-ms MS]\n\
         \x20               [--stream-every K] [--weighted on|off]\n\
         \x20               [--fleet-admit HOST:PORT,...] [--fleet-ledger PATH]\n\
         \x20               [--weight-decay-tunes N] [--cliff-fraction F]\n\
         \x20               [--cliff-stall-ms MS]\n\
         \n\
         \x20 --addr HOST:PORT   bind address (default 127.0.0.1:7171; port 0 = ephemeral)\n\
         \x20 --workers N        request worker threads (default 2)\n\
         \x20 --threads N        shared tuner pool threads (default min(cores, 8))\n\
         \x20 --queue N          admission queue capacity (default 64)\n\
         \x20 --deadline-ms MS   default per-request deadline (default none)\n\
         \x20 --cache DIR        persistent tuning cache directory (default off)\n\
         \x20 --max-frame BYTES  largest accepted frame (default 16 MiB)\n\
         \x20 --session-ttl SECS evict sessions idle this long; 0 = never (default)\n\
         \x20 --dedup on|off     collapse queued duplicate tunes into one search\n\
         \x20                    and fan the answer back to every waiter (default on)\n\
         \x20 --fleet A,B,...    coordinate tunes across these shard addresses\n\
         \x20 --fleet-attempts N       attempt waves per sub-range before local\n\
         \x20                          fallback (default 3)\n\
         \x20 --fleet-connect-ms MS    per-attempt connect timeout (default 250)\n\
         \x20 --fleet-hedge-ms MS      hedge stragglers after MS; 0 disables\n\
         \x20                          (default 500)\n\
         \x20 --stream-every K         shards stream a sealed partial result every K\n\
         \x20                          evaluated candidates; 0 = classic blocking\n\
         \x20                          replies (default 16)\n\
         \x20 --weighted on|off        size shard ranges by observed per-shard EWMA\n\
         \x20                          throughput instead of equally (default on)\n\
         \x20 --fleet-admit A,B,...    additionally admit these shards at startup\n\
         \x20                          (same as ShardJoin requests; bumps the epoch)\n\
         \x20 --fleet-ledger PATH      persist per-shard EWMA weights + breaker state\n\
         \x20                          to this JSON file across coordinator restarts\n\
         \x20                          (corrupt or stale ledgers fall back to cold)\n\
         \x20 --weight-decay-tunes N   decay a shard's weight toward uniform after N\n\
         \x20                          tunes without a fresh sample; 0 = never\n\
         \x20                          (default 64)\n\
         \x20 --cliff-fraction F       re-dispatch a range's suffix when its shard's\n\
         \x20                          throughput falls below F x trailing peak while\n\
         \x20                          the watermark stalls; 0 disables (default 0.35)\n\
         \x20 --cliff-stall-ms MS      watermark stall before the cliff check fires\n\
         \x20                          (default 200)"
    );
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(n) => n,
        None => {
            eprintln!("fm-serve: {flag} needs a numeric argument");
            usage();
        }
    }
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7171".to_string();
    let mut config = ServerConfig::default();
    let mut fleet_shards: Option<Vec<String>> = None;
    let mut fleet_attempts: Option<u32> = None;
    let mut fleet_connect_ms: Option<u64> = None;
    let mut fleet_hedge_ms: Option<u64> = None;
    let mut stream_every: Option<u64> = None;
    let mut weighted: Option<bool> = None;
    let mut fleet_admit: Option<Vec<String>> = None;
    let mut fleet_ledger: Option<String> = None;
    let mut weight_decay_tunes: Option<u64> = None;
    let mut cliff_fraction: Option<f64> = None;
    let mut cliff_stall_ms: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => usage(),
            },
            "--workers" => config.workers = parse_num("--workers", args.next()),
            "--threads" => config.tuner_threads = parse_num("--threads", args.next()),
            "--queue" => config.queue_capacity = parse_num("--queue", args.next()),
            "--deadline-ms" => {
                config.default_deadline_ms = Some(parse_num("--deadline-ms", args.next()))
            }
            "--cache" => match args.next() {
                Some(dir) => config.cache_dir = Some(dir.into()),
                None => usage(),
            },
            "--max-frame" => config.max_frame = parse_num("--max-frame", args.next()),
            "--session-ttl" => {
                let secs: u64 = parse_num("--session-ttl", args.next());
                config.session_ttl = (secs > 0).then(|| Duration::from_secs(secs));
            }
            "--dedup" => match args.next().as_deref() {
                Some("on") => config.dedup_tunes = true,
                Some("off") => config.dedup_tunes = false,
                _ => {
                    eprintln!("fm-serve: --dedup needs `on` or `off`");
                    usage();
                }
            },
            "--fleet" => match args.next() {
                Some(list) => {
                    let shards: Vec<String> = list
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect();
                    if shards.is_empty() {
                        eprintln!("fm-serve: --fleet needs at least one HOST:PORT");
                        usage();
                    }
                    fleet_shards = Some(shards);
                }
                None => usage(),
            },
            "--fleet-attempts" => fleet_attempts = Some(parse_num("--fleet-attempts", args.next())),
            "--fleet-connect-ms" => {
                fleet_connect_ms = Some(parse_num("--fleet-connect-ms", args.next()))
            }
            "--fleet-hedge-ms" => fleet_hedge_ms = Some(parse_num("--fleet-hedge-ms", args.next())),
            "--stream-every" => stream_every = Some(parse_num("--stream-every", args.next())),
            "--weighted" => match args.next().as_deref() {
                Some("on") => weighted = Some(true),
                Some("off") => weighted = Some(false),
                _ => {
                    eprintln!("fm-serve: --weighted needs `on` or `off`");
                    usage();
                }
            },
            "--fleet-admit" => match args.next() {
                Some(list) => {
                    let extra: Vec<String> = list
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect();
                    if extra.is_empty() {
                        eprintln!("fm-serve: --fleet-admit needs at least one HOST:PORT");
                        usage();
                    }
                    fleet_admit = Some(extra);
                }
                None => usage(),
            },
            "--fleet-ledger" => match args.next() {
                Some(path) => fleet_ledger = Some(path),
                None => usage(),
            },
            "--weight-decay-tunes" => {
                weight_decay_tunes = Some(parse_num("--weight-decay-tunes", args.next()))
            }
            "--cliff-fraction" => cliff_fraction = Some(parse_num("--cliff-fraction", args.next())),
            "--cliff-stall-ms" => cliff_stall_ms = Some(parse_num("--cliff-stall-ms", args.next())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("fm-serve: unknown argument {other:?}");
                usage();
            }
        }
    }

    if let Some(shards) = fleet_shards {
        let mut fleet = FleetConfig::new(shards);
        if let Some(n) = fleet_attempts {
            fleet.attempts = n.max(1);
        }
        if let Some(ms) = fleet_connect_ms {
            fleet.connect_timeout = Duration::from_millis(ms.max(1));
        }
        if let Some(ms) = fleet_hedge_ms {
            fleet.hedge_after = (ms > 0).then(|| Duration::from_millis(ms));
        }
        if let Some(k) = stream_every {
            fleet.stream_every = (k > 0).then_some(k);
        }
        if let Some(w) = weighted {
            fleet.weighted = w;
        }
        if let Some(extra) = fleet_admit {
            fleet.admit = extra;
        }
        if let Some(path) = fleet_ledger {
            fleet.weight_ledger = Some(path.into());
        }
        if let Some(n) = weight_decay_tunes {
            fleet.weight_decay_tunes = n;
        }
        if let Some(f) = cliff_fraction {
            if !(0.0..=1.0).contains(&f) {
                eprintln!("fm-serve: --cliff-fraction needs a value in [0, 1]");
                usage();
            }
            fleet.cliff_fraction = f;
        }
        if let Some(ms) = cliff_stall_ms {
            fleet.cliff_stall = Duration::from_millis(ms.max(1));
        }
        config.fleet = Some(fleet);
    } else if fleet_attempts.is_some()
        || fleet_connect_ms.is_some()
        || fleet_hedge_ms.is_some()
        || stream_every.is_some()
        || weighted.is_some()
        || fleet_admit.is_some()
        || fleet_ledger.is_some()
        || weight_decay_tunes.is_some()
        || cliff_fraction.is_some()
        || cliff_stall_ms.is_some()
    {
        eprintln!("fm-serve: --fleet-* knobs need --fleet HOST:PORT,...");
        usage();
    }

    let fleet_banner = config
        .fleet
        .as_ref()
        .map(|f| format!(" (fleet coordinator over {} shards)", f.shards.len()));
    let handle = match Server::start(&addr, config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("fm-serve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Parseable by scripts (ci.sh greps this line for the port).
    println!(
        "fm-serve listening on {}{}",
        handle.local_addr(),
        fleet_banner.unwrap_or_default()
    );

    let stats = handle.join();
    println!(
        "fm-serve: drained and exiting — {} requests ({} tune / {} shard / {} evaluate / \
         {} simulate), {} busy rejections, {} protocol errors, cache hit rate {:.0}%, \
         {} sessions opened ({} edits, {} warm / {} cold re-tunes, {} evicted)",
        stats.work_received(),
        stats.tune.received,
        stats.tune_shard.received,
        stats.evaluate.received,
        stats.simulate.received,
        stats.busy_rejections,
        stats.protocol_errors,
        stats.cache_hit_rate() * 100.0,
        stats.sessions.opened,
        stats.sessions.edits_applied,
        stats.sessions.warm_tunes,
        stats.sessions.cold_tunes,
        stats.sessions.evicted
    );
    println!(
        "fm-serve: wire — {} binary connections, {} binary / {} json requests, \
         pipeline in-flight peak {}, {} dedup batches serving {} extra waiters",
        stats.binary_connections,
        stats.binary_requests,
        stats.json_requests,
        stats.inflight_peak,
        stats.dedup_batches,
        stats.dedup_waiters_served
    );
    if let Some(fleet) = &stats.fleet {
        let weights: Vec<String> = fleet
            .shards
            .iter()
            .map(|s| {
                let mark = if s.departed { "!" } else { "" };
                format!("{}{}={}", mark, s.addr, s.weight_source)
            })
            .collect();
        println!(
            "fm-serve: fleet — epoch {}, {} members ({} joins / {} leaves), {} tunes, \
             {} hedges, {} cliff / {} departed suffix re-dispatches, \
             {} cliff quarantines, weight sources [{}]",
            fleet.membership_epoch,
            fleet.members,
            fleet.joins,
            fleet.leaves,
            fleet.fleet_tunes,
            fleet.hedges,
            fleet.cliff_redispatches,
            fleet.departed_redispatches,
            fleet.cliff_quarantines,
            weights.join(", ")
        );
    }
    ExitCode::SUCCESS
}
