//! The daemon: acceptor, bounded admission queue, worker pool,
//! deadlines, cancellation, and graceful drain.
//!
//! ```text
//!                    ┌────────────────────────── Shared ───────────────────────────┐
//!  client ──TCP──▶ acceptor ──▶ connection thread ──try_admit──▶ [bounded queue]   │
//!                    │           │  ▲                              │                │
//!                    │           │  └── reply (mpsc) ◀── worker ◀──┘               │
//!                    │           └── full → `Busy` (never buffered)                │
//!                    │               metrics ◀── everyone                          │
//!                    └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Design rules, in order:
//!
//! * **bounded memory** — a request is either executing, in the
//!   fixed-capacity queue, or refused with [`Response::Busy`]; there is
//!   no unbounded buffer anywhere (frames are length-checked before
//!   they are read, the queue before it is pushed);
//! * **deadlines propagate** — a request's `deadline_ms` becomes a
//!   tuner [`Budget::deadline`](fm_autotune::Budget) *and* a
//!   [`CancelToken`] latched by the connection thread's watchdog, so an
//!   expired or disconnected client stops burning cores between
//!   candidate evaluations and still receives its best-so-far partial
//!   result (if it is still connected to read it);
//! * **drain, then exit** — shutdown closes admission first; admitted
//!   requests run to completion and their replies are delivered before
//!   any thread exits.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use fm_autotune::{Budget, CacheStatus, CancelToken, Tuner, TuningCache};
use fm_core::cost::Evaluator;
use fm_core::legality::check;
use fm_core::search::MappingCandidate;
use fm_costmodel::CostModelKind;
use fm_grid::{SimConfig, Simulator};
use fm_workspan::ThreadPool;

use crate::fleet::{Fleet, FleetConfig};
use crate::metrics::{Metrics, StatsReply};
use crate::protocol::{
    decode_request_any, encode_response_binary, queue_frame, write_frame, write_response,
    BusyReply, EvaluateReply, EvaluateRequest, FailReply, HelloAckReply, MembershipReply,
    NoSuchSessionReply, Request, Response, SessionCloseRequest, SessionClosedReply,
    SessionEditRequest, SessionEditedReply, SessionOpenRequest, SessionOpenedReply,
    SessionTuneRequest, SessionTunedReply, ShardBest, SimulateReply, SimulateRequest, TuneReply,
    TuneRequest, TuneShardBody, TuneShardPart, TuneShardPartBody, TuneShardReply, TuneShardRequest,
    WireError, DEFAULT_MAX_FRAME, PROTOCOL_BINARY_VERSION, READ_CHUNK,
};
use crate::session::{EditOutcome, SessionRegistry, SessionState};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing admitted requests (each `Tune`
    /// additionally fans candidates across the shared tuner pool).
    pub workers: usize,
    /// Threads in the shared `fm-workspan` pool reused across requests.
    pub tuner_threads: usize,
    /// Admission-queue capacity: requests beyond this are refused with
    /// `Busy`, never buffered.
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Directory for the persistent tuning cache shared by `Tune`
    /// requests with `use_cache`; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Largest accepted frame payload.
    pub max_frame: usize,
    /// Run as a fleet coordinator over these shards: eligible `Tune`
    /// requests are partitioned across the backends and merged (see
    /// [`crate::fleet`]). `None` serves every request locally.
    pub fleet: Option<FleetConfig>,
    /// Scripted per-candidate slowdown for `TuneShard` work, in
    /// milliseconds: a bench/chaos hook that makes *this* server a
    /// deterministic straggler. Applied identically on the blocking and
    /// streaming paths (it models slow compute, not slow frames), so
    /// comparisons between the two stay fair. `None` in production.
    pub straggle_ms_per_candidate: Option<u64>,
    /// Evict sessions idle for at least this long (no edit, tune, or
    /// close touched them). `None` keeps sessions until closed — fine
    /// for trusted clients, a leak under crash-prone ones.
    pub session_ttl: Option<Duration>,
    /// Coalesce queued `Tune` requests with identical content (same
    /// graph, machine, objective, candidates, and search knobs —
    /// deadlines excluded) into one search whose result fans out to
    /// every waiter. The search is deterministic, so the waiters get
    /// bit-identical winners to the searches they skipped. The batch
    /// runs under the *first* request's cancellation token; a waiter
    /// disconnecting does not stop it.
    pub dedup_tunes: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ServerConfig {
            workers: 2,
            tuner_threads: cores.min(8),
            queue_capacity: 64,
            default_deadline_ms: None,
            cache_dir: None,
            max_frame: DEFAULT_MAX_FRAME,
            fleet: None,
            straggle_ms_per_candidate: None,
            session_ttl: None,
            dedup_tunes: true,
        }
    }
}

/// Where a job's responses go: the reply channel of the connection
/// that admitted it, tagged with the request's correlation id so a
/// pipelined connection can match out-of-order completions. Blocking
/// (JSON) connections use a per-request channel and correlation id 0.
#[derive(Clone)]
struct Reply {
    corr: u64,
    tx: mpsc::Sender<(u64, Response)>,
}

impl Reply {
    /// Deliver the response; `false` means the connection side is gone
    /// (the reply is dropped, never an error for the worker).
    fn send(&self, resp: Response) -> bool {
        self.tx.send((self.corr, resp)).is_ok()
    }
}

/// One admitted request, waiting for (or undergoing) execution.
struct Job {
    request: Request,
    accepted: Instant,
    deadline: Option<Instant>,
    cancel: CancelToken,
    /// Dedup key for queued `Tune` coalescing: content hash plus the
    /// full canonical string (equality is checked on the string, so an
    /// FNV collision can never merge two different searches).
    fingerprint: Option<(u64, Arc<String>)>,
    reply: Reply,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Shared {
    config: ServerConfig,
    metrics: Metrics,
    pool: ThreadPool,
    cache: Option<TuningCache>,
    fleet: Option<Arc<Fleet>>,
    sessions: SessionRegistry,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
    conn_handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Idempotently begin the drain: close admission, wake everyone.
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        {
            let mut q = self.queue.lock();
            q.closed = true;
        }
        self.queue_cv.notify_all();
        // Unblock the acceptor's blocking accept() with a throwaway
        // connection; it re-checks the flag on wake.
        let _ = TcpStream::connect(self.local_addr);
    }

    /// Push unless full or closed; `false` means refused (the job is
    /// dropped — it was never buffered).
    fn try_admit(&self, job: Job) -> bool {
        let depth = {
            let mut q = self.queue.lock();
            if q.closed || q.jobs.len() >= self.config.queue_capacity {
                return false;
            }
            q.jobs.push_back(job);
            q.jobs.len()
        };
        self.metrics.queue_pushed(depth);
        self.queue_cv.notify_one();
        true
    }

    /// Blocking pop; `None` once the queue is closed *and* empty (the
    /// drain guarantee: every admitted job is handed to a worker).
    fn pop(&self) -> Option<Job> {
        let mut q = self.queue.lock();
        loop {
            if let Some(job) = q.jobs.pop_front() {
                let depth = q.jobs.len();
                drop(q);
                self.metrics.queue_popped(depth);
                return Some(job);
            }
            if q.closed {
                return None;
            }
            self.queue_cv.wait_for(&mut q, Duration::from_millis(100));
        }
    }

    /// Remove every queued job whose dedup fingerprint equals `key`
    /// (hash *and* canonical string — a hash collision never merges
    /// two different searches). The caller answers them all from one
    /// execution.
    fn take_matching(&self, key: &(u64, Arc<String>)) -> Vec<Job> {
        let mut taken = Vec::new();
        let depth = {
            let mut q = self.queue.lock();
            let mut kept = VecDeque::with_capacity(q.jobs.len());
            for job in q.jobs.drain(..) {
                let dup = job
                    .fingerprint
                    .as_ref()
                    .is_some_and(|(h, s)| *h == key.0 && **s == *key.1);
                if dup {
                    taken.push(job);
                } else {
                    kept.push_back(job);
                }
            }
            q.jobs = kept;
            q.jobs.len()
        };
        if !taken.is_empty() {
            self.metrics.queue_popped(depth);
        }
        taken
    }
}

/// Dedup key for a queued `Tune`: FNV-1a over a canonical rendering of
/// everything that determines the search result — the same components
/// the tuning cache fingerprints — plus the admission knobs that shape
/// the reply. Deadlines are deliberately excluded: two callers asking
/// the same question with different patience still share one search.
fn tune_dedup_key(req: &TuneRequest) -> (u64, Arc<String>) {
    let mut text = String::new();
    for part in [
        serde_json::to_string(&req.graph).expect("graph serializes"),
        serde_json::to_string(&req.machine).expect("machine serializes"),
        serde_json::to_string(&req.fom).expect("fom serializes"),
        serde_json::to_string(&req.candidates).expect("candidates serialize"),
        serde_json::to_string(&req.max_candidates).expect("budget serializes"),
        serde_json::to_string(&req.convergence_window).expect("budget serializes"),
        serde_json::to_string(&req.refinement).expect("refinement serializes"),
        serde_json::to_string(&req.use_cache).expect("flag serializes"),
        serde_json::to_string(&req.cost_model).expect("cost model serializes"),
    ] {
        text.push_str(&part);
        text.push('\u{1}');
    }
    (crate::protocol::fnv1a64(text.as_bytes()), Arc::new(text))
}

/// Resolve a request's optional `cost_model` name. Unknown names are a
/// typed refusal (kind `"cost-model"`), never a silent fall-back to
/// the default — a client asking for a model this server doesn't
/// implement must find out, not get analytic numbers labeled as
/// something else.
fn parse_cost_model(name: Option<&str>) -> Result<CostModelKind, FailReply> {
    match name {
        None => Ok(CostModelKind::Analytic),
        Some(n) => CostModelKind::from_name(n).ok_or_else(|| FailReply {
            kind: "cost-model".to_string(),
            error: format!("unknown cost model {n:?} (expected analytic, roofline, or spatial)"),
        }),
    }
}

/// Apply a `ShardJoin`/`ShardLeave` to the fleet roster. Handled
/// inline (never queued), like `Stats`: membership changes must land
/// even — especially — when the admission queue is saturated with work
/// for the very shard that is leaving. On a non-coordinator server the
/// request is a typed refusal.
fn membership_change(shared: &Shared, addr: &str, join: bool) -> Response {
    let Some(fleet) = &shared.fleet else {
        return Response::Failed(FailReply {
            kind: "illegal".to_string(),
            error: "not a fleet coordinator (start with --fleet)".to_string(),
        });
    };
    let (epoch, changed) = if join {
        fleet.admit(addr)
    } else {
        fleet.retire(addr)
    };
    Response::Membership(MembershipReply {
        epoch,
        members: fleet.members(),
        changed,
    })
}

/// A running server. Obtain with [`Server::start`]; stop with
/// [`ServerHandle::shutdown`] + [`ServerHandle::join`] (or a wire
/// [`Request::Shutdown`]).
pub struct Server;

/// Handle to a running server.
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start the
    /// acceptor and worker threads.
    pub fn start(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let cache = config.cache_dir.as_ref().and_then(TuningCache::open);
        let fleet = config.fleet.clone().map(Fleet::new);
        let metrics = Metrics::default();
        if let Some(f) = &fleet {
            metrics.set_fleet(f.metrics());
        }
        let shared = Arc::new(Shared {
            pool: ThreadPool::with_threads(config.tuner_threads.max(1)),
            metrics,
            cache,
            fleet,
            sessions: SessionRegistry::default(),
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            local_addr,
            conn_handles: Mutex::new(Vec::new()),
            config,
        });

        let mut workers: Vec<JoinHandle<()>> = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fm-serve-worker-{i}"))
                    .spawn(move || worker_main(&shared))
                    .expect("spawn worker")
            })
            .collect();

        // Idle-session sweeper: wakes a few times per TTL (but at
        // least every 500 ms, so shutdown join is never held hostage
        // by a long TTL) and evicts sessions untouched for a full TTL.
        if let Some(ttl) = shared.config.session_ttl {
            let shared = Arc::clone(&shared);
            let tick = (ttl / 4).clamp(Duration::from_millis(25), Duration::from_millis(500));
            workers.push(
                std::thread::Builder::new()
                    .name("fm-serve-session-sweeper".to_string())
                    .spawn(move || {
                        while !shared.is_shutdown() {
                            std::thread::sleep(tick);
                            let evicted = shared.sessions.evict_idle(ttl);
                            if evicted > 0 {
                                let s = &shared.metrics.sessions;
                                s.evicted.fetch_add(evicted, Ordering::Relaxed);
                                s.open.fetch_sub(evicted, Ordering::Relaxed);
                            }
                        }
                    })
                    .expect("spawn session sweeper"),
            );
        }

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fm-serve-acceptor".to_string())
                .spawn(move || acceptor_main(&shared, listener))
                .expect("spawn acceptor")
        };

        Ok(ServerHandle {
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

impl ServerHandle {
    /// The bound address (with the actual port when 0 was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Live metrics snapshot (same data as the `Stats` endpoint).
    pub fn stats(&self) -> StatsReply {
        self.shared
            .metrics
            .snapshot(self.shared.config.queue_capacity)
    }

    /// Begin the graceful drain (idempotent, non-blocking): admission
    /// closes immediately, admitted requests still complete.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Wait for the server to finish: blocks until shutdown is
    /// triggered (by [`ServerHandle::shutdown`] or a wire
    /// [`Request::Shutdown`]), the queue drains, every reply is
    /// delivered, and all threads exit. Returns the final stats.
    pub fn join(mut self) -> StatsReply {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        loop {
            let handle = self.shared.conn_handles.lock().pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.shared
            .metrics
            .snapshot(self.shared.config.queue_capacity)
    }

    /// Convenience: trigger the drain and wait it out.
    pub fn shutdown_and_join(self) -> StatsReply {
        self.shutdown();
        self.join()
    }
}

fn acceptor_main(shared: &Arc<Shared>, listener: TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.is_shutdown() {
                    break;
                }
                shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                let shared2 = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("fm-serve-conn".to_string())
                    .spawn(move || handle_connection(&shared2, stream))
                    .expect("spawn connection thread");
                shared.conn_handles.lock().push(handle);
            }
            Err(_) => {
                if shared.is_shutdown() {
                    break;
                }
            }
        }
    }
}

/// Why the connection read loop stopped.
enum ReadStop {
    /// Peer closed cleanly at a frame boundary.
    Closed,
    /// Server is draining (or the peer stalled mid-frame during it).
    Shutdown,
    /// Framing/decoding failure (reported to the peer, then closed).
    Protocol(WireError),
}

/// Read one frame, polling the shutdown flag between read timeouts so
/// idle connections exit promptly during a drain.
fn read_frame_polling(stream: &mut TcpStream, shared: &Shared) -> Result<Vec<u8>, ReadStop> {
    use std::io::Read as _;

    let mut header = [0u8; 4];
    let mut have = 0usize;
    // (buf, filled, total length): buf grows by READ_CHUNK steps as
    // bytes actually land — a length prefix alone never commits the
    // memory it claims (see `protocol::read_frame`).
    let mut payload: Option<(Vec<u8>, usize, usize)> = None;
    loop {
        if shared.is_shutdown() {
            return Err(ReadStop::Shutdown);
        }
        let in_header = payload.is_none();
        let (read, filled, expected) = match &mut payload {
            None => (stream.read(&mut header[have..]), &mut have, 4),
            Some((b, f, len)) => {
                if *f == b.len() {
                    let grow = (*len).min(*f + READ_CHUNK);
                    b.resize(grow, 0);
                }
                let len = *len;
                (stream.read(&mut b[*f..]), f, len)
            }
        };
        match read {
            Ok(0) => {
                return if in_header && *filled == 0 {
                    Err(ReadStop::Closed)
                } else {
                    Err(ReadStop::Protocol(WireError::Truncated {
                        expected,
                        got: *filled,
                    }))
                };
            }
            Ok(n) => {
                *filled += n;
                if *filled == expected {
                    match payload.take() {
                        None => {
                            let len = u32::from_be_bytes(header) as usize;
                            if len > shared.config.max_frame {
                                return Err(ReadStop::Protocol(WireError::Oversized {
                                    len,
                                    max: shared.config.max_frame,
                                }));
                            }
                            // A zero-length payload is complete already.
                            if len == 0 {
                                return Ok(Vec::new());
                            }
                            payload = Some((vec![0u8; len.min(READ_CHUNK)], 0, len));
                        }
                        Some((buf, _, _)) => return Ok(buf),
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue; // poll the shutdown flag, then retry
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ReadStop::Protocol(WireError::Io(e))),
        }
    }
}

/// Is the peer's read half gone? (Non-blocking 1-byte peek: `Ok(0)`
/// means orderly shutdown from the other side.)
fn peer_gone(stream: &TcpStream) -> bool {
    let mut probe = [0u8; 1];
    let _ = stream.set_nonblocking(true);
    let gone = matches!(stream.peek(&mut probe), Ok(0));
    let _ = stream.set_nonblocking(false);
    gone
}

/// Write one response in the encoding of the request that provoked it:
/// a binary-framed request gets a binary reply carrying its
/// correlation id, a JSON request gets classic JSON. Blocking
/// connections never mix encodings within one request/reply exchange.
fn write_reply(
    stream: &mut impl std::io::Write,
    corr: u64,
    resp: &Response,
    binary: bool,
) -> std::io::Result<()> {
    if binary {
        write_frame(stream, &encode_response_binary(corr, resp))
    } else {
        write_response(stream, resp)
    }
}

/// Wait for the worker's reply while watching the deadline and the
/// socket. Streamed [`Response::TuneShardPart`] frames are forwarded
/// to the peer as they arrive; the loop keeps waiting for the terminal
/// response. Returns `None` when the client disconnected (nobody left
/// to reply to); the worker's eventual send then fails harmlessly.
fn wait_for_reply(
    stream: &TcpStream,
    rx: &mpsc::Receiver<(u64, Response)>,
    deadline: Option<Instant>,
    cancel: &CancelToken,
    shared: &Shared,
    binary: bool,
) -> Option<Response> {
    loop {
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok((corr, part @ Response::TuneShardPart(_))) => {
                // `&TcpStream` is `Write`; the terminal reply is
                // written by this same thread after the loop, so part
                // and terminal frames never interleave.
                let mut w = stream;
                if write_reply(&mut w, corr, &part, binary).is_err() {
                    if !cancel.is_cancelled() {
                        shared.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
                        cancel.cancel();
                    }
                    return None;
                }
            }
            Ok((_, resp)) => return Some(resp),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if let Some(d) = deadline {
                    if Instant::now() >= d && !cancel.is_cancelled() {
                        shared.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
                        cancel.cancel();
                    }
                }
                if peer_gone(stream) {
                    if !cancel.is_cancelled() {
                        shared.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
                        cancel.cancel();
                    }
                    return None;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Some(Response::Failed(FailReply {
                    kind: "internal".to_string(),
                    error: "worker dropped the request".to_string(),
                }))
            }
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));

    loop {
        let payload = match read_frame_polling(&mut stream, shared) {
            Ok(p) => p,
            Err(ReadStop::Closed) | Err(ReadStop::Shutdown) => return,
            Err(ReadStop::Protocol(e)) => {
                shared
                    .metrics
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let _ = write_response(
                    &mut stream,
                    &Response::Failed(FailReply {
                        kind: "protocol".to_string(),
                        error: e.to_string(),
                    }),
                );
                return; // framing state is unrecoverable; close
            }
        };
        let (corr, request, was_binary) = match decode_request_any(&payload) {
            Ok(t) => t,
            Err(e) => {
                shared
                    .metrics
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let _ = write_response(
                    &mut stream,
                    &Response::Failed(FailReply {
                        kind: "protocol".to_string(),
                        error: e.to_string(),
                    }),
                );
                return;
            }
        };
        if was_binary {
            shared
                .metrics
                .binary_requests
                .fetch_add(1, Ordering::Relaxed);
        } else {
            shared.metrics.json_requests.fetch_add(1, Ordering::Relaxed);
        }

        match request {
            // Version negotiation: meet the client at the highest
            // version both sides speak. Pipelining needs the binary
            // envelope (correlation ids live in its header), so a
            // pipeline request only sticks when a binary version was
            // agreed.
            Request::Hello(h) => {
                let version = h.max_version.min(PROTOCOL_BINARY_VERSION);
                let pipeline = h.pipeline && version > 0;
                let ack = Response::HelloAck(HelloAckReply { version, pipeline });
                if write_reply(&mut stream, corr, &ack, was_binary).is_err() {
                    return;
                }
                if version > 0 {
                    shared
                        .metrics
                        .binary_connections
                        .fetch_add(1, Ordering::Relaxed);
                }
                if pipeline {
                    pipelined_connection(shared, stream);
                    return;
                }
            }
            Request::Ping => {
                let ep = &shared.metrics.ping;
                ep.received.fetch_add(1, Ordering::Relaxed);
                ep.completed.fetch_add(1, Ordering::Relaxed);
                if write_reply(&mut stream, corr, &Response::Pong, was_binary).is_err() {
                    return;
                }
            }
            // Stats bypasses admission entirely: it must answer even —
            // especially — when the queue is full.
            Request::Stats => {
                let t0 = Instant::now();
                let ep = &shared.metrics.stats;
                ep.received.fetch_add(1, Ordering::Relaxed);
                let snap = shared.metrics.snapshot(shared.config.queue_capacity);
                ep.completed.fetch_add(1, Ordering::Relaxed);
                ep.latency.record(t0.elapsed());
                let resp = Response::Stats(Box::new(snap));
                if write_reply(&mut stream, corr, &resp, was_binary).is_err() {
                    return;
                }
            }
            Request::ShardJoin(j) => {
                let resp = membership_change(shared, &j.addr, true);
                if write_reply(&mut stream, corr, &resp, was_binary).is_err() {
                    return;
                }
            }
            Request::ShardLeave(l) => {
                let resp = membership_change(shared, &l.addr, false);
                if write_reply(&mut stream, corr, &resp, was_binary).is_err() {
                    return;
                }
            }
            Request::Shutdown => {
                let _ = write_reply(&mut stream, corr, &Response::ShuttingDown, was_binary);
                shared.begin_shutdown();
                return;
            }
            work @ (Request::Tune(_)
            | Request::TuneShard(_)
            | Request::Evaluate(_)
            | Request::Simulate(_)
            | Request::SessionOpen(_)
            | Request::SessionEdit(_)
            | Request::SessionTune(_)
            | Request::SessionClose(_)) => {
                let endpoint = shared.metrics.endpoint(work.endpoint());
                endpoint.received.fetch_add(1, Ordering::Relaxed);
                if shared.is_shutdown() {
                    let _ = write_response(&mut stream, &Response::ShuttingDown);
                    return;
                }
                let accepted = Instant::now();
                let deadline = work_deadline_ms(&work, shared.config.default_deadline_ms)
                    .map(|ms| accepted + Duration::from_millis(ms));
                let cancel = CancelToken::new();
                let fingerprint = match &work {
                    Request::Tune(t) if shared.config.dedup_tunes => Some(tune_dedup_key(t)),
                    _ => None,
                };
                let (tx, rx) = mpsc::channel::<(u64, Response)>();
                let job = Job {
                    request: work,
                    accepted,
                    deadline,
                    cancel: cancel.clone(),
                    fingerprint,
                    reply: Reply { corr, tx },
                };
                if shared.try_admit(job) {
                    match wait_for_reply(&stream, &rx, deadline, &cancel, shared, was_binary) {
                        Some(resp) => {
                            if write_reply(&mut stream, corr, &resp, was_binary).is_err() {
                                return;
                            }
                        }
                        None => return, // client gone; close
                    }
                } else {
                    shared
                        .metrics
                        .busy_rejections
                        .fetch_add(1, Ordering::Relaxed);
                    let resp = if shared.is_shutdown() {
                        Response::ShuttingDown
                    } else {
                        Response::Busy(BusyReply {
                            queue_depth: shared.config.queue_capacity as u64,
                            queue_capacity: shared.config.queue_capacity as u64,
                        })
                    };
                    if write_reply(&mut stream, corr, &resp, was_binary).is_err() {
                        return;
                    }
                }
            }
        }
    }
}

/// The effective deadline for a work request: its own `deadline_ms` if
/// present, else the server default. Open/edit/close are bookkeeping,
/// not searches: they run to completion rather than racing a default
/// deadline into a half-opened session.
fn work_deadline_ms(work: &Request, default_ms: Option<u64>) -> Option<u64> {
    match work {
        Request::Tune(t) => t.deadline_ms.or(default_ms),
        Request::TuneShard(t) => t.deadline_ms.or(default_ms),
        Request::Evaluate(e) => e.deadline_ms.or(default_ms),
        Request::Simulate(s) => s.deadline_ms.or(default_ms),
        Request::SessionTune(t) => t.deadline_ms.or(default_ms),
        Request::SessionOpen(_) | Request::SessionEdit(_) | Request::SessionClose(_) => None,
        _ => unreachable!("only work requests reach here"),
    }
}

/// Pipelined mode, entered when `Hello` negotiates `pipeline = true`.
///
/// The connection splits in two: this thread keeps reading frames and
/// admitting them (so many requests are in flight at once), and a
/// dedicated writer thread owns the socket's write half, matching
/// completions back by the correlation id each binary envelope
/// carries. Replies arrive in *completion* order, not request order.
///
/// In-flight requests live in a corr → [`CancelToken`] map shared with
/// the writer: the reader inserts before admission, the writer removes
/// when the terminal reply is queued (streamed `TuneShardPart` frames
/// keep the entry alive). The map is the connection's drain ledger —
/// on a client disconnect every live token is cancelled; on `Shutdown`
/// the connection lingers until the map empties so every admitted
/// request's reply is actually written before the socket closes.
fn pipelined_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<(u64, Response)>();
    let inflight: Arc<Mutex<HashMap<u64, CancelToken>>> = Arc::new(Mutex::new(HashMap::new()));
    let writer = {
        let inflight = Arc::clone(&inflight);
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name("fm-serve-pipe-writer".to_string())
            .spawn(move || pipelined_writer(&shared, write_half, &rx, &inflight))
            .expect("spawn pipeline writer")
    };

    let mut draining = false;
    loop {
        let payload = match read_frame_polling(&mut stream, shared) {
            Ok(p) => p,
            Err(ReadStop::Closed) => break,
            Err(ReadStop::Shutdown) => {
                // Server-wide drain: stop reading, but deliver every
                // admitted reply before closing.
                draining = true;
                break;
            }
            Err(ReadStop::Protocol(e)) => {
                shared
                    .metrics
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let _ = tx.send((
                    0,
                    Response::Failed(FailReply {
                        kind: "protocol".to_string(),
                        error: e.to_string(),
                    }),
                ));
                break;
            }
        };
        let (corr, request, was_binary) = match decode_request_any(&payload) {
            Ok(t) => t,
            Err(e) => {
                shared
                    .metrics
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let _ = tx.send((
                    corr_of(&payload),
                    Response::Failed(FailReply {
                        kind: "protocol".to_string(),
                        error: e.to_string(),
                    }),
                ));
                break;
            }
        };
        if was_binary {
            shared
                .metrics
                .binary_requests
                .fetch_add(1, Ordering::Relaxed);
        } else {
            shared.metrics.json_requests.fetch_add(1, Ordering::Relaxed);
        }

        match request {
            // A repeated Hello mid-stream is just re-acked; the
            // connection already committed to binary + pipelining.
            Request::Hello(h) => {
                let version = h.max_version.min(PROTOCOL_BINARY_VERSION);
                let ack = Response::HelloAck(HelloAckReply {
                    version,
                    pipeline: h.pipeline && version > 0,
                });
                if tx.send((corr, ack)).is_err() {
                    break;
                }
            }
            Request::Ping => {
                let ep = &shared.metrics.ping;
                ep.received.fetch_add(1, Ordering::Relaxed);
                ep.completed.fetch_add(1, Ordering::Relaxed);
                if tx.send((corr, Response::Pong)).is_err() {
                    break;
                }
            }
            Request::Stats => {
                let t0 = Instant::now();
                let ep = &shared.metrics.stats;
                ep.received.fetch_add(1, Ordering::Relaxed);
                let snap = shared.metrics.snapshot(shared.config.queue_capacity);
                ep.completed.fetch_add(1, Ordering::Relaxed);
                ep.latency.record(t0.elapsed());
                if tx.send((corr, Response::Stats(Box::new(snap)))).is_err() {
                    break;
                }
            }
            Request::ShardJoin(j) => {
                let resp = membership_change(shared, &j.addr, true);
                if tx.send((corr, resp)).is_err() {
                    break;
                }
            }
            Request::ShardLeave(l) => {
                let resp = membership_change(shared, &l.addr, false);
                if tx.send((corr, resp)).is_err() {
                    break;
                }
            }
            Request::Shutdown => {
                let _ = tx.send((corr, Response::ShuttingDown));
                shared.begin_shutdown();
                draining = true;
                break;
            }
            work @ (Request::Tune(_)
            | Request::TuneShard(_)
            | Request::Evaluate(_)
            | Request::Simulate(_)
            | Request::SessionOpen(_)
            | Request::SessionEdit(_)
            | Request::SessionTune(_)
            | Request::SessionClose(_)) => {
                let endpoint = shared.metrics.endpoint(work.endpoint());
                endpoint.received.fetch_add(1, Ordering::Relaxed);
                if shared.is_shutdown() {
                    let _ = tx.send((corr, Response::ShuttingDown));
                    draining = true;
                    break;
                }
                let accepted = Instant::now();
                let deadline = work_deadline_ms(&work, shared.config.default_deadline_ms)
                    .map(|ms| accepted + Duration::from_millis(ms));
                let cancel = CancelToken::new();
                let fingerprint = match &work {
                    Request::Tune(t) if shared.config.dedup_tunes => Some(tune_dedup_key(t)),
                    _ => None,
                };
                let depth = {
                    let mut map = inflight.lock();
                    map.insert(corr, cancel.clone());
                    map.len() as u64
                };
                shared
                    .metrics
                    .inflight_peak
                    .fetch_max(depth, Ordering::Relaxed);
                let job = Job {
                    request: work,
                    accepted,
                    deadline,
                    cancel,
                    fingerprint,
                    reply: Reply {
                        corr,
                        tx: tx.clone(),
                    },
                };
                if !shared.try_admit(job) {
                    inflight.lock().remove(&corr);
                    shared
                        .metrics
                        .busy_rejections
                        .fetch_add(1, Ordering::Relaxed);
                    let resp = if shared.is_shutdown() {
                        Response::ShuttingDown
                    } else {
                        Response::Busy(BusyReply {
                            queue_depth: shared.config.queue_capacity as u64,
                            queue_capacity: shared.config.queue_capacity as u64,
                        })
                    };
                    if tx.send((corr, resp)).is_err() {
                        break;
                    }
                }
            }
        }
    }

    if draining {
        // Wait for the writer to deliver every admitted reply. The
        // writer empties the map itself if the socket dies, so this
        // cannot wait on a dead connection.
        while !inflight.lock().is_empty() {
            std::thread::sleep(Duration::from_millis(5));
        }
    } else {
        // Client is gone: stop burning cores on answers nobody reads.
        let mut map = inflight.lock();
        for (_, cancel) in map.drain() {
            if !cancel.is_cancelled() {
                shared.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
                cancel.cancel();
            }
        }
    }
    drop(tx); // writer's recv() disconnects once workers finish
    let _ = writer.join();
}

/// Best-effort correlation id of a frame that failed to decode, so the
/// protocol error lands on the right in-flight request when possible.
fn corr_of(payload: &[u8]) -> u64 {
    use crate::protocol::{is_binary, BINARY_HEADER};
    if is_binary(payload) && payload.len() >= BINARY_HEADER {
        u64::from_be_bytes(payload[2..10].try_into().expect("8 bytes"))
    } else {
        0
    }
}

/// The write half of a pipelined connection: sole owner of outbound
/// frames. Bursts of completions are coalesced — every message already
/// sitting in the channel is queued into one `BufWriter`, then flushed
/// together — so N small replies cost one syscall, not N.
fn pipelined_writer(
    shared: &Shared,
    stream: TcpStream,
    rx: &mpsc::Receiver<(u64, Response)>,
    inflight: &Mutex<HashMap<u64, CancelToken>>,
) {
    use std::io::Write as _;
    let mut w = std::io::BufWriter::with_capacity(64 << 10, &stream);
    loop {
        let (corr, resp) = match rx.recv() {
            Ok(m) => m,
            Err(_) => {
                // All senders gone: reader exited and every worker
                // reply is delivered. Final flush, then done.
                let _ = w.flush();
                return;
            }
        };
        let mut ok = write_one(&mut w, corr, &resp, inflight);
        while ok {
            match rx.try_recv() {
                Ok((corr, resp)) => ok = write_one(&mut w, corr, &resp, inflight),
                Err(_) => break,
            }
        }
        if !ok || w.flush().is_err() {
            abort_pipeline(shared, &stream, inflight);
            return;
        }
    }
}

/// Queue one reply frame (no flush) and retire its correlation id —
/// unless it is a streamed part, which keeps the request in flight.
fn write_one(
    w: &mut impl std::io::Write,
    corr: u64,
    resp: &Response,
    inflight: &Mutex<HashMap<u64, CancelToken>>,
) -> bool {
    if queue_frame(w, &encode_response_binary(corr, resp)).is_err() {
        return false;
    }
    if !matches!(resp, Response::TuneShardPart(_)) {
        inflight.lock().remove(&corr);
    }
    true
}

/// The socket died under the writer: cancel everything still in
/// flight, empty the ledger (so a draining reader can't wait forever),
/// and slam the read half so the reader wakes promptly.
fn abort_pipeline(
    shared: &Shared,
    stream: &TcpStream,
    inflight: &Mutex<HashMap<u64, CancelToken>>,
) {
    let mut map = inflight.lock();
    for (_, cancel) in map.drain() {
        if !cancel.is_cancelled() {
            shared.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
            cancel.cancel();
        }
    }
    drop(map);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn worker_main(shared: &Arc<Shared>) {
    while let Some(job) = shared.pop() {
        let Job {
            request,
            accepted,
            deadline,
            cancel,
            fingerprint,
            reply,
        } = job;
        let endpoint_name = request.endpoint();

        // A request that expired while queued is not worth starting —
        // except Tune, whose contract is "best effort within the
        // deadline": it still answers, with the fallback mapping.
        let expired = deadline.is_some_and(|d| Instant::now() >= d);
        if expired {
            shared
                .metrics
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            cancel.cancel();
        }

        // Dedup-batched admission: claim every queued Tune asking the
        // identical question *before* running it, then answer them all
        // from the one deterministic search. An expired primary skips
        // the claim — fanning a degraded best-effort fallback out to
        // waiters whose own deadlines may still be generous would
        // trade their correctness for speed.
        let waiters = match (&fingerprint, expired) {
            (Some(key), false) => shared.take_matching(key),
            _ => Vec::new(),
        };

        let response = catch_unwind(AssertUnwindSafe(|| match request {
            Request::Tune(req) => match parse_cost_model(req.cost_model.as_deref()) {
                Err(refusal) => Response::Failed(refusal),
                Ok(_) => match &shared.fleet {
                    Some(fleet) if fleet.eligible(&req) => {
                        Response::Tuned(fleet.tune(&req, &cancel, deadline, &shared.pool))
                    }
                    _ => exec_tune(shared, req, &cancel, deadline),
                },
            },
            Request::TuneShard(req) => exec_tune_shard(shared, req, &cancel, deadline, &reply),
            Request::Evaluate(_) | Request::Simulate(_) if expired => Response::Failed(FailReply {
                kind: "deadline".to_string(),
                error: "deadline expired before execution".to_string(),
            }),
            Request::Evaluate(req) => exec_evaluate(req),
            Request::Simulate(req) => exec_simulate(req),
            Request::SessionOpen(req) => exec_session_open(shared, req),
            Request::SessionEdit(req) => exec_session_edit(shared, req),
            Request::SessionTune(req) => exec_session_tune(shared, req, &cancel, deadline),
            Request::SessionClose(req) => exec_session_close(shared, req),
            other => Response::Failed(FailReply {
                kind: "internal".to_string(),
                error: format!("{} is not a queued request", other.endpoint()),
            }),
        }))
        .unwrap_or_else(|panic| {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "request execution panicked".to_string());
            Response::Failed(FailReply {
                kind: "internal".to_string(),
                error: msg,
            })
        });

        let endpoint = shared.metrics.endpoint(endpoint_name);
        match &response {
            Response::Failed(_) => {
                endpoint.failed.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                endpoint.completed.fetch_add(1, Ordering::Relaxed);
                endpoint.latency.record(accepted.elapsed());
            }
        }
        // Fan the one answer out to every coalesced waiter, with full
        // per-waiter accounting (each was a real admitted request; the
        // books must reconcile exactly as if each had run).
        if !waiters.is_empty() {
            shared.metrics.dedup_batches.fetch_add(1, Ordering::Relaxed);
            shared
                .metrics
                .dedup_waiters_served
                .fetch_add(waiters.len() as u64, Ordering::Relaxed);
            for waiter in &waiters {
                match &response {
                    Response::Failed(_) => {
                        endpoint.failed.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        endpoint.completed.fetch_add(1, Ordering::Relaxed);
                        endpoint.latency.record(waiter.accepted.elapsed());
                    }
                }
                waiter.reply.send(response.clone());
            }
        }
        // The connection thread may have left (disconnect) — then the
        // send fails and the result is simply dropped.
        reply.send(response);
    }
}

fn exec_tune(
    shared: &Shared,
    req: TuneRequest,
    cancel: &CancelToken,
    deadline: Option<Instant>,
) -> Response {
    let TuneRequest {
        graph,
        machine,
        fom,
        candidates,
        max_candidates,
        convergence_window,
        refinement,
        use_cache,
        cost_model,
        ..
    } = req;
    let cost_model = match parse_cost_model(cost_model.as_deref()) {
        Ok(kind) => kind,
        Err(refusal) => return Response::Failed(refusal),
    };
    let evaluator = Evaluator::new(&graph, &machine).with_cost_model(cost_model);
    let candidates: Vec<MappingCandidate> = candidates
        .into_iter()
        .map(|c| MappingCandidate::new(c.label, c.mapping))
        .collect();
    let mut budget = Budget::unlimited();
    if let Some(n) = max_candidates {
        budget.max_candidates = Some(n as usize);
    }
    if let Some(w) = convergence_window {
        budget.convergence_window = Some(w as usize);
    }
    if let Some(d) = deadline {
        budget.deadline = Some(d.saturating_duration_since(Instant::now()));
    }
    let mut tuner = Tuner::new(&evaluator, &graph, &machine, fom)
        .with_pool(&shared.pool)
        .with_budget(budget)
        .with_cancel(cancel.clone());
    if let Some(r) = refinement {
        tuner = tuner.with_refinement(r);
    }
    if use_cache {
        if let Some(cache) = &shared.cache {
            tuner = tuner.with_cache(cache.clone());
        }
    }
    let report = tuner.tune(&candidates);
    if let Some(best) = &report.best {
        let point = evaluator.roofline(&best.report);
        shared
            .metrics
            .cost_models
            .observe(cost_model, &point, &best.report);
    }
    match report.cache {
        CacheStatus::Hit => shared.metrics.cache_hits.fetch_add(1, Ordering::Relaxed),
        CacheStatus::Miss => shared.metrics.cache_misses.fetch_add(1, Ordering::Relaxed),
        CacheStatus::Stale => shared.metrics.cache_stale.fetch_add(1, Ordering::Relaxed),
        CacheStatus::Disabled => 0,
    };
    Response::Tuned(TuneReply {
        best: report.best,
        offered: report.offered as u64,
        evaluated: report.evaluated as u64,
        pruned: report.pruned as u64,
        cache: report.cache.to_string(),
        fell_back: report.fell_back,
        cancelled: report.cancelled,
        wall_ms: report.wall.as_secs_f64() * 1e3,
    })
}

/// Open a session: build the warm cache once from the initial graph and
/// register the state. The per-session budget is fixed at open time so
/// every `SessionTune` against this session searches the same way a
/// cold `Tune` with these knobs would.
fn exec_session_open(shared: &Shared, req: SessionOpenRequest) -> Response {
    let SessionOpenRequest {
        graph,
        machine,
        fom,
        candidates,
        max_candidates,
        convergence_window,
        cost_model,
    } = req;
    let cost_model = match parse_cost_model(cost_model.as_deref()) {
        Ok(kind) => kind,
        Err(refusal) => return Response::Failed(refusal),
    };
    let candidates: Vec<MappingCandidate> = candidates
        .into_iter()
        .map(|c| MappingCandidate::new(c.label, c.mapping))
        .collect();
    let n = candidates.len() as u64;
    let mut budget = Budget::unlimited();
    if let Some(n) = max_candidates {
        budget.max_candidates = Some(n as usize);
    }
    if let Some(w) = convergence_window {
        budget.convergence_window = Some(w as usize);
    }
    let state = SessionState::open(graph, machine, fom, candidates, budget, cost_model);
    let session_id = shared.sessions.open(state);
    shared
        .metrics
        .sessions
        .opened
        .fetch_add(1, Ordering::Relaxed);
    shared.metrics.sessions.open.fetch_add(1, Ordering::Relaxed);
    Response::SessionOpened(SessionOpenedReply {
        session_id,
        epoch: 0,
        candidates: n,
    })
}

/// Apply one sealed edit batch to a session. The checksum gate runs
/// before the session is even looked up — a corrupt batch never
/// touches state. All batch outcomes short of `Applied` leave the
/// session exactly as it was (all-or-nothing, see
/// [`SessionState::apply_batch`]).
fn exec_session_edit(shared: &Shared, req: SessionEditRequest) -> Response {
    if let Err(want) = req.verify() {
        return Response::Failed(FailReply {
            kind: "session".to_string(),
            error: format!(
                "edit batch checksum mismatch: got {:#018x}, recomputed {want:#018x}; \
                 refusing the whole batch",
                req.checksum
            ),
        });
    }
    let Some(slot) = shared.sessions.get(req.session_id) else {
        shared
            .metrics
            .sessions
            .no_such
            .fetch_add(1, Ordering::Relaxed);
        return Response::NoSuchSession(NoSuchSessionReply {
            session_id: req.session_id,
        });
    };
    let mut state = slot.lock();
    match state.apply_batch(req.epoch, &req.edits) {
        EditOutcome::Applied {
            epoch,
            applied,
            cone,
        } => {
            let s = &shared.metrics.sessions;
            s.edit_batches.fetch_add(1, Ordering::Relaxed);
            s.edits_applied.fetch_add(applied, Ordering::Relaxed);
            s.dirty_cone_total.fetch_add(cone, Ordering::Relaxed);
            Response::SessionEdited(SessionEditedReply {
                session_id: req.session_id,
                epoch,
                applied,
                cone,
            })
        }
        EditOutcome::StaleEpoch { got, expected } => Response::Failed(FailReply {
            kind: "session".to_string(),
            error: format!("stale epoch {got} (session is at {expected}); batch not applied"),
        }),
        EditOutcome::Rejected { index, error } => Response::Failed(FailReply {
            kind: "session".to_string(),
            error: format!("edit {index} refused: {error}; batch not applied"),
        }),
    }
}

/// Re-tune a session from its warm cache. Repaired candidate costs make
/// this cheap after small edits; the reply says whether the tune ran
/// fully warm (`rebuilds == 0`) so clients can tell repair apart from
/// a silent cold rebuild.
fn exec_session_tune(
    shared: &Shared,
    req: SessionTuneRequest,
    cancel: &CancelToken,
    deadline: Option<Instant>,
) -> Response {
    let requested = match parse_cost_model(req.cost_model.as_deref()) {
        Ok(kind) => kind,
        Err(refusal) => return Response::Failed(refusal),
    };
    let Some(slot) = shared.sessions.get(req.session_id) else {
        shared
            .metrics
            .sessions
            .no_such
            .fetch_add(1, Ordering::Relaxed);
        return Response::NoSuchSession(NoSuchSessionReply {
            session_id: req.session_id,
        });
    };
    let mut state = slot.lock();
    // The backend is baked at open: warm per-candidate scores are only
    // comparable under the model that produced them, so a mid-session
    // switch is refused rather than silently re-ranked.
    if req.cost_model.is_some() && requested != state.cost_model() {
        return Response::Failed(FailReply {
            kind: "cost-model".to_string(),
            error: format!(
                "session {} was opened under cost model {:?} but the tune asked for {:?}; \
                 open a new session to switch models",
                req.session_id,
                state.cost_model().name(),
                requested.name()
            ),
        });
    }
    let out = state.tune(deadline, cancel);
    let s = &shared.metrics.sessions;
    if out.warm {
        s.warm_tunes.fetch_add(1, Ordering::Relaxed);
    } else {
        s.cold_tunes.fetch_add(1, Ordering::Relaxed);
        s.cold_rebuilds.fetch_add(out.rebuilds, Ordering::Relaxed);
    }
    let report = out.report;
    if let Some(best) = &report.best {
        let point = state.roofline(&best.report);
        shared
            .metrics
            .cost_models
            .observe(state.cost_model(), &point, &best.report);
    }
    Response::SessionTuned(Box::new(SessionTunedReply {
        session_id: req.session_id,
        epoch: out.epoch,
        warm: out.warm,
        rebuilds: out.rebuilds,
        reply: TuneReply {
            best: report.best,
            offered: report.offered as u64,
            evaluated: report.evaluated as u64,
            pruned: report.pruned as u64,
            cache: report.cache.to_string(),
            fell_back: report.fell_back,
            cancelled: report.cancelled,
            wall_ms: report.wall.as_secs_f64() * 1e3,
        },
    }))
}

/// Close a session and report its lifetime tallies. Closing an unknown
/// (or already-evicted) id is the same typed miss as editing one.
fn exec_session_close(shared: &Shared, req: SessionCloseRequest) -> Response {
    match shared.sessions.remove(req.session_id) {
        Some(slot) => {
            let state = slot.lock();
            let s = &shared.metrics.sessions;
            s.closed.fetch_add(1, Ordering::Relaxed);
            s.open.fetch_sub(1, Ordering::Relaxed);
            Response::SessionClosed(SessionClosedReply {
                session_id: req.session_id,
                epoch: state.epoch,
                edits_applied: state.edits_applied,
                tunes: state.tunes,
            })
        }
        None => {
            shared
                .metrics
                .sessions
                .no_such
                .fetch_add(1, Ordering::Relaxed);
            Response::NoSuchSession(NoSuchSessionReply {
                session_id: req.session_id,
            })
        }
    }
}

/// Cancellably sleep `n × ms` (the scripted-straggler hook), in small
/// slices so a deadline or disconnect interrupts promptly. Returns
/// `false` when interrupted.
fn straggle(
    ms_per_candidate: u64,
    n: u64,
    cancel: &CancelToken,
    deadline: Option<Instant>,
) -> bool {
    let mut left = Duration::from_millis(ms_per_candidate.saturating_mul(n));
    while !left.is_zero() {
        if cancel.is_cancelled() || deadline.is_some_and(|d| Instant::now() >= d) {
            return false;
        }
        let slice = left.min(Duration::from_millis(10));
        std::thread::sleep(slice);
        left -= slice;
    }
    true
}

/// Evaluate one contiguous sub-range of a fleet tune: a plain budgeted
/// tune (no refinement, no cache — raw candidate scores are what the
/// coordinator's `(score, index)` merge needs), sealed into a
/// checksummed, epoch-stamped reply. A deadline or disconnect that
/// stops the sweep early still answers — with `evaluated < count`, so
/// the coordinator discards the reply as incomplete rather than
/// merging a winner that depends on where the shard gave up.
///
/// With `stream_every = Some(k)`, the range is evaluated in chunks of
/// `k` and each finished chunk is announced with a sealed
/// [`Response::TuneShardPart`] through `reply` (the connection thread
/// forwards it to the socket). Chunks are evaluated in ascending index
/// order and each part carries the chunk-local first minimum, so the
/// coordinator's ascending strict-`<` fold over parts reproduces the
/// flat scan's first minimum exactly. The terminal reply still covers
/// the whole range — an interrupted range answers incomplete, but
/// every part already emitted stands on its own.
fn exec_tune_shard(
    shared: &Shared,
    req: TuneShardRequest,
    cancel: &CancelToken,
    deadline: Option<Instant>,
    reply: &Reply,
) -> Response {
    let TuneShardRequest {
        graph,
        machine,
        fom,
        candidates,
        start_index,
        epoch,
        stream_every,
        cost_model,
        ..
    } = req;
    let cost_model = match parse_cost_model(cost_model.as_deref()) {
        Ok(kind) => kind,
        Err(refusal) => return Response::Failed(refusal),
    };
    let evaluator = Evaluator::new(&graph, &machine).with_cost_model(cost_model);
    let candidates: Vec<MappingCandidate> = candidates
        .into_iter()
        .map(|c| MappingCandidate::new(c.label, c.mapping))
        .collect();
    let count = candidates.len() as u64;
    let straggle_ms = shared.config.straggle_ms_per_candidate.unwrap_or(0);
    let chunk = stream_every.unwrap_or(0) as usize;

    let run_slice = |slice: &[MappingCandidate]| {
        let mut budget = Budget::unlimited();
        if let Some(d) = deadline {
            budget.deadline = Some(d.saturating_duration_since(Instant::now()));
        }
        Tuner::new(&evaluator, &graph, &machine, fom)
            .with_pool(&shared.pool)
            .with_budget(budget)
            .with_cancel(cancel.clone())
            .tune(slice)
    };
    // `best_index.zip(best)` keeps only genuine in-range winners: a
    // default-mapper fallback (nothing legal) has no index and must
    // not masquerade as a candidate.
    let slice_best = |lo: usize, report: fm_autotune::TuneReport| {
        report.best_index.zip(report.best).map(|(i, b)| ShardBest {
            index: start_index + (lo + i) as u64,
            label: b.label,
            score: b.score,
            resolved: b.resolved,
            report: b.report,
        })
    };

    if chunk == 0 {
        // Classic blocking path: one tune, one reply.
        if straggle_ms > 0 && !straggle(straggle_ms, count, cancel, deadline) {
            let body = TuneShardBody {
                start_index,
                count,
                evaluated: 0,
                cancelled: true,
                best: None,
            };
            return Response::TuneSharded(TuneShardReply::seal(epoch, body));
        }
        let report = run_slice(&candidates);
        let body = TuneShardBody {
            start_index,
            count,
            evaluated: report.evaluated as u64,
            cancelled: report.cancelled,
            best: slice_best(0, report),
        };
        return Response::TuneSharded(TuneShardReply::seal(epoch, body));
    }

    // Streaming path: chunked sweep, one sealed part per finished
    // chunk, then the terminal reply.
    let mut evaluated = 0u64;
    let mut cancelled = false;
    let mut best: Option<ShardBest> = None;
    let mut lo = 0usize;
    while lo < candidates.len() {
        let hi = (lo + chunk).min(candidates.len());
        let n = (hi - lo) as u64;
        if straggle_ms > 0 && !straggle(straggle_ms, n, cancel, deadline) {
            cancelled = true;
            break;
        }
        let report = run_slice(&candidates[lo..hi]);
        if report.cancelled || (report.evaluated as u64) < n {
            // Interrupted mid-chunk: the chunk is never announced; the
            // terminal reply admits the shortfall.
            evaluated += report.evaluated as u64;
            cancelled = true;
            break;
        }
        evaluated += n;
        let chunk_best = slice_best(lo, report);
        // Ascending chunks + strict `<` keep the earliest minimum.
        match (&best, &chunk_best) {
            (Some(b), Some(c)) if c.score < b.score => best = chunk_best.clone(),
            (None, Some(_)) => best = chunk_best.clone(),
            _ => {}
        }
        let part = TuneShardPart::seal(
            epoch,
            TuneShardPartBody {
                start_index: start_index + lo as u64,
                count: n,
                best: chunk_best,
            },
        );
        shared
            .metrics
            .tune_shard_parts
            .fetch_add(1, Ordering::Relaxed);
        if !reply.send(Response::TuneShardPart(part)) {
            // Connection thread is gone: nobody will read further
            // frames. Stop burning cores.
            cancel.cancel();
            cancelled = true;
            break;
        }
        lo = hi;
    }
    let body = TuneShardBody {
        start_index,
        count,
        evaluated,
        cancelled,
        best,
    };
    Response::TuneSharded(TuneShardReply::seal(epoch, body))
}

fn exec_evaluate(req: EvaluateRequest) -> Response {
    let EvaluateRequest {
        graph,
        machine,
        mapping,
        ..
    } = req;
    if mapping.place.len() != graph.len() || mapping.time.len() != graph.len() {
        return Response::Failed(FailReply {
            kind: "illegal".to_string(),
            error: format!(
                "mapping covers {} nodes but the graph has {}",
                mapping.place.len(),
                graph.len()
            ),
        });
    }
    let legality = check(&graph, &mapping, &machine);
    if !legality.is_legal() {
        return Response::Evaluated(EvaluateReply {
            legal: false,
            violations: legality.total_violations,
            report: None,
        });
    }
    let report = Evaluator::new(&graph, &machine).evaluate(&mapping);
    Response::Evaluated(EvaluateReply {
        legal: true,
        violations: 0,
        report: Some(report),
    })
}

fn exec_simulate(req: SimulateRequest) -> Response {
    let SimulateRequest {
        graph,
        machine,
        mapping,
        inputs,
        contention,
        ..
    } = req;
    if mapping.place.len() != graph.len() || mapping.time.len() != graph.len() {
        return Response::Failed(FailReply {
            kind: "illegal".to_string(),
            error: format!(
                "mapping covers {} nodes but the graph has {}",
                mapping.place.len(),
                graph.len()
            ),
        });
    }
    let legality = check(&graph, &mapping, &machine);
    if !legality.is_legal() {
        return Response::Failed(FailReply {
            kind: "illegal".to_string(),
            error: format!(
                "mapping is illegal ({} violations); the simulator only executes legal mappings",
                legality.total_violations
            ),
        });
    }
    let predicted = Evaluator::new(&graph, &machine).evaluate(&mapping);
    let sim = Simulator::new(machine).with_config(SimConfig {
        contention,
        ..SimConfig::default()
    });
    match sim.run(&graph, &mapping, &inputs, &[]) {
        Ok(result) => Response::Simulated(SimulateReply {
            cycles_scheduled: result.cycles_scheduled,
            cycles_actual: result.cycles_actual,
            slowdown: result.slowdown(),
            stalled_elements: result.stalled_elements,
            total_stall_cycles: result.total_stall_cycles,
            messages_delivered: result.messages_delivered,
            link_wait_cycles: result.link_wait_cycles,
            predicted_energy_fj: predicted.energy().raw(),
            simulated_energy_fj: result.ledger.energy.total().raw(),
        }),
        Err(e) => Response::Failed(FailReply {
            kind: "sim".to_string(),
            error: e.to_string(),
        }),
    }
}
