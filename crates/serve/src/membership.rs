//! Elastic fleet membership: the live shard roster, membership epochs,
//! and the crash-persistent weight ledger.
//!
//! The fleet coordinator used to freeze its shard pool at startup; this
//! module makes the pool a *living roster*. Shards join and leave a
//! running fleet (via `ShardJoin`/`ShardLeave` protocol frames or the
//! coordinator-side `--fleet-admit` list); every change bumps a
//! **membership epoch** surfaced in `Stats`, new members become
//! eligible for the next partition and for suffix re-dispatch, and a
//! departed member's in-flight ranges are re-dispatched from their
//! covered watermark the moment its departure is noticed.
//!
//! Identity is the configured address string. A member that leaves and
//! later rejoins under the same address is **revived**, not recreated:
//! its [`ShardMetrics`] entry (EWMA throughput, trailing peak, breaker
//! history) survives in the registry, so a brief departure does not
//! reset what the coordinator learned about the machine — and the
//! registry stays bounded under join/leave churn instead of growing a
//! fresh entry per flap.
//!
//! **The weight ledger** makes learned throughput survive coordinator
//! *restarts* too. After every fleet tune the per-shard EWMA, trailing
//! peak, and breaker state serialize to a small versioned JSON document
//! (temp-file + rename, same corrupt/stale-tolerant discipline as the
//! autotune cache: any read failure, malformed byte, or schema-version
//! mismatch degrades to a cold start, never an error). A restarted
//! coordinator therefore partitions its first tune *weighted*.
//!
//! **Staleness decay** guards the other direction: a persisted weight
//! describes the machine as it was. Entries carry a timestamp-free
//! *generation* counter (fleet tunes observed when the sample was
//! taken); after `weight_decay_tunes` tunes without a fresh sample a
//! member's weight blends linearly toward the fresh members' mean and
//! finally reads cold, so a machine whose performance changed since the
//! last run cannot permanently skew partitioning.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::metrics::{breaker_state, FleetMetrics, ShardMetrics};

/// Bump when the ledger layout changes; old ledgers then read as cold.
pub const LEDGER_SCHEMA_VERSION: u32 = 1;

/// One shard's persisted weight record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// The shard's address, as configured.
    pub addr: String,
    /// EWMA throughput at persist time (candidates/second).
    pub ewma_cands_per_sec: f64,
    /// Trailing peak throughput at persist time (candidates/second).
    pub peak_cands_per_sec: f64,
    /// Whether the breaker was open at persist time. A restarted
    /// coordinator re-opens it for one cooldown rather than trusting a
    /// shard that was misbehaving when the ledger was written.
    pub breaker_open: bool,
    /// Fleet-tune generation of this entry's last fresh sample (drives
    /// staleness decay; deliberately not a wall-clock timestamp).
    pub generation: u64,
}

/// The persisted weight ledger: schema version, the coordinator's
/// fleet-tune generation counter, and one entry per shard that ever
/// produced a throughput sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerDoc {
    /// Schema version ([`LEDGER_SCHEMA_VERSION`] at write time).
    pub version: u32,
    /// Fleet-tune generation at persist time; restarts resume counting
    /// from here so staleness keeps accruing across process lifetimes.
    pub generation: u64,
    /// Per-shard weight records.
    pub entries: Vec<LedgerEntry>,
}

/// Read a ledger. Missing file, unreadable bytes, malformed JSON, or a
/// schema-version mismatch all return `None` — a cold start, never an
/// error.
pub fn load_ledger(path: &Path) -> Option<LedgerDoc> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc: LedgerDoc = serde_json::from_str(&text).ok()?;
    if doc.version != LEDGER_SCHEMA_VERSION {
        return None;
    }
    Some(doc)
}

/// Write a ledger via a sibling temp file and rename, so a crash
/// mid-write leaves the previous ledger intact under the final name.
pub fn store_ledger(path: &Path, doc: &LedgerDoc) -> std::io::Result<()> {
    use std::io::Write as _;
    let tmp = path.with_extension("json.tmp");
    let text =
        serde_json::to_string_pretty(doc).map_err(|e| std::io::Error::other(e.to_string()))?;
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Circuit-breaker state for one member.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Breaker {
    /// Requests flow; counts consecutive failures.
    Closed { consecutive_failures: u32 },
    /// Quarantined until the cooldown instant.
    Open { until: Instant },
    /// One probe is in flight; its outcome decides the next state.
    HalfOpen,
}

/// One live fleet member: its address, its (revivable) metrics entry,
/// and its link-health state. Attempt threads hold an `Arc<Member>`
/// snapshot, so a member leaving mid-attempt never invalidates the
/// handle — the attempt just notices the departed flag and abandons.
pub struct Member {
    addr: String,
    /// Counters + EWMA/peak throughput; shared with the registry so a
    /// rejoin under the same address revives the history.
    pub(crate) metrics: Arc<ShardMetrics>,
    pub(crate) breaker: Mutex<Breaker>,
    /// Latched when the shard rejected a binary request with a
    /// protocol failure: it predates the envelope, so every later
    /// attempt speaks JSON. Never unlatched — a fleet member does not
    /// upgrade mid-flight.
    pub(crate) json_only: AtomicBool,
}

impl Member {
    fn new(addr: String, metrics: Arc<ShardMetrics>) -> Arc<Member> {
        Arc::new(Member {
            addr,
            metrics,
            breaker: Mutex::new(Breaker::Closed {
                consecutive_failures: 0,
            }),
            json_only: AtomicBool::new(false),
        })
    }

    /// The member's address, as configured.
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

impl std::fmt::Debug for Member {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Member").field("addr", &self.addr).finish()
    }
}

/// The living roster. One per [`Fleet`](crate::fleet::Fleet), shared
/// across worker threads.
pub struct Membership {
    /// Membership epoch: starts at 1, bumps on every effective join or
    /// leave. Distinct from the per-tune epoch stamped into frames.
    epoch: AtomicU64,
    /// Fleet-tune generation counter (drives weight staleness). Seeded
    /// from the ledger so staleness accrues across restarts.
    generation: AtomicU64,
    live: Mutex<Vec<Arc<Member>>>,
    metrics: Arc<FleetMetrics>,
    ledger: Option<PathBuf>,
    /// Tunes without a fresh sample before a weight reads fully cold
    /// (0 disables decay).
    decay_after: u64,
    breaker_cooldown: Duration,
}

impl Membership {
    /// Build the roster over the configured addresses, seeding weights
    /// and breaker state from the ledger at `ledger` when one loads.
    pub fn new(
        addrs: &[String],
        metrics: Arc<FleetMetrics>,
        ledger: Option<PathBuf>,
        decay_after: u64,
        breaker_cooldown: Duration,
    ) -> Membership {
        let doc = ledger.as_deref().and_then(load_ledger);
        let generation = doc.as_ref().map_or(0, |d| d.generation);
        let mut live: Vec<Arc<Member>> = Vec::with_capacity(addrs.len());
        for addr in addrs {
            if live.iter().any(|m| m.addr() == addr.as_str()) {
                continue;
            }
            let sm = metrics.register(addr);
            let member = Member::new(addr.clone(), sm);
            let entry = doc
                .as_ref()
                .and_then(|d| d.entries.iter().find(|e| &e.addr == addr));
            if let Some(e) = entry {
                member.metrics.seed_persisted(
                    e.ewma_cands_per_sec,
                    e.peak_cands_per_sec,
                    e.generation,
                );
                if e.breaker_open {
                    *member.breaker.lock() = Breaker::Open {
                        until: Instant::now() + breaker_cooldown,
                    };
                    member
                        .metrics
                        .state
                        .store(breaker_state::OPEN, Ordering::Relaxed);
                }
            }
            live.push(member);
        }
        metrics.members.store(live.len() as u64, Ordering::Relaxed);
        metrics.membership_epoch.store(1, Ordering::Relaxed);
        Membership {
            epoch: AtomicU64::new(1),
            generation: AtomicU64::new(generation),
            live: Mutex::new(live),
            metrics: Arc::clone(&metrics),
            ledger,
            decay_after,
            breaker_cooldown,
        }
    }

    /// Current membership epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Current fleet-tune generation.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Bump the generation at the start of a fleet tune.
    pub fn begin_tune(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Live member count.
    pub fn len(&self) -> usize {
        self.live.lock().len()
    }

    /// Whether the roster is empty (every tune then runs locally).
    pub fn is_empty(&self) -> bool {
        self.live.lock().is_empty()
    }

    /// A point-in-time snapshot of the live roster (cheap Arc clones).
    pub fn roster(&self) -> Vec<Arc<Member>> {
        self.live.lock().clone()
    }

    /// Live member addresses, in roster order.
    pub fn members(&self) -> Vec<String> {
        self.live
            .lock()
            .iter()
            .map(|m| m.addr().to_string())
            .collect()
    }

    /// Admit `addr` into the roster. Idempotent: admitting a live
    /// member changes nothing and does not bump the epoch. A returning
    /// member revives its metrics history. Returns
    /// `(membership epoch, changed)`.
    pub fn join(&self, addr: &str) -> (u64, bool) {
        let mut live = self.live.lock();
        if live.iter().any(|m| m.addr() == addr) {
            return (self.epoch(), false);
        }
        let sm = self.metrics.register(addr);
        sm.set_departed(false);
        sm.state.store(breaker_state::CLOSED, Ordering::Relaxed);
        live.push(Member::new(addr.to_string(), sm));
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        self.metrics.joins.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .membership_epoch
            .store(epoch, Ordering::Relaxed);
        self.metrics
            .members
            .store(live.len() as u64, Ordering::Relaxed);
        (epoch, true)
    }

    /// Retire `addr` from the roster. Idempotent: retiring an unknown
    /// address changes nothing. The member's metrics entry stays in the
    /// registry (flagged departed) so in-flight attempts notice and
    /// abandon, and a later rejoin revives the history. Returns
    /// `(membership epoch, changed)`.
    pub fn leave(&self, addr: &str) -> (u64, bool) {
        let mut live = self.live.lock();
        let before = live.len();
        live.retain(|m| {
            if m.addr() == addr {
                m.metrics.set_departed(true);
                false
            } else {
                true
            }
        });
        if live.len() == before {
            return (self.epoch(), false);
        }
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        self.metrics.leaves.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .membership_epoch
            .store(epoch, Ordering::Relaxed);
        self.metrics
            .members
            .store(live.len() as u64, Ordering::Relaxed);
        (epoch, true)
    }

    /// Effective partitioning weights for `roster`, with staleness
    /// decay: a weight sampled `s` tunes ago blends linearly toward the
    /// fresh members' mean and reads fully cold (0.0 — the partitioner
    /// then substitutes the warm mean) at `s >= decay_after`. With
    /// decay disabled (`decay_after == 0`) raw EWMA weights pass
    /// through.
    pub fn live_weights(&self, roster: &[Arc<Member>]) -> Vec<f64> {
        let generation = self.generation();
        let raw: Vec<(f64, u64)> = roster
            .iter()
            .map(|m| {
                (
                    m.metrics.ewma_rate(),
                    generation.saturating_sub(m.metrics.sample_gen()),
                )
            })
            .collect();
        if self.decay_after == 0 {
            return raw.iter().map(|&(w, _)| w).collect();
        }
        let fresh: Vec<f64> = raw
            .iter()
            .filter(|&&(w, s)| w > 0.0 && s < self.decay_after)
            .map(|&(w, _)| w)
            .collect();
        let mean = if fresh.is_empty() {
            0.0
        } else {
            fresh.iter().sum::<f64>() / fresh.len() as f64
        };
        raw.iter()
            .map(|&(w, s)| {
                if w <= 0.0 || s >= self.decay_after {
                    0.0
                } else if mean > 0.0 {
                    let keep = 1.0 - s as f64 / self.decay_after as f64;
                    w * keep + mean * (1.0 - keep)
                } else {
                    w
                }
            })
            .collect()
    }

    /// Persist every registered member's weight record — live and
    /// recently departed (a departed shard's history is exactly what a
    /// restart wants when the shard comes back). A departed record is
    /// aged out once it is `decay_after` generations stale: its weight
    /// would read fully cold by then anyway, so carrying it forward
    /// only grows the ledger without bound as the fleet churns.
    /// `decay_after == 0` disables aging (entries live forever). A
    /// write failure loses the ledger, never the tune.
    pub fn persist(&self) {
        let Some(path) = &self.ledger else { return };
        let generation = self.generation();
        let live = self.members();
        let entries: Vec<LedgerEntry> = self
            .metrics
            .shard_metrics()
            .iter()
            .filter(|m| m.ewma_rate() > 0.0)
            .filter(|m| {
                self.decay_after == 0
                    || live.iter().any(|a| a == &m.addr)
                    || generation.saturating_sub(m.sample_gen()) < self.decay_after
            })
            .map(|m| LedgerEntry {
                addr: m.addr.clone(),
                ewma_cands_per_sec: m.ewma_rate(),
                peak_cands_per_sec: m.peak_rate(),
                breaker_open: m.state.load(Ordering::Relaxed) == breaker_state::OPEN,
                generation: m.sample_gen(),
            })
            .collect();
        let doc = LedgerDoc {
            version: LEDGER_SCHEMA_VERSION,
            generation: self.generation(),
            entries,
        };
        let _ = store_ledger(path, &doc);
    }

    /// The configured breaker cooldown (restored breakers re-open for
    /// exactly one of these).
    pub fn breaker_cooldown(&self) -> Duration {
        self.breaker_cooldown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::weight_source;
    use std::time::Duration;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "fm-membership-{tag}-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn doc(entries: Vec<LedgerEntry>, generation: u64) -> LedgerDoc {
        LedgerDoc {
            version: LEDGER_SCHEMA_VERSION,
            generation,
            entries,
        }
    }

    fn entry(addr: &str, ewma: f64, generation: u64) -> LedgerEntry {
        LedgerEntry {
            addr: addr.to_string(),
            ewma_cands_per_sec: ewma,
            peak_cands_per_sec: ewma * 2.0,
            breaker_open: false,
            generation,
        }
    }

    fn fresh(addrs: &[&str]) -> (Membership, Arc<FleetMetrics>) {
        let metrics = Arc::new(FleetMetrics::new());
        let addrs: Vec<String> = addrs.iter().map(|a| a.to_string()).collect();
        let m = Membership::new(
            &addrs,
            Arc::clone(&metrics),
            None,
            8,
            Duration::from_millis(50),
        );
        (m, metrics)
    }

    #[test]
    fn ledger_round_trips_and_tolerates_every_corruption() {
        let path = tmp_path("roundtrip");
        let d = doc(vec![entry("a:1", 120.0, 3)], 7);
        store_ledger(&path, &d).unwrap();
        assert_eq!(load_ledger(&path), Some(d.clone()));
        // Malformed JSON: cold, not an error.
        std::fs::write(&path, b"{not json").unwrap();
        assert_eq!(load_ledger(&path), None);
        // Valid JSON, wrong shape: cold.
        std::fs::write(&path, b"[1,2,3]").unwrap();
        assert_eq!(load_ledger(&path), None);
        // Version mismatch: cold.
        let mut stale = d.clone();
        stale.version = LEDGER_SCHEMA_VERSION + 1;
        store_ledger(&path, &stale).unwrap();
        assert_eq!(load_ledger(&path), None);
        // Missing file: cold.
        std::fs::remove_file(&path).unwrap();
        assert_eq!(load_ledger(&path), None);
    }

    #[test]
    fn join_and_leave_bump_the_epoch_and_are_idempotent() {
        let (m, metrics) = fresh(&["a:1", "b:2"]);
        assert_eq!(m.epoch(), 1);
        assert_eq!(m.len(), 2);
        // Joining a live member changes nothing.
        assert_eq!(m.join("a:1"), (1, false));
        // A real join bumps the epoch and the gauges.
        assert_eq!(m.join("c:3"), (2, true));
        assert_eq!(m.members(), vec!["a:1", "b:2", "c:3"]);
        assert_eq!(metrics.members.load(Ordering::Relaxed), 3);
        assert_eq!(metrics.joins.load(Ordering::Relaxed), 1);
        // Leaving an unknown address changes nothing.
        assert_eq!(m.leave("nobody:9"), (2, false));
        // A real leave bumps the epoch and flags the metrics entry.
        assert_eq!(m.leave("b:2"), (3, true));
        assert_eq!(m.members(), vec!["a:1", "c:3"]);
        assert_eq!(metrics.leaves.load(Ordering::Relaxed), 1);
        let departed = metrics
            .shard_metrics()
            .into_iter()
            .find(|s| s.addr == "b:2")
            .unwrap();
        assert!(departed.is_departed());
        // Re-leaving is idempotent.
        assert_eq!(m.leave("b:2"), (3, false));
    }

    #[test]
    fn rejoin_revives_the_departed_members_history() {
        let (m, metrics) = fresh(&["a:1", "b:2"]);
        let b = metrics.register("b:2");
        b.observe_rate(100, Duration::from_secs(1));
        m.leave("b:2");
        assert!(b.is_departed());
        m.join("b:2");
        assert!(!b.is_departed());
        // Same registry entry, history intact, no duplicate row.
        let rows = metrics.shard_metrics();
        assert_eq!(rows.iter().filter(|s| s.addr == "b:2").count(), 1);
        assert!((b.ewma_rate() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn persisted_weights_seed_and_then_decay_toward_uniform() {
        let path = tmp_path("decay");
        // Ledger: shard a sampled at generation 10, b never sampled.
        store_ledger(&path, &doc(vec![entry("a:1", 200.0, 10)], 10)).unwrap();
        let metrics = Arc::new(FleetMetrics::new());
        let addrs = vec!["a:1".to_string(), "b:2".to_string()];
        let m = Membership::new(
            &addrs,
            Arc::clone(&metrics),
            Some(path.clone()),
            4,
            Duration::from_millis(50),
        );
        assert_eq!(m.generation(), 10, "generation resumes from the ledger");
        let roster = m.roster();
        let a = &roster[0].metrics;
        assert_eq!(a.source_name(), "persisted");
        assert!((a.ewma_rate() - 200.0).abs() < 1e-9);
        assert!((a.peak_rate() - 400.0).abs() < 1e-9);
        // Fresh (staleness 0): the raw weight passes through.
        assert_eq!(m.live_weights(&roster), vec![200.0, 0.0]);
        // Two tunes without a fresh sample: halfway decayed — but a
        // lone sampled member blends toward a mean that is itself, so
        // its weight holds until it crosses the horizon to cold.
        m.begin_tune();
        m.begin_tune();
        assert_eq!(m.live_weights(&roster), vec![200.0, 0.0]);
        // Past the decay horizon: fully cold.
        m.begin_tune();
        m.begin_tune();
        assert_eq!(m.live_weights(&roster), vec![0.0, 0.0]);
        // With a second sampled member the blend shows: a is fresh, b
        // halfway stale, so b moves halfway toward the pool mean.
        a.observe_rate(100, Duration::from_secs(1));
        a.mark_fresh(m.generation());
        let b = &roster[1].metrics;
        b.observe_rate(300, Duration::from_secs(1));
        b.mark_fresh(m.generation().saturating_sub(2));
        let w = m.live_weights(&roster);
        let a_w = a.ewma_rate();
        assert!((w[0] - a_w).abs() < 1e-9, "fresh weight passes through");
        let mean = (a_w + 300.0) / 2.0;
        let want = 300.0 * 0.5 + mean * 0.5;
        assert!((w[1] - want).abs() < 1e-9, "got {}, want {want}", w[1]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_ledger_starts_cold_and_open_breaker_restores_quarantined() {
        let path = tmp_path("corrupt");
        std::fs::write(&path, b"\x00\xffgarbage").unwrap();
        let metrics = Arc::new(FleetMetrics::new());
        let addrs = vec!["a:1".to_string()];
        let m = Membership::new(
            &addrs,
            Arc::clone(&metrics),
            Some(path.clone()),
            8,
            Duration::from_millis(50),
        );
        let roster = m.roster();
        assert_eq!(roster[0].metrics.source_name(), "cold");
        assert_eq!(m.live_weights(&roster), vec![0.0]);
        // And a persisted open breaker comes back quarantined.
        let mut d = doc(vec![entry("a:1", 50.0, 0)], 1);
        d.entries[0].breaker_open = true;
        store_ledger(&path, &d).unwrap();
        let metrics2 = Arc::new(FleetMetrics::new());
        let m2 = Membership::new(
            &addrs,
            Arc::clone(&metrics2),
            Some(path.clone()),
            8,
            Duration::from_millis(50),
        );
        let roster2 = m2.roster();
        assert!(matches!(*roster2[0].breaker.lock(), Breaker::Open { .. }));
        assert_eq!(
            roster2[0].metrics.state.load(Ordering::Relaxed),
            breaker_state::OPEN
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn persist_writes_only_sampled_members_and_round_trips() {
        let path = tmp_path("persist");
        let metrics = Arc::new(FleetMetrics::new());
        let addrs = vec!["a:1".to_string(), "b:2".to_string()];
        let m = Membership::new(
            &addrs,
            Arc::clone(&metrics),
            Some(path.clone()),
            8,
            Duration::from_millis(50),
        );
        let gen = m.begin_tune();
        let a = metrics.register("a:1");
        a.observe_rate(80, Duration::from_secs(1));
        a.mark_fresh(gen);
        m.persist();
        let d = load_ledger(&path).expect("ledger written");
        assert_eq!(d.generation, gen);
        assert_eq!(d.entries.len(), 1, "cold members are not persisted");
        assert_eq!(d.entries[0].addr, "a:1");
        assert!((d.entries[0].ewma_cands_per_sec - 80.0).abs() < 1e-9);
        assert_eq!(d.entries[0].generation, gen);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn persist_ages_out_departed_shards_by_generation() {
        let path = tmp_path("age");
        let metrics = Arc::new(FleetMetrics::new());
        let addrs = vec!["a:1".to_string(), "b:2".to_string()];
        let m = Membership::new(
            &addrs,
            Arc::clone(&metrics),
            Some(path.clone()),
            2, // decay_after: departed records age out after 2 tunes
            Duration::from_millis(50),
        );
        let gen = m.begin_tune();
        for addr in ["a:1", "b:2"] {
            let s = metrics.register(addr);
            s.observe_rate(80, Duration::from_secs(1));
            s.mark_fresh(gen);
        }
        m.leave("b:2");
        // One tune later the departed record is still within the decay
        // horizon: kept, so a quick rejoin restarts warm.
        m.begin_tune();
        m.persist();
        let d = load_ledger(&path).expect("ledger written");
        assert_eq!(d.entries.len(), 2, "recently departed record kept");
        // Past the horizon it is aged out; the live member stays no
        // matter how stale its sample.
        m.begin_tune();
        m.persist();
        let d = load_ledger(&path).expect("ledger written");
        assert_eq!(d.entries.len(), 1, "stale departed record aged out");
        assert_eq!(d.entries[0].addr, "a:1");
        // With aging disabled (decay_after == 0) nothing is dropped.
        let metrics0 = Arc::new(FleetMetrics::new());
        let m0 = Membership::new(
            &addrs,
            Arc::clone(&metrics0),
            Some(path.clone()),
            0,
            Duration::from_millis(50),
        );
        let gen0 = m0.begin_tune();
        for addr in ["a:1", "b:2"] {
            let s = metrics0.register(addr);
            s.observe_rate(80, Duration::from_secs(1));
            s.mark_fresh(gen0);
        }
        m0.leave("b:2");
        for _ in 0..10 {
            m0.begin_tune();
        }
        m0.persist();
        let d = load_ledger(&path).expect("ledger written");
        assert_eq!(d.entries.len(), 2, "decay_after == 0 disables aging");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn weight_source_marks_persisted_then_measured() {
        let metrics = Arc::new(FleetMetrics::new());
        let s = metrics.register("a:1");
        assert_eq!(s.source_name(), "cold");
        s.seed_persisted(40.0, 60.0, 2);
        assert_eq!(s.source_name(), "persisted");
        assert_eq!(s.sample_gen(), 2);
        s.observe_rate(90, Duration::from_secs(1));
        assert_eq!(s.source_name(), "measured");
        assert!(s.peak_rate() >= 60.0, "seeded peak survives");
        // weight_source constants stay distinct (wire strings key off
        // them).
        assert_ne!(weight_source::COLD, weight_source::PERSISTED);
        assert_ne!(weight_source::PERSISTED, weight_source::MEASURED);
    }
}
