//! The fleet coordinator: sharded candidate search that survives dead,
//! slow, and lying shards — and, since streaming, stops *wasting* the
//! work slow shards already did.
//!
//! A server started with [`FleetConfig`] partitions each eligible
//! `Tune` request's candidate list into contiguous sub-ranges and
//! farms them out to N backend `fm-serve` instances as `TuneShard`
//! requests, then merges the shard winners by `(score, index)`. The
//! contract is exact: **the merged winner is bit-identical to a
//! single-machine [`Tuner::tune`]** over the same list, no matter
//! which shards die, stall, or corrupt frames along the way.
//!
//! Why that holds:
//!
//! * the single-machine winner is the *first* strict minimum of the
//!   score sequence (the tuner's frontier keeps the earliest index on
//!   ties), which equals `min by (score, index)` over all candidates;
//! * a frame is merged **only** when it is verified — epoch echo and
//!   FNV-1a checksum over the canonical body
//!   ([`TuneShardReply::verify`] / [`TuneShardPart::verify`]), and for
//!   terminal replies `evaluated == count`; a frame that fails any
//!   check is discarded and the uncovered suffix is retried,
//!   reassigned, or evaluated locally, so every candidate is always
//!   scored by exactly the same pure function on *some* machine;
//! * streamed parts are chunk-local first minima merged **only at the
//!   covered watermark** (contiguous, in ascending index order) with a
//!   strict `<`, which reproduces the first-minimum tie-break of a
//!   flat scan; duplicate chunks from hedged attempts compare equal
//!   and never displace the earlier merge;
//! * annealing refinement depends only on the winner and the
//!   configured seeds, so the coordinator applying it to the merged
//!   winner ([`Tuner::refine_winner`]) is bit-equal to a local tune
//!   applying it to the same winner.
//!
//! **Streaming** (`stream_every = Some(k)`): shards announce each
//! finished chunk of `k` candidates as a sealed
//! [`TuneShardPart`] frame. The coordinator folds verified parts into
//! a per-range *covered watermark*; when an attempt then dies, only
//! the uncovered suffix is re-dispatched (retry, hedge, or local
//! fallback), and the moment a range is fully covered every other
//! attempt on it is abandoned — dropping the socket is what tells the
//! shard to cancel its remaining sub-search.
//!
//! **Latency-weighted partitioning** (`weighted = true`): part and
//! reply arrival times feed a per-shard EWMA throughput tracker in the
//! metrics registry (persisted across requests); range sizes are then
//! apportioned to shards by largest-remainder on those weights, so a
//! chronically slow shard gets a proportionally small range instead of
//! stalling the whole tune. Cold shards inherit the warm mean; an
//! all-cold fleet deterministically degenerates to the equal split.
//!
//! Robustness plumbing, per sub-range: bounded retries with
//! exponential backoff and deterministic jitter, hedged duplicate
//! requests past a straggler threshold (re-hedging is allowed once the
//! previous hedge demonstrably made progress), a per-shard circuit
//! breaker (closed → open on consecutive failures → half-open probe
//! after a cooldown), re-assignment of a failed shard's suffix to
//! survivors, and — when every shard path is down — local evaluation
//! of the *uncovered suffix only* on the coordinator's own pool.
//! Degradation changes latency, never the answer.
//!
//! The fleet path does not consult the tuning cache (requests with
//! `use_cache` stay local, where the cache lives), and requests with a
//! `convergence_window` stay local too: early-stopping is inherently
//! sequential, so sharding it would change which candidates get
//! evaluated.

use std::io::Write as _;
use std::net::{TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use fm_autotune::{Budget, CancelToken, TunedMapping, Tuner};
use fm_core::cost::Evaluator;
use fm_core::dataflow::DataflowGraph;
use fm_core::machine::MachineConfig;
use fm_core::search::{FigureOfMerit, MappingCandidate};
use fm_costmodel::CostModelKind;
use fm_workspan::ThreadPool;

use crate::fault::mix64;
use crate::membership::{Breaker, Member, Membership};
use crate::metrics::{breaker_state, FleetMetrics};
use crate::protocol::{
    decode_response_any, encode_request, encode_request_binary, Request, Response, ShardBest,
    ShardReplyFlaw, TuneReply, TuneRequest, TuneShardBody, TuneShardPartBody, TuneShardRequest,
    WireCandidate, DEFAULT_MAX_FRAME,
};

/// Fleet-coordinator tunables. Defaults are production-ish; tests
/// tighten every timeout.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Backend shard addresses (`host:port`), in preference order.
    pub shards: Vec<String>,
    /// TCP connect timeout per attempt (a black-holed shard must fail
    /// fast, not hang the range). Applied to every dial the
    /// coordinator makes, further clamped by the attempt deadline.
    pub connect_timeout: Duration,
    /// Inactivity cap on one attempt: the time budget to the *next*
    /// frame (streamed part or terminal reply), reset whenever a
    /// verified frame arrives. For blocking attempts this is the
    /// end-to-end cap it always was.
    pub attempt_timeout: Duration,
    /// Waves of attempts per sub-range before giving up on the network
    /// and evaluating the (remaining) range locally.
    pub attempts: u32,
    /// First-retry backoff; doubles each wave.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Launch a hedged duplicate of a range's uncovered suffix when
    /// the primary has made no progress within this long (`None`
    /// disables hedging). A further hedge wave is allowed each time
    /// streamed progress shows the previous one is also stuck.
    pub hedge_after: Option<Duration>,
    /// Consecutive failures that trip a shard's breaker open.
    pub breaker_threshold: u32,
    /// How long an open breaker quarantines its shard before the
    /// half-open probe.
    pub breaker_cooldown: Duration,
    /// Minimum candidates per sub-range: below `2 ×` this a request is
    /// not worth sharding at all, and the partitioner never cuts a
    /// range smaller than this (weighted or not).
    pub min_shard_candidates: usize,
    /// Seed for deterministic backoff jitter (and nothing else — the
    /// *answer* never depends on it).
    pub jitter_seed: u64,
    /// Ask shards to stream a sealed part every this many evaluated
    /// candidates. `None` (or `Some(0)`) restores the blocking
    /// one-reply-per-range protocol.
    pub stream_every: Option<u64>,
    /// Size ranges by per-shard EWMA throughput instead of equally.
    pub weighted: bool,
    /// Encode shard-link requests with the compact binary envelope
    /// (reply frames are sniffed per frame, so shards may answer in
    /// either encoding). A shard that rejects binary with a protocol
    /// failure — it predates the envelope — is remembered as JSON-only
    /// and retried in JSON. The merged winner is encoding-independent.
    pub binary_links: bool,
    /// Throughput-cliff threshold: speculatively re-dispatch a range's
    /// uncovered suffix when its shard's EWMA throughput drops below
    /// this fraction of the shard's trailing peak while the range
    /// watermark stalls. `0.0` disables cliff detection.
    pub cliff_fraction: f64,
    /// How long a range's covered watermark must sit still before the
    /// cliff detector may fire (guards against false positives on a
    /// shard that is merely between chunks).
    pub cliff_stall: Duration,
    /// Quarantine a shard — trip its breaker open for one cooldown —
    /// once its cliff detector has fired this many times. A shard that
    /// repeatedly collapses costs a speculative re-dispatch every
    /// time; quarantining routes primaries elsewhere until the
    /// half-open probe shows it recovered. `0` disables quarantine.
    pub cliff_quarantine_trips: u32,
    /// Fleet tunes without a fresh sample before a member's persisted
    /// weight decays fully back to cold (`0` disables decay).
    pub weight_decay_tunes: u64,
    /// Path of the crash-persistent weight ledger (`None` disables
    /// persistence). Written after every fleet tune; read once at
    /// startup with the autotune cache's corrupt-tolerant discipline.
    pub weight_ledger: Option<PathBuf>,
    /// Extra shard addresses admitted into the roster right after
    /// startup (the `--fleet-admit` re-dial list) — equivalent to a
    /// `ShardJoin` frame per address.
    pub admit: Vec<String>,
}

impl FleetConfig {
    /// Default tunables in front of `shards`.
    pub fn new(shards: Vec<String>) -> FleetConfig {
        FleetConfig {
            shards,
            connect_timeout: Duration::from_millis(250),
            attempt_timeout: Duration::from_secs(10),
            attempts: 3,
            backoff_base: Duration::from_millis(25),
            backoff_max: Duration::from_millis(500),
            hedge_after: Some(Duration::from_millis(500)),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(2),
            min_shard_candidates: 2,
            jitter_seed: 0x5EED,
            stream_every: Some(16),
            weighted: true,
            binary_links: true,
            cliff_fraction: 0.35,
            cliff_stall: Duration::from_millis(200),
            cliff_quarantine_trips: 3,
            weight_decay_tunes: 64,
            weight_ledger: None,
            admit: Vec::new(),
        }
    }
}

/// The coordinator. One per server, shared across worker threads.
pub struct Fleet {
    config: FleetConfig,
    /// Monotone per-tune epoch; stamped into every `TuneShard` request
    /// and echoed (under checksum) by the reply, so a frame answering
    /// an earlier tune can never merge into a later one.
    epoch: AtomicU64,
    /// The living shard roster (elastic membership, weight ledger).
    membership: Membership,
    metrics: Arc<FleetMetrics>,
}

/// What one sub-range dispatch produced.
struct RangeOutcome {
    /// Candidates scored for this range (by shards, locally, or both).
    evaluated: u64,
    /// The range's winner as `(absolute index, mapping)`; `None` when
    /// nothing in the range was legal (or the range was cancelled).
    win: Option<(u64, TunedMapping)>,
    /// Whether cancellation cut this range short.
    cancelled: bool,
    /// Whether a shard other than the range's first choice answered.
    reassigned: bool,
    /// Whether the range (or its suffix) fell back to local
    /// evaluation.
    local: bool,
}

/// Shared per-range state: the request materials every attempt needs,
/// plus the merge ledger streamed parts fold into.
struct RangeShared {
    graph: DataflowGraph,
    machine: MachineConfig,
    fom: FigureOfMerit,
    /// The range's candidate slice; `candidates[0]` is absolute `lo`.
    candidates: Vec<WireCandidate>,
    lo: usize,
    hi: usize,
    epoch: u64,
    deadline: Option<Instant>,
    stream_every: Option<u64>,
    /// Cost backend name forwarded verbatim to every shard attempt
    /// (validated at coordinator admission).
    cost_model: Option<String>,
    progress: Mutex<Progress>,
    /// Latched once `covered == hi`: every attempt still in flight
    /// abandons (dropping its socket cancels the shard's sub-search).
    done: AtomicBool,
}

/// The merge ledger for one range. `covered` is the exclusive absolute
/// watermark: every candidate in `[lo, covered)` has been scored and
/// folded exactly once, by a verified frame or the local fallback.
struct Progress {
    covered: usize,
    evaluated: u64,
    best: Option<(u64, TunedMapping)>,
}

/// What merging one streamed part did.
enum PartMerge {
    /// Contiguous at the watermark: folded, watermark advanced.
    Merged,
    /// Entirely behind the watermark (a hedge already covered it):
    /// ignored — duplicates are expected, not suspicious.
    Duplicate,
    /// Ahead of or straddling the watermark: the stream is out of sync
    /// with the ledger (should be impossible for an honest shard —
    /// chunk boundaries are aligned); discarded, attempt abandoned.
    OutOfSync,
}

impl RangeShared {
    fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    fn covered(&self) -> usize {
        self.progress.lock().covered
    }

    /// Fold `(index, mapping)` into `best` with the ascending-order
    /// strict `<` that reproduces a flat scan's first minimum.
    fn fold_best(best: &mut Option<(u64, TunedMapping)>, win: Option<(u64, TunedMapping)>) {
        if let Some((idx, w)) = win {
            let better = match best {
                Some((_, b)) => w.score < b.score,
                None => true,
            };
            if better {
                *best = Some((idx, w));
            }
        }
    }

    /// Merge one verified streamed part.
    fn merge_part(&self, body: &TuneShardPartBody) -> PartMerge {
        let mut p = self.progress.lock();
        let start = body.start_index as usize;
        let end = start + body.count as usize;
        if end <= p.covered {
            return PartMerge::Duplicate;
        }
        if start != p.covered || end > self.hi {
            return PartMerge::OutOfSync;
        }
        p.covered = end;
        p.evaluated += body.count;
        Self::fold_best(&mut p.best, body.best.clone().map(shard_best_to_win));
        if p.covered >= self.hi {
            self.done.store(true, Ordering::Release);
        }
        PartMerge::Merged
    }

    /// Merge a verified-complete terminal reply covering
    /// `[start_index, hi)`. Idempotent past the watermark: candidates
    /// already covered by streamed parts are not recounted, and the
    /// reply's best — the first minimum over its whole span — folds as
    /// a no-op against chunk bests already merged (equal scores lose
    /// to the earlier entry under strict `<`).
    fn merge_terminal(&self, body: &TuneShardBody) {
        let mut p = self.progress.lock();
        let span_end = (body.start_index + body.count) as usize;
        if span_end > p.covered {
            p.evaluated += (span_end - p.covered) as u64;
            p.covered = span_end;
        }
        Self::fold_best(&mut p.best, body.best.clone().map(shard_best_to_win));
        if p.covered >= self.hi {
            self.done.store(true, Ordering::Release);
        }
    }

    /// Fold the local fallback's report over the suffix starting at
    /// absolute index `suffix_lo`.
    fn merge_local(&self, suffix_lo: usize, report: fm_autotune::TuneReport) {
        let mut p = self.progress.lock();
        p.evaluated += report.evaluated as u64;
        p.covered = self.hi.min(suffix_lo + report.evaluated);
        Self::fold_best(
            &mut p.best,
            report
                .best_index
                .zip(report.best)
                .map(|(i, b)| ((suffix_lo + i) as u64, b)),
        );
        if p.covered >= self.hi {
            self.done.store(true, Ordering::Release);
        }
    }

    fn outcome(&self, cancelled: bool, reassigned: bool, local: bool) -> RangeOutcome {
        let p = self.progress.lock();
        RangeOutcome {
            evaluated: p.evaluated,
            win: p.best.clone(),
            cancelled,
            reassigned,
            local,
        }
    }
}

fn shard_best_to_win(b: ShardBest) -> (u64, TunedMapping) {
    (
        b.index,
        TunedMapping {
            label: b.label,
            resolved: b.resolved,
            report: b.report,
            score: b.score,
        },
    )
}

/// How one wire attempt ended.
enum AttemptEnd {
    /// The range is fully covered (this attempt merged the last piece
    /// or witnessed it happen).
    Covered,
    /// Transport/verification failure; any parts this attempt merged
    /// before failing remain merged (`saved` counts them).
    Failed {
        /// Candidates this attempt streamed back before dying — work a
        /// blocking protocol would have discarded.
        saved: u64,
    },
    /// The range resolved elsewhere or the tune was cancelled — exit
    /// without blaming the shard.
    Abandoned,
}

/// How an attempt's watched read ended.
enum WatchRead {
    /// A whole frame arrived.
    Frame(Vec<u8>),
    /// The range resolved elsewhere or the tune was cancelled — exit
    /// without blaming the shard.
    Abandoned,
    /// The frame deadline passed (the shard is slow: blame it).
    TimedOut,
    /// Transport failure or EOF mid-frame.
    Failed,
}

impl Fleet {
    /// Build a coordinator over `config.shards` (plus `config.admit`),
    /// seeding weights and breaker state from the ledger when one
    /// loads.
    pub fn new(config: FleetConfig) -> Arc<Fleet> {
        let metrics = Arc::new(FleetMetrics::new());
        let membership = Membership::new(
            &config.shards,
            Arc::clone(&metrics),
            config.weight_ledger.clone(),
            config.weight_decay_tunes,
            config.breaker_cooldown,
        );
        for addr in &config.admit {
            membership.join(addr);
        }
        Arc::new(Fleet {
            config,
            epoch: AtomicU64::new(1),
            membership,
            metrics,
        })
    }

    /// The coordinator's metrics registry (for the `Stats` endpoint).
    pub fn metrics(&self) -> Arc<FleetMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Admit a shard into the running fleet (`ShardJoin`). Idempotent;
    /// returns `(membership epoch, changed)`.
    pub fn admit(&self, addr: &str) -> (u64, bool) {
        self.membership.join(addr)
    }

    /// Retire a shard from the running fleet (`ShardLeave`). Its
    /// in-flight ranges are re-dispatched from their covered watermark
    /// the moment their attempts notice. Idempotent; returns
    /// `(membership epoch, changed)`.
    pub fn retire(&self, addr: &str) -> (u64, bool) {
        self.membership.leave(addr)
    }

    /// Live member addresses, in roster order.
    pub fn members(&self) -> Vec<String> {
        self.membership.members()
    }

    /// Current membership epoch.
    pub fn membership_epoch(&self) -> u64 {
        self.membership.epoch()
    }

    /// Should this request take the fleet path? Cache users and
    /// convergence-window users stay local (see the module docs); tiny
    /// candidate lists are not worth the network round-trip. An empty
    /// roster still takes the fleet path so churn down to zero members
    /// degrades to coordinator-local evaluation, not a refusal.
    pub fn eligible(&self, req: &TuneRequest) -> bool {
        req.convergence_window.is_none()
            && !req.use_cache
            && req.candidates.len() >= self.config.min_shard_candidates.max(1) * 2
    }

    /// May an attempt go to `member` right now? Closed passes; open
    /// passes only once its cooldown elapsed (becoming the half-open
    /// probe); half-open refuses (a probe is already out).
    fn try_acquire(&self, member: &Member) -> bool {
        let mut b = member.breaker.lock();
        match *b {
            Breaker::Closed { .. } => true,
            Breaker::HalfOpen => false,
            Breaker::Open { until } => {
                if Instant::now() >= until {
                    *b = Breaker::HalfOpen;
                    member
                        .metrics
                        .state
                        .store(breaker_state::HALF_OPEN, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
        }
    }

    fn report_success(&self, member: &Member) {
        member.metrics.successes.fetch_add(1, Ordering::Relaxed);
        let mut b = member.breaker.lock();
        *b = Breaker::Closed {
            consecutive_failures: 0,
        };
        member
            .metrics
            .state
            .store(breaker_state::CLOSED, Ordering::Relaxed);
    }

    fn report_failure(&self, member: &Member) {
        member.metrics.failures.fetch_add(1, Ordering::Relaxed);
        let mut b = member.breaker.lock();
        let trip = match *b {
            Breaker::Closed {
                consecutive_failures,
            } => {
                let n = consecutive_failures + 1;
                if n >= self.config.breaker_threshold.max(1) {
                    true
                } else {
                    *b = Breaker::Closed {
                        consecutive_failures: n,
                    };
                    false
                }
            }
            Breaker::HalfOpen => true, // failed probe: straight back open
            Breaker::Open { .. } => false,
        };
        if trip {
            *b = Breaker::Open {
                until: Instant::now() + self.config.breaker_cooldown,
            };
            member
                .metrics
                .state
                .store(breaker_state::OPEN, Ordering::Relaxed);
            member.metrics.breaker_opens.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Quarantine `member`: trip its breaker open for one cooldown,
    /// regardless of its consecutive-failure count. Fired by the cliff
    /// detector once a shard has collapsed
    /// [`FleetConfig::cliff_quarantine_trips`] times — its attempts
    /// keep *succeeding* (so the failure breaker never trips) but each
    /// collapse costs a speculative re-dispatch; opening the breaker
    /// routes primaries elsewhere until the half-open probe shows the
    /// shard recovered.
    fn quarantine(&self, member: &Member) {
        let mut b = member.breaker.lock();
        *b = Breaker::Open {
            until: Instant::now() + self.config.breaker_cooldown,
        };
        member
            .metrics
            .state
            .store(breaker_state::OPEN, Ordering::Relaxed);
        member.metrics.breaker_opens.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .cliff_quarantines
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Next breaker-available member scanning the *live* roster from
    /// `*rotation`, skipping `exclude`; advances the rotation past the
    /// pick. Taking a fresh roster snapshot per call is what makes
    /// newly joined shards eligible for suffix re-dispatch mid-tune.
    fn next_available(
        &self,
        rotation: &mut usize,
        exclude: Option<&Arc<Member>>,
    ) -> Option<Arc<Member>> {
        let roster = self.membership.roster();
        let n = roster.len();
        if n == 0 {
            return None;
        }
        for step in 0..n {
            let idx = (*rotation + step) % n;
            if exclude.is_some_and(|e| Arc::ptr_eq(e, &roster[idx])) {
                continue;
            }
            if self.try_acquire(&roster[idx]) {
                *rotation = idx + 1;
                return Some(Arc::clone(&roster[idx]));
            }
        }
        None
    }

    /// Run one `Tune` request through the fleet. Exact same reply
    /// contract as the local path, minus cache participation.
    pub fn tune(
        self: &Arc<Fleet>,
        req: &TuneRequest,
        cancel: &CancelToken,
        deadline: Option<Instant>,
        pool: &ThreadPool,
    ) -> TuneReply {
        let start = Instant::now();
        self.metrics.fleet_tunes.fetch_add(1, Ordering::Relaxed);
        self.membership.begin_tune();
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed);

        let offered = req.candidates.len();
        let cap = req
            .max_candidates
            .map_or(offered, |n| (n as usize).min(offered));
        // The coordinator's model was validated at admission; local
        // fallback evaluation must charge the same backend the shards
        // were asked for, or merged winners would mix scoring rules.
        let cost_model = req
            .cost_model
            .as_deref()
            .and_then(CostModelKind::from_name)
            .unwrap_or_default();
        let evaluator = Evaluator::new(&req.graph, &req.machine).with_cost_model(cost_model);
        let local_candidates: Vec<MappingCandidate> = req.candidates[..cap]
            .iter()
            .map(|c| MappingCandidate::new(c.label.clone(), c.mapping.clone()))
            .collect();

        // Freeze the roster for partitioning; attempts inside each
        // range still consult the live roster, so members joining
        // mid-tune pick up re-dispatched suffixes.
        let roster = self.membership.roster();
        if roster.is_empty() {
            // Churned down to zero members: coordinator-local
            // evaluation. Slower, same answer.
            self.metrics.degraded_tunes.fetch_add(1, Ordering::Relaxed);
            let mut budget = Budget::unlimited();
            if let Some(d) = deadline {
                budget.deadline = Some(d.saturating_duration_since(Instant::now()));
            }
            let report = Tuner::new(&evaluator, &req.graph, &req.machine, req.fom)
                .with_pool(pool)
                .with_budget(budget)
                .with_cancel(cancel.clone())
                .tune(&local_candidates);
            let mut best = report.best;
            if let Some(b) = best.as_mut() {
                if !report.cancelled {
                    if let Some(r) = req.refinement {
                        Tuner::new(&evaluator, &req.graph, &req.machine, req.fom)
                            .with_pool(pool)
                            .with_refinement(r)
                            .refine_winner(b);
                    }
                }
            }
            self.membership.persist();
            return TuneReply {
                best,
                offered: offered as u64,
                evaluated: report.evaluated as u64,
                pruned: (offered as u64).saturating_sub(report.evaluated as u64),
                cache: "disabled".to_string(),
                fell_back: report.fell_back,
                cancelled: report.cancelled,
                wall_ms: start.elapsed().as_secs_f64() * 1e3,
            };
        }
        let plan: Vec<(usize, usize, usize)> = if self.config.weighted {
            partition_weighted(
                cap,
                roster.len(),
                self.config.min_shard_candidates,
                &self.membership.live_weights(&roster),
            )
        } else {
            partition(cap, roster.len(), self.config.min_shard_candidates)
                .into_iter()
                .enumerate()
                .map(|(i, (lo, hi))| (lo, hi, i % roster.len().max(1)))
                .collect()
        };
        let outcomes: Vec<RangeOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = plan
                .iter()
                .enumerate()
                .map(|(ri, &(lo, hi, preferred_pos))| {
                    let fleet = Arc::clone(self);
                    let req = &*req;
                    let locals = &local_candidates[lo..hi];
                    let evaluator = &evaluator;
                    let preferred = Arc::clone(&roster[preferred_pos]);
                    s.spawn(move || {
                        run_range(
                            &fleet,
                            req,
                            evaluator,
                            locals,
                            lo,
                            hi,
                            ri,
                            preferred,
                            preferred_pos,
                            epoch,
                            deadline,
                            cancel,
                            pool,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or(RangeOutcome {
                        evaluated: 0,
                        win: None,
                        cancelled: true,
                        reassigned: false,
                        local: false,
                    })
                })
                .collect()
        });

        // Merge in ascending range order with a strict `<`: identical
        // tie-breaking to the tuner frontier's flat scan.
        let mut best: Option<(u64, TunedMapping)> = None;
        let mut evaluated = 0u64;
        let mut cancelled = cancel.is_cancelled();
        let mut all_local = !outcomes.is_empty();
        for o in outcomes {
            evaluated += o.evaluated;
            cancelled |= o.cancelled;
            all_local &= o.local;
            if o.reassigned {
                self.metrics.reassignments.fetch_add(1, Ordering::Relaxed);
            }
            if let Some((idx, win)) = o.win {
                let better = match &best {
                    Some((_, b)) => win.score < b.score,
                    None => true,
                };
                if better {
                    best = Some((idx, win));
                }
            }
        }
        if all_local {
            self.metrics.degraded_tunes.fetch_add(1, Ordering::Relaxed);
        }
        // Bank what this tune learned about the machines: a restarted
        // coordinator partitions its first tune weighted, not cold.
        self.membership.persist();

        // Nothing legal anywhere: the same default-mapper fallback a
        // single-machine tune produces.
        let mut fell_back = false;
        let mut best_mapping = match best {
            Some((_, b)) => Some(b),
            None => {
                let report = Tuner::new(&evaluator, &req.graph, &req.machine, req.fom).tune(&[]);
                fell_back = report.fell_back;
                report.best
            }
        };

        // Refinement runs on the coordinator, exactly as the local path
        // applies it to its own winner (and never on cancelled runs).
        if let Some(b) = best_mapping.as_mut() {
            if !cancelled {
                if let Some(r) = req.refinement {
                    Tuner::new(&evaluator, &req.graph, &req.machine, req.fom)
                        .with_pool(pool)
                        .with_refinement(r)
                        .refine_winner(b);
                }
            }
        }

        TuneReply {
            best: best_mapping,
            offered: offered as u64,
            evaluated,
            pruned: (offered as u64).saturating_sub(evaluated),
            cache: "disabled".to_string(),
            fell_back,
            cancelled,
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
        }
    }
}

/// Split `[0, cap)` into at most `nshards` contiguous ranges of at
/// least `min_per` candidates each (the last takes the remainder).
fn partition(cap: usize, nshards: usize, min_per: usize) -> Vec<(usize, usize)> {
    if cap == 0 || nshards == 0 {
        return Vec::new();
    }
    let nranges = (cap / min_per.max(1)).clamp(1, nshards);
    let base = cap / nranges;
    let extra = cap % nranges;
    let mut ranges = Vec::with_capacity(nranges);
    let mut lo = 0;
    for i in 0..nranges {
        let len = base + usize::from(i < extra);
        ranges.push((lo, lo + len));
        lo += len;
    }
    ranges
}

/// Latency-weighted split: `[0, cap)` into at most `nshards`
/// contiguous ranges sized by largest-remainder apportionment over
/// per-shard EWMA throughput `weights` (candidates/second; 0 = cold).
/// Returns `(lo, hi, preferred_shard)` per range.
///
/// Deterministic fallbacks keep cold starts exact: a cold shard's
/// weight is the mean of the warm ones, and an all-cold (or uniform)
/// fleet produces byte-identical sizes to [`partition`], preferring
/// shards in index order. `min_per` is enforced after apportionment by
/// transferring candidates from the largest range, so a near-zero
/// weight shrinks a range to the floor, never below it.
fn partition_weighted(
    cap: usize,
    nshards: usize,
    min_per: usize,
    weights: &[f64],
) -> Vec<(usize, usize, usize)> {
    if cap == 0 || nshards == 0 {
        return Vec::new();
    }
    let nranges = (cap / min_per.max(1)).clamp(1, nshards);
    // Effective weights: cold/broken entries take the warm mean.
    let mut w: Vec<f64> = (0..nshards)
        .map(|i| weights.get(i).copied().unwrap_or(0.0))
        .collect();
    let warm: Vec<f64> = w
        .iter()
        .copied()
        .filter(|x| x.is_finite() && *x > 0.0)
        .collect();
    let fill = if warm.is_empty() {
        1.0
    } else {
        warm.iter().sum::<f64>() / warm.len() as f64
    };
    for x in &mut w {
        if !x.is_finite() || *x <= 0.0 {
            *x = fill;
        }
    }
    // Fastest `nranges` shards get the work; ties prefer lower index
    // (which also makes the uniform case identical to the unweighted
    // round-robin placement).
    let mut order: Vec<usize> = (0..nshards).collect();
    order.sort_by(|&a, &b| {
        w[b].partial_cmp(&w[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut chosen = order[..nranges].to_vec();
    chosen.sort_unstable();
    // Largest-remainder apportionment of `cap` over the chosen
    // weights. With uniform weights every remainder ties and the
    // leftovers go to the lowest positions — exactly `partition`'s
    // `i < extra` rule.
    let total: f64 = chosen.iter().map(|&i| w[i]).sum();
    let mut sizes: Vec<usize> = Vec::with_capacity(nranges);
    let mut rems: Vec<(f64, usize)> = Vec::with_capacity(nranges);
    for (pos, &shard) in chosen.iter().enumerate() {
        let quota = cap as f64 * w[shard] / total;
        let floor = quota.floor() as usize;
        sizes.push(floor.min(cap));
        rems.push((quota - floor as f64, pos));
    }
    let assigned: usize = sizes.iter().sum();
    let mut leftover = cap.saturating_sub(assigned);
    rems.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    let mut next = 0usize;
    while leftover > 0 {
        sizes[rems[next % rems.len()].1] += 1;
        leftover -= 1;
        next += 1;
    }
    // Enforce the floor: top up starved ranges from the largest. The
    // partitioner never makes more ranges than `cap / min_per`, so
    // this always converges.
    let floor = min_per.max(1).min(cap / nranges.max(1)).max(1);
    loop {
        let (min_pos, &min_size) = sizes
            .iter()
            .enumerate()
            .min_by_key(|&(_, s)| *s)
            .expect("nranges >= 1");
        if min_size >= floor {
            break;
        }
        let (max_pos, &max_size) = sizes
            .iter()
            .enumerate()
            .max_by_key(|&(_, s)| *s)
            .expect("nranges >= 1");
        if max_size <= floor {
            break;
        }
        let move_n = (floor - min_size).min(max_size - floor);
        sizes[max_pos] -= move_n;
        sizes[min_pos] += move_n;
    }
    let mut ranges = Vec::with_capacity(nranges);
    let mut lo = 0;
    for (pos, &shard) in chosen.iter().enumerate() {
        let hi = lo + sizes[pos];
        ranges.push((lo, hi, shard));
        lo = hi;
    }
    ranges
}

/// Deterministic backoff for wave `wave` of range `range`: exponential
/// in the wave, plus splitmix64 jitter in `[0, half the backoff)`.
fn backoff_with_jitter(config: &FleetConfig, epoch: u64, range: usize, wave: u32) -> Duration {
    let exp = config
        .backoff_base
        .saturating_mul(1u32 << wave.min(16))
        .min(config.backoff_max);
    let half = exp.as_nanos().max(2) as u64 / 2;
    let jitter =
        mix64(config.jitter_seed ^ epoch.rotate_left(17) ^ (range as u64) << 8 ^ wave as u64)
            % half;
    exp / 2 + Duration::from_nanos(half / 2 + jitter / 2) // in [exp/2, exp]
}

/// Drive one sub-range to a verified result: waves of shard attempts
/// (with progress-aware hedging, throughput-cliff re-dispatch, and
/// departure re-dispatch inside a wave, backoff between waves), each
/// dispatching only the still-uncovered suffix, then local evaluation
/// of whatever remains when the network is out of options.
#[allow(clippy::too_many_arguments)]
fn run_range(
    fleet: &Arc<Fleet>,
    req: &TuneRequest,
    evaluator: &Evaluator,
    locals: &[MappingCandidate],
    lo: usize,
    hi: usize,
    range_idx: usize,
    preferred: Arc<Member>,
    preferred_pos: usize,
    epoch: u64,
    deadline: Option<Instant>,
    cancel: &CancelToken,
    pool: &ThreadPool,
) -> RangeOutcome {
    let range = Arc::new(RangeShared {
        graph: req.graph.clone(),
        machine: req.machine.clone(),
        fom: req.fom,
        candidates: req.candidates[lo..hi].to_vec(),
        lo,
        hi,
        epoch,
        deadline,
        stream_every: fleet.config.stream_every.filter(|&k| k > 0),
        cost_model: req.cost_model.clone(),
        progress: Mutex::new(Progress {
            covered: lo,
            evaluated: 0,
            best: None,
        }),
        done: AtomicBool::new(false),
    });
    let (tx, rx) = mpsc::channel::<(Arc<Member>, bool, AttemptEnd)>();

    let spawn_attempt = |member: Arc<Member>, hedge: bool, attempt_lo: usize| {
        let fleet = Arc::clone(fleet);
        let range = Arc::clone(&range);
        let cancel = cancel.clone();
        let tx = tx.clone();
        if attempt_lo > lo {
            fleet
                .metrics
                .suffix_redispatches
                .fetch_add(1, Ordering::Relaxed);
        }
        std::thread::Builder::new()
            .name("fm-fleet-attempt".to_string())
            .spawn(move || {
                let result = run_attempt(&fleet, &member, &range, attempt_lo, &cancel);
                let _ = tx.send((member, hedge, result));
            })
            .expect("spawn fleet attempt thread");
    };

    let mut rotation = preferred_pos;
    let mut wave = 0u32;
    'waves: while wave < fleet.config.attempts.max(1) {
        if cancel.is_cancelled() || range.is_done() {
            break;
        }
        let Some(primary) = fleet.next_available(&mut rotation, None) else {
            break; // every breaker is open: the network has no path
        };
        if wave > 0 {
            fleet.metrics.retries.fetch_add(1, Ordering::Relaxed);
        }
        let wave_start = Instant::now();
        spawn_attempt(Arc::clone(&primary), false, range.covered());
        let mut in_flight = 1u32;
        // Progress-aware hedging: the first hedge fires once the wave
        // is overdue; a further hedge is allowed each time the covered
        // watermark has advanced since the last one (someone is alive
        // but slow) and another hedge interval has elapsed. Cliff and
        // departure re-dispatches share the same gate, so one stall
        // never sprays duplicates.
        let mut last_hedge: Option<Instant> = None;
        let mut covered_at_last_hedge = 0usize;
        // Cliff detection watches how long the covered watermark has
        // sat still.
        let mut covered_last_seen = range.covered();
        let mut last_advance = Instant::now();
        while in_flight > 0 {
            match rx.recv_timeout(Duration::from_millis(25)) {
                Ok((member, was_hedge, AttemptEnd::Covered)) => {
                    range.done.store(true, Ordering::Release);
                    if was_hedge {
                        fleet.metrics.hedge_wins.fetch_add(1, Ordering::Relaxed);
                    }
                    return range.outcome(false, !Arc::ptr_eq(&member, &preferred), false);
                }
                Ok((_, _, AttemptEnd::Failed { saved })) => {
                    if saved > 0 {
                        fleet
                            .metrics
                            .prefix_candidates_saved
                            .fetch_add(saved, Ordering::Relaxed);
                    }
                    if range.is_done() {
                        // The failing attempt's parts completed the
                        // range even though its terminal never
                        // verified.
                        return range.outcome(false, false, false);
                    }
                    in_flight -= 1;
                }
                Ok((member, _, AttemptEnd::Abandoned)) => {
                    if range.is_done() {
                        return range.outcome(false, false, false);
                    }
                    in_flight -= 1;
                    // A member that left the roster abandons its
                    // attempt without blame; pick its uncovered suffix
                    // up on a healthy member right away instead of
                    // waiting out the wave.
                    if member.metrics.is_departed() && !cancel.is_cancelled() {
                        if let Some(buddy) = fleet.next_available(&mut rotation, Some(&member)) {
                            fleet
                                .metrics
                                .departed_redispatches
                                .fetch_add(1, Ordering::Relaxed);
                            let covered_now = range.covered();
                            spawn_attempt(buddy, true, covered_now);
                            in_flight += 1;
                            last_hedge = Some(Instant::now());
                            covered_at_last_hedge = covered_now;
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if cancel.is_cancelled() {
                        break 'waves;
                    }
                    let covered_now = range.covered();
                    if covered_now > covered_last_seen {
                        covered_last_seen = covered_now;
                        last_advance = Instant::now();
                    }
                    let hedge_fire = match fleet.config.hedge_after {
                        None => false,
                        Some(hedge_after) => match last_hedge {
                            None => wave_start.elapsed() >= hedge_after,
                            Some(at) => {
                                covered_now > covered_at_last_hedge && at.elapsed() >= hedge_after
                            }
                        },
                    };
                    // Speculative re-partition on throughput collapse:
                    // the primary's EWMA fell below the configured
                    // fraction of its trailing peak while the range
                    // watermark stalled. The stall also *implies* a
                    // rate bound (one chunk in `stalled` seconds), so a
                    // shard that simply stopped streaming is caught
                    // before the slow EWMA catches down to it.
                    let stalled = last_advance.elapsed();
                    let fraction = fleet.config.cliff_fraction;
                    let in_cliff = fraction > 0.0 && stalled >= fleet.config.cliff_stall && {
                        let m = &preferred.metrics;
                        let (ewma, peak) = (m.ewma_rate(), m.peak_rate());
                        let chunk = range.stream_every.unwrap_or((hi - lo) as u64).max(1);
                        let implied = chunk as f64 / stalled.as_secs_f64();
                        ewma > 0.0 && peak > 0.0 && ewma.min(implied) < fraction * peak
                    };
                    let cliff_fire = in_cliff
                        && match last_hedge {
                            None => true,
                            Some(at) => {
                                covered_now > covered_at_last_hedge
                                    && at.elapsed() >= fleet.config.cliff_stall
                            }
                        };
                    if hedge_fire || cliff_fire {
                        if let Some(buddy) = fleet.next_available(&mut rotation, Some(&primary)) {
                            if cliff_fire && !hedge_fire {
                                fleet
                                    .metrics
                                    .cliff_redispatches
                                    .fetch_add(1, Ordering::Relaxed);
                                // Repeated collapse → quarantine: the
                                // shard's attempts succeed (the
                                // failure breaker never sees them),
                                // so the cliff count is what takes a
                                // chronically slow shard out of
                                // rotation.
                                let trips = preferred
                                    .metrics
                                    .cliff_trips
                                    .fetch_add(1, Ordering::Relaxed)
                                    + 1;
                                let quarantine_at = fleet.config.cliff_quarantine_trips;
                                if quarantine_at > 0
                                    && trips.is_multiple_of(u64::from(quarantine_at))
                                {
                                    fleet.quarantine(&preferred);
                                }
                            } else {
                                fleet.metrics.hedges.fetch_add(1, Ordering::Relaxed);
                            }
                            spawn_attempt(buddy, true, covered_now);
                            in_flight += 1;
                            last_hedge = Some(Instant::now());
                            covered_at_last_hedge = covered_now;
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break 'waves,
            }
        }
        // The whole wave failed: back off (cancellably), then retry.
        wave += 1;
        if wave < fleet.config.attempts {
            let mut left = backoff_with_jitter(&fleet.config, epoch, range_idx, wave - 1);
            while left > Duration::ZERO && !cancel.is_cancelled() {
                let step = left.min(Duration::from_millis(20));
                std::thread::sleep(step);
                left = left.saturating_sub(step);
            }
        }
    }
    range.done.store(true, Ordering::Release); // abandon any straggler attempt

    if cancel.is_cancelled() {
        return range.outcome(true, false, false);
    }
    if range.covered() >= hi {
        return range.outcome(false, false, false);
    }

    // Graceful degradation: score the *uncovered suffix* right here.
    // Slower, never wrong — the same pure evaluation the shard would
    // have run, minus everything streamed parts already banked.
    fleet
        .metrics
        .local_fallback_ranges
        .fetch_add(1, Ordering::Relaxed);
    let suffix_lo = range.covered();
    let mut budget = Budget::unlimited();
    if let Some(d) = deadline {
        budget.deadline = Some(d.saturating_duration_since(Instant::now()));
    }
    let report = Tuner::new(evaluator, &req.graph, &req.machine, req.fom)
        .with_pool(pool)
        .with_budget(budget)
        .with_cancel(cancel.clone())
        .tune(&locals[suffix_lo - lo..]);
    let cancelled = report.cancelled;
    range.merge_local(suffix_lo, report);
    range.outcome(cancelled, false, true)
}

/// Dial one shard with the configured connect timeout, clamped by the
/// attempt deadline, trying every resolved address. Every coordinator
/// → shard connection goes through here — a black-holed shard costs at
/// most `connect_timeout` per address, never the OS default.
fn dial(fleet: &Fleet, member: &Member, until: Instant) -> Option<TcpStream> {
    let budget = until.saturating_duration_since(Instant::now());
    if budget.is_zero() {
        return None;
    }
    let timeout = fleet.config.connect_timeout.min(budget);
    for addr in member.addr().to_socket_addrs().ok()? {
        if Instant::now() >= until {
            return None;
        }
        if let Ok(stream) = TcpStream::connect_timeout(&addr, timeout) {
            let _ = stream.set_nodelay(true);
            return Some(stream);
        }
    }
    None
}

/// One wire attempt against one shard: connect (bounded), send the
/// request for the still-uncovered suffix `[attempt_lo, hi)`, then
/// consume frames — folding verified streamed parts into the range's
/// ledger as they arrive — until the range is covered, the terminal
/// reply lands, or something breaks. Reports breaker outcomes, EWMA
/// throughput observations, and discard metrics itself.
fn run_attempt(
    fleet: &Fleet,
    member: &Arc<Member>,
    range: &RangeShared,
    attempt_lo: usize,
    cancel: &CancelToken,
) -> AttemptEnd {
    let m = &member.metrics;
    m.sends.fetch_add(1, Ordering::Relaxed);
    let frame_deadline = || {
        let cap = Instant::now() + fleet.config.attempt_timeout;
        range.deadline.map_or(cap, |d| cap.min(d))
    };
    let mut until = frame_deadline();

    let Some(mut stream) = dial(fleet, member, until) else {
        fleet.report_failure(member);
        return AttemptEnd::Failed { saved: 0 };
    };
    // Shard links skip the Hello handshake: the envelope is sniffed
    // per frame on both ends, so the coordinator just speaks binary
    // (correlation id = epoch) unless this shard is known JSON-only.
    // Skipping the handshake also keeps reply-frame indices stable for
    // the frame-indexed fault scripts in the chaos suite.
    let binary = fleet.config.binary_links && !member.json_only.load(Ordering::Acquire);
    let request = Request::TuneShard(TuneShardRequest {
        graph: range.graph.clone(),
        machine: range.machine.clone(),
        fom: range.fom,
        candidates: range.candidates[attempt_lo - range.lo..].to_vec(),
        start_index: attempt_lo as u64,
        epoch: range.epoch,
        deadline_ms: range
            .deadline
            .map(|d| (d.saturating_duration_since(Instant::now()).as_millis() as u64).max(1)),
        stream_every: range.stream_every,
        cost_model: range.cost_model.clone(),
    });
    let payload = if binary {
        encode_request_binary(range.epoch, &request)
    } else {
        encode_request(&request)
    };
    let frame_len = payload.len() as u32;
    if stream
        .write_all(&frame_len.to_be_bytes())
        .and_then(|()| stream.write_all(&payload))
        .is_err()
    {
        fleet.report_failure(member);
        return AttemptEnd::Failed { saved: 0 };
    }

    // Per-frame consume loop. `saved` counts candidates this attempt
    // merged; if the attempt later dies they are the streamed prefix a
    // blocking protocol would have re-evaluated.
    let mut saved = 0u64;
    let mut last_mark = Instant::now();
    let fail = |flaw: Option<&ShardReplyFlaw>, saved: u64| {
        if let Some(flaw) = flaw {
            let counter = match flaw {
                ShardReplyFlaw::BadChecksum { .. } => &fleet.metrics.corrupt_discarded,
                ShardReplyFlaw::StaleEpoch { .. } => &fleet.metrics.stale_discarded,
                ShardReplyFlaw::Incomplete { .. } => &fleet.metrics.incomplete_discarded,
            };
            counter.fetch_add(1, Ordering::Relaxed);
        }
        fleet.report_failure(member);
        AttemptEnd::Failed { saved }
    };
    loop {
        match watch_read(&mut stream, until, cancel, &range.done, &m.departed) {
            WatchRead::Frame(bytes) => match decode_response_any(&bytes).map(|(_, r, _)| r) {
                Ok(Response::TuneShardPart(part)) => {
                    if let Err(flaw) = part.verify(range.epoch) {
                        fleet
                            .metrics
                            .parts_discarded
                            .fetch_add(1, Ordering::Relaxed);
                        return fail(Some(&flaw), saved);
                    }
                    match range.merge_part(&part.body) {
                        PartMerge::Merged => {
                            fleet.metrics.parts_merged.fetch_add(1, Ordering::Relaxed);
                            m.parts.fetch_add(1, Ordering::Relaxed);
                            m.observe_rate(part.body.count, last_mark.elapsed());
                            m.mark_fresh(fleet.membership.generation());
                            last_mark = Instant::now();
                            saved += part.body.count;
                            if range.is_done() {
                                fleet.report_success(member);
                                return AttemptEnd::Covered;
                            }
                            until = frame_deadline(); // progress resets the clock
                        }
                        PartMerge::Duplicate => {
                            // A hedge already banked this chunk; the
                            // frame still proves the shard is alive.
                            until = frame_deadline();
                        }
                        PartMerge::OutOfSync => {
                            fleet
                                .metrics
                                .parts_discarded
                                .fetch_add(1, Ordering::Relaxed);
                            return fail(None, saved);
                        }
                    }
                }
                Ok(Response::TuneSharded(reply)) => {
                    return match reply.verify(range.epoch) {
                        Ok(()) => {
                            // The suffix past this attempt's own
                            // streamed parts was evaluated since the
                            // last mark (the whole span, if none).
                            m.observe_rate(
                                reply.body.count.saturating_sub(saved),
                                last_mark.elapsed(),
                            );
                            m.mark_fresh(fleet.membership.generation());
                            range.merge_terminal(&reply.body);
                            fleet.report_success(member);
                            if range.is_done() {
                                AttemptEnd::Covered
                            } else {
                                // A complete terminal that does not
                                // close the range means the ledger and
                                // the stream disagree; retry the
                                // suffix.
                                AttemptEnd::Failed { saved }
                            }
                        }
                        Err(flaw) => fail(Some(&flaw), saved),
                    };
                }
                // A protocol failure for a binary request means the
                // shard predates the envelope: remember that and let
                // the retry waves redial it in JSON.
                Ok(Response::Failed(f)) if binary && f.kind == "protocol" => {
                    member.json_only.store(true, Ordering::Release);
                    return fail(None, saved);
                }
                // Busy, ShuttingDown, Failed, or protocol confusion:
                // this path is unusable right now.
                Ok(_) | Err(_) => return fail(None, saved),
            },
            WatchRead::TimedOut | WatchRead::Failed => return fail(None, saved),
            // Abandoned attempts blame nobody: the shard may be
            // healthy, the range just resolved without it (or the tune
            // was cancelled). Dropping the socket is what tells the
            // shard to cancel its sub-search.
            WatchRead::Abandoned => return AttemptEnd::Abandoned,
        }
    }
}

/// Read one reply frame in short timeout slices, watching the frame
/// deadline, the tune-wide cancel token, the range's `done` latch, and
/// the member's `departed` flag (a `ShardLeave` mid-attempt abandons
/// the read so the coordinator can re-dispatch the suffix at once).
fn watch_read(
    stream: &mut TcpStream,
    until: Instant,
    cancel: &CancelToken,
    done: &AtomicBool,
    departed: &AtomicBool,
) -> WatchRead {
    use std::io::Read as _;

    use crate::protocol::READ_CHUNK;

    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let mut header = [0u8; 4];
    let mut have = 0usize;
    // (buffer, bytes filled, total payload length); the buffer grows
    // by READ_CHUNK steps as bytes land, never to the full declared
    // length up front (same discipline as `protocol::read_frame`).
    let mut body: Option<(Vec<u8>, usize, usize)> = None;
    loop {
        if done.load(Ordering::Acquire) || cancel.is_cancelled() || departed.load(Ordering::Acquire)
        {
            return WatchRead::Abandoned;
        }
        if Instant::now() >= until {
            return WatchRead::TimedOut;
        }
        let read = match &mut body {
            None => stream.read(&mut header[have..]),
            Some((buf, filled, len)) => {
                if *filled == buf.len() {
                    let grow = (*len).min(*filled + READ_CHUNK);
                    buf.resize(grow, 0);
                }
                stream.read(&mut buf[*filled..])
            }
        };
        match read {
            Ok(0) => return WatchRead::Failed,
            Ok(n) => match &mut body {
                None => {
                    have += n;
                    if have == 4 {
                        let len = u32::from_be_bytes(header) as usize;
                        if len > DEFAULT_MAX_FRAME {
                            return WatchRead::Failed;
                        }
                        if len == 0 {
                            return WatchRead::Frame(Vec::new());
                        }
                        body = Some((vec![0u8; len.min(READ_CHUNK)], 0, len));
                    }
                }
                Some((buf, filled, len)) => {
                    *filled += n;
                    if *filled == *len {
                        return WatchRead::Frame(std::mem::take(buf));
                    }
                }
            },
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return WatchRead::Failed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_exactly_and_respects_minimum() {
        for cap in 0..40 {
            for nshards in 1..6 {
                let ranges = partition(cap, nshards, 3);
                // Coverage: contiguous, exact.
                let mut expect = 0;
                for &(lo, hi) in &ranges {
                    assert_eq!(lo, expect);
                    assert!(hi > lo);
                    expect = hi;
                }
                assert_eq!(expect, cap);
                assert!(ranges.len() <= nshards);
                // Minimum size (single-range lists may be smaller).
                if ranges.len() > 1 {
                    for &(lo, hi) in &ranges {
                        assert!(hi - lo >= 3, "range {lo}..{hi} under minimum");
                    }
                }
            }
        }
    }

    #[test]
    fn weighted_partition_covers_exactly_and_respects_minimum() {
        let weight_sets: &[&[f64]] = &[
            &[],
            &[0.0, 0.0, 0.0, 0.0, 0.0],
            &[100.0, 1.0, 50.0, 0.0, 7.5],
            &[1e-9, 1e9, 3.0, 3.0, 3.0],
            &[f64::NAN, 10.0, f64::INFINITY, 2.0, 0.5],
        ];
        for &weights in weight_sets {
            for cap in 0..40 {
                for nshards in 1..6 {
                    let plan = partition_weighted(cap, nshards, 3, weights);
                    let mut expect = 0;
                    for &(lo, hi, shard) in &plan {
                        assert_eq!(lo, expect, "weights {weights:?} cap {cap}");
                        assert!(hi > lo, "empty range for weights {weights:?} cap {cap}");
                        assert!(shard < nshards);
                        expect = hi;
                    }
                    assert_eq!(
                        expect, cap,
                        "weights {weights:?} cap {cap} nshards {nshards}"
                    );
                    assert!(plan.len() <= nshards);
                    if plan.len() > 1 {
                        for &(lo, hi, _) in &plan {
                            assert!(hi - lo >= 3, "range {lo}..{hi} under minimum");
                        }
                    }
                    // Preferred shards are distinct.
                    let mut shards: Vec<usize> = plan.iter().map(|&(_, _, s)| s).collect();
                    shards.dedup();
                    assert_eq!(shards.len(), plan.len());
                }
            }
        }
    }

    #[test]
    fn weighted_partition_degenerates_to_equal_split_when_uniform() {
        for cap in 1..60 {
            for nshards in 1..6 {
                let equal = partition(cap, nshards, 2);
                for weights in [vec![], vec![5.0; nshards], vec![0.0; nshards]] {
                    let plan = partition_weighted(cap, nshards, 2, &weights);
                    let sizes: Vec<(usize, usize)> =
                        plan.iter().map(|&(lo, hi, _)| (lo, hi)).collect();
                    assert_eq!(
                        sizes, equal,
                        "uniform weights {weights:?} must equal the plain split \
                         (cap {cap}, {nshards} shards)"
                    );
                    // And the placement is the old round-robin: range i
                    // on shard i.
                    for (i, &(_, _, shard)) in plan.iter().enumerate() {
                        assert_eq!(shard, i);
                    }
                }
            }
        }
    }

    #[test]
    fn weighted_partition_gives_fast_shards_more_and_slow_shards_the_floor() {
        // Shard 1 is 9× faster than shard 0: with 100 candidates split
        // two ways it should take the lion's share, while shard 0
        // still gets at least the floor.
        let plan = partition_weighted(100, 2, 4, &[10.0, 90.0]);
        assert_eq!(plan.len(), 2);
        let size_of = |shard: usize| {
            plan.iter()
                .find(|&&(_, _, s)| s == shard)
                .map(|&(lo, hi, _)| hi - lo)
                .unwrap()
        };
        assert_eq!(size_of(0) + size_of(1), 100);
        assert_eq!(size_of(0), 10);
        assert_eq!(size_of(1), 90);
        // An extreme weight cannot starve a range below the floor.
        let plan = partition_weighted(20, 2, 4, &[1e-6, 1e6]);
        let sizes: Vec<usize> = plan.iter().map(|&(lo, hi, _)| hi - lo).collect();
        assert!(sizes.iter().all(|&s| s >= 4), "sizes {sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 20);
    }

    #[test]
    fn range_progress_merges_contiguous_parts_and_flags_the_rest() {
        let range = RangeShared {
            graph: DataflowGraph::new("progress", 32),
            machine: MachineConfig::linear(4),
            fom: FigureOfMerit::Time,
            candidates: Vec::new(),
            lo: 8,
            hi: 16,
            epoch: 1,
            deadline: None,
            stream_every: Some(4),
            cost_model: None,
            progress: Mutex::new(Progress {
                covered: 8,
                evaluated: 0,
                best: None,
            }),
            done: AtomicBool::new(false),
        };
        let part = |start: u64, count: u64| TuneShardPartBody {
            start_index: start,
            count,
            best: None,
        };
        // Ahead of the watermark: out of sync.
        assert!(matches!(
            range.merge_part(&part(12, 4)),
            PartMerge::OutOfSync
        ));
        // Contiguous: merges and advances.
        assert!(matches!(range.merge_part(&part(8, 4)), PartMerge::Merged));
        assert_eq!(range.covered(), 12);
        // Replay of a covered chunk (hedge duplicate): ignored.
        assert!(matches!(
            range.merge_part(&part(8, 4)),
            PartMerge::Duplicate
        ));
        // Overhang past `hi`: out of sync.
        assert!(matches!(
            range.merge_part(&part(12, 8)),
            PartMerge::OutOfSync
        ));
        // Final chunk completes the range and latches `done`.
        assert!(!range.is_done());
        assert!(matches!(range.merge_part(&part(12, 4)), PartMerge::Merged));
        assert!(range.is_done());
        assert_eq!(range.outcome(false, false, false).evaluated, 8);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let config = FleetConfig::new(vec!["127.0.0.1:1".to_string()]);
        for wave in 0..6 {
            let a = backoff_with_jitter(&config, 7, 2, wave);
            let b = backoff_with_jitter(&config, 7, 2, wave);
            assert_eq!(a, b, "jitter must be reproducible");
            assert!(a <= config.backoff_max);
        }
    }

    #[test]
    fn breaker_trips_after_threshold_and_probes_after_cooldown() {
        let mut config = FleetConfig::new(vec!["127.0.0.1:1".to_string()]);
        config.breaker_threshold = 2;
        config.breaker_cooldown = Duration::from_millis(30);
        let fleet = Fleet::new(config);
        let member = &fleet.membership.roster()[0];
        assert!(fleet.try_acquire(member));
        fleet.report_failure(member);
        assert!(
            fleet.try_acquire(member),
            "one failure is under the threshold"
        );
        fleet.report_failure(member);
        // Tripped: quarantined until the cooldown.
        assert!(!fleet.try_acquire(member));
        std::thread::sleep(Duration::from_millis(40));
        // Cooldown over: exactly one probe gets through.
        assert!(fleet.try_acquire(member));
        assert!(
            !fleet.try_acquire(member),
            "second probe refused in half-open"
        );
        // Failed probe: straight back open.
        fleet.report_failure(member);
        assert!(!fleet.try_acquire(member));
        std::thread::sleep(Duration::from_millis(40));
        assert!(fleet.try_acquire(member));
        fleet.report_success(member);
        // Healed: closed again, acquires freely.
        assert!(fleet.try_acquire(member));
        assert!(fleet.try_acquire(member));
        let snap = fleet.metrics().snapshot();
        assert_eq!(snap.shards[0].breaker_opens, 2);
        assert_eq!(snap.shards[0].breaker, "closed");
    }

    #[test]
    fn admit_and_retire_reshape_the_roster_and_rotation() {
        let mut config = FleetConfig::new(vec!["127.0.0.1:1".to_string()]);
        config.admit = vec!["127.0.0.1:2".to_string()];
        let fleet = Fleet::new(config);
        assert_eq!(fleet.members(), vec!["127.0.0.1:1", "127.0.0.1:2"]);
        assert_eq!(fleet.membership_epoch(), 2, "the admit list counts");
        // next_available sees joiners immediately and honors exclude.
        let (epoch, changed) = fleet.admit("127.0.0.1:3");
        assert!(changed);
        assert_eq!(epoch, 3);
        let first = &fleet.membership.roster()[0];
        let mut rotation = 0usize;
        let pick = fleet.next_available(&mut rotation, Some(first)).unwrap();
        assert_ne!(pick.addr(), first.addr());
        // Retiring flags the member departed; a second retire is a
        // no-op.
        assert!(fleet.retire("127.0.0.1:2").1);
        assert!(!fleet.retire("127.0.0.1:2").1);
        assert_eq!(fleet.members(), vec!["127.0.0.1:1", "127.0.0.1:3"]);
        let snap = fleet.metrics().snapshot();
        assert_eq!(snap.members, 2);
        assert_eq!(snap.joins, 2);
        assert_eq!(snap.leaves, 1);
        let row = snap.shards.iter().find(|s| s.addr.ends_with(":2")).unwrap();
        assert!(row.departed, "retired member's row survives, flagged");
    }
}
